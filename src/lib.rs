//! Workspace facade for CDStore — convergent dispersal backup across
//! multiple clouds (Li, Qin, Lee — USENIX ATC'15).
//!
//! Re-exports every layer of the workspace under one roof so integration
//! tests, examples, and downstream users can depend on a single crate. The
//! layers, bottom to top:
//!
//! * [`gf`] — GF(2^8) arithmetic, matrices, and region operations
//! * [`crypto`] — SHA-1/SHA-256 hashing and AES-CTR encryption
//! * [`chunking`] — fixed-size and Rabin content-defined chunking
//! * [`erasure`] — systematic Reed-Solomon coding over GF(2^8)
//! * [`secretsharing`] — AONT-RS, CAONT-RS, SSSS, RSSS, IDA, SSMS
//! * [`index`] — bloom-filtered LSM key-value store and dedup indices
//! * [`storage`] — container store, cache, and storage backends
//! * [`cloudsim`] — simulated clouds with bandwidth/latency profiles
//! * [`cost`] — the §5.6 monetary cost model (Figure 9)
//! * [`workloads`] — FSL/VM backup workload generators
//! * [`core`] — client/server pipeline tying everything together

#![forbid(unsafe_code)]

pub use cdstore_chunking as chunking;
pub use cdstore_cloudsim as cloudsim;
pub use cdstore_core as core;
pub use cdstore_cost as cost;
pub use cdstore_crypto as crypto;
pub use cdstore_erasure as erasure;
pub use cdstore_gf as gf;
pub use cdstore_index as index;
pub use cdstore_secretsharing as secretsharing;
pub use cdstore_storage as storage;
pub use cdstore_workloads as workloads;
