//! Model-based and crash-consistency tests for the LSM `KvStore`.
//!
//! The in-crate unit proptests cover put/delete interleavings against a
//! reference `BTreeMap`; this suite widens the operation alphabet to the
//! *structural* operations — explicit flushes, compactions, and (for the
//! disk-backed store) full close/reopen cycles — and adds a crash test that
//! truncates run objects to arbitrary byte prefixes before reopening.

use std::collections::BTreeMap;
use std::sync::Arc;

use cdstore_index::{KvStore, KvStoreConfig};
use cdstore_storage::{MemoryBackend, StorageBackend};
use proptest::prelude::*;

/// One step of a store workload. `Reopen` is a no-op for memory stores.
#[derive(Debug, Clone)]
enum Op {
    Put(u8, u8),
    Delete(u8),
    Flush,
    Compact,
    Reopen,
}

/// Weighted op strategy: mostly puts, some deletes, occasional structural
/// ops. (The vendored proptest shim has no `prop_oneof!`/`prop_map`, so the
/// weighting is hand-rolled.)
#[derive(Debug, Clone, Copy)]
struct OpStrategy;

impl Strategy for OpStrategy {
    type Value = Op;

    fn generate(&self, rng: &mut proptest::TestRng) -> Op {
        use rand::Rng;
        match rng.gen_range(0u32..15) {
            0..=7 => Op::Put(rng.gen_range(0u8..48), rng.gen()),
            8..=11 => Op::Delete(rng.gen_range(0u8..48)),
            12 => Op::Flush,
            13 => Op::Compact,
            _ => Op::Reopen,
        }
    }
}

fn test_config() -> KvStoreConfig {
    KvStoreConfig {
        memtable_capacity: 5,
        max_runs: 3,
        bloom_bits_per_key: 8,
        block_bytes: 64,
        block_cache_bytes: 1024,
        ..KvStoreConfig::default()
    }
}

fn key_bytes(k: u8) -> Vec<u8> {
    // Two-byte keys so several keys share a block in disk runs.
    vec![b'k', k]
}

/// Drives `ops` through the store and a reference `BTreeMap`, reopening from
/// the backend on `Op::Reopen` when one is given, then checks full agreement.
fn run_model(
    ops: &[Op],
    mut store: KvStore,
    backend: Option<Arc<dyn StorageBackend>>,
) -> Result<(), TestCaseError> {
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Put(k, v) => {
                store.put(key_bytes(*k), vec![*v]);
                model.insert(key_bytes(*k), vec![*v]);
            }
            Op::Delete(k) => {
                store.delete(&key_bytes(*k));
                model.remove(&key_bytes(*k));
            }
            Op::Flush => store.flush(),
            Op::Compact => store.compact(),
            Op::Reopen => {
                if let Some(backend) = &backend {
                    // Reopening only resumes what was made durable; flush
                    // first so the model and the store stay comparable.
                    store.flush();
                    drop(store);
                    store = KvStore::open(Arc::clone(backend), "model", test_config())
                        .expect("reopen after clean flush");
                }
            }
        }
        prop_assert_eq!(store.len(), model.len());
    }
    for k in 0..48u8 {
        prop_assert_eq!(store.get(&key_bytes(k)), model.get(&key_bytes(k)).cloned());
    }
    prop_assert_eq!(store.snapshot(), model.clone());
    // A prefix scan over the shared leading byte must see exactly the model.
    let scanned: BTreeMap<Vec<u8>, Vec<u8>> = store.scan_prefix(b"k").into_iter().collect();
    prop_assert_eq!(scanned, model);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Memory-mode store agrees with the model under structural ops.
    #[test]
    fn memory_store_matches_model(ops in proptest::collection::vec(OpStrategy, 0..200)) {
        run_model(&ops, KvStore::with_config(test_config()), None)?;
    }

    /// Disk-mode store agrees with the model under structural ops including
    /// close/reopen cycles.
    #[test]
    fn disk_store_matches_model(ops in proptest::collection::vec(OpStrategy, 0..200)) {
        let backend: Arc<dyn StorageBackend> = Arc::new(MemoryBackend::new());
        let store = KvStore::create(Arc::clone(&backend), "model", test_config()).unwrap();
        run_model(&ops, store, Some(backend))?;
    }
}

/// Builds a disk store with a known write history and returns the backend,
/// the final durable state, and every value historically written per key.
#[allow(clippy::type_complexity)]
fn seeded_store() -> (
    Arc<dyn StorageBackend>,
    BTreeMap<Vec<u8>, Vec<u8>>,
    BTreeMap<Vec<u8>, Vec<Vec<u8>>>,
) {
    let backend: Arc<dyn StorageBackend> = Arc::new(MemoryBackend::new());
    let config = KvStoreConfig {
        memtable_capacity: 100,
        max_runs: 32,
        block_bytes: 64,
        ..KvStoreConfig::default()
    };
    let mut store = KvStore::create(Arc::clone(&backend), "crash", config).unwrap();
    let mut model = BTreeMap::new();
    let mut history: BTreeMap<Vec<u8>, Vec<Vec<u8>>> = BTreeMap::new();
    for round in 0..4u8 {
        for k in 0..40u8 {
            if (k + round) % 7 == 0 {
                store.delete(&key_bytes(k));
                model.remove(&key_bytes(k));
            } else {
                let value = vec![round, k, 0xcd];
                store.put(key_bytes(k), value.clone());
                model.insert(key_bytes(k), value.clone());
                history.entry(key_bytes(k)).or_default().push(value);
            }
        }
        store.flush();
    }
    (backend, model, history)
}

/// Crash-prefix test: truncating any run object to any byte prefix must
/// still yield a consistent reopen — torn runs are dropped, every surviving
/// value is one the workload actually wrote for that key, and the reopened
/// store keeps working. (Manifests are excluded: they are small objects
/// committed with a single atomic `put`, never appended to, so a torn
/// manifest prefix is not a state the backend contract can produce.)
#[test]
fn truncated_run_objects_reopen_consistently() {
    let (backend, model, history) = seeded_store();
    let run_keys: Vec<String> = {
        let mut keys: Vec<String> = backend
            .list()
            .unwrap()
            .into_iter()
            .filter(|k| k.contains("-r-"))
            .collect();
        keys.sort();
        keys
    };
    assert!(run_keys.len() >= 2, "seed must leave multiple runs");

    for victim in &run_keys {
        let intact = backend.get(victim).unwrap();
        // A spread of prefixes: empty, mid-frame, block boundaries, and
        // one byte short of complete.
        let cuts = [
            0,
            1,
            intact.len() / 3,
            intact.len() / 2,
            intact.len() - 9,
            intact.len() - 1,
        ];
        for &cut in &cuts {
            backend.put(victim, &intact[..cut]).unwrap();
            let mut store = KvStore::open(Arc::clone(&backend), "crash", test_config())
                .unwrap_or_else(|e| panic!("reopen with {victim} cut to {cut}B failed: {e}"));
            assert!(
                store.open_stats().runs_dropped >= 1,
                "{victim} cut to {cut}B should be detected as torn"
            );
            for (k, v) in store.snapshot() {
                let seen = history.get(&k).map(Vec::as_slice).unwrap_or(&[]);
                assert!(
                    seen.contains(&v),
                    "key {k:?} resurfaced with value {v:?} never written to it"
                );
            }
            // The survivor must still be writable and durable.
            store.put(b"post-crash".to_vec(), vec![cut as u8]);
            store.flush();
            assert_eq!(store.get(b"post-crash"), Some(vec![cut as u8]));
            // Restore the incarnation for the next cut (including the run
            // object the reopen above deleted and possibly re-sequenced).
            for key in backend.list().unwrap() {
                if key.starts_with("idx-crash-") {
                    backend.delete(&key).unwrap();
                }
            }
            let (fresh, _, _) = seeded_store();
            for key in fresh.list().unwrap() {
                backend.put(&key, &fresh.get(&key).unwrap()).unwrap();
            }
        }
    }

    // Untouched incarnation still reopens byte-exact.
    let store = KvStore::open(Arc::clone(&backend), "crash", test_config()).unwrap();
    assert_eq!(store.snapshot(), model);
}
