//! The file index: `(user, pathname)` → file-recipe reference.
//!
//! "The file index holds the entries for all files uploaded by different
//! users. Each entry describes a file, identified by the full pathname
//! (which has been encoded ...) and the user identifier provided by a
//! CDStore client. We hash the full pathname and the user identifier to
//! obtain a unique key for the entry. The entry stores a reference to the
//! file recipe ..." (§4.4)

use std::sync::Arc;

use cdstore_crypto::{sha256, Fingerprint};
use cdstore_storage::{StorageBackend, StorageError};

use crate::kvstore::{BlockCacheStats, KvStore, KvStoreConfig};
use crate::share_index::ShareLocation;

/// The hashed lookup key of a file-index entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileKey(Fingerprint);

impl FileKey {
    /// Derives the key from a user identifier and the file's full pathname.
    ///
    /// The pathname passed here may already be an *encoded* pathname (the
    /// client disperses sensitive pathnames via secret sharing, §4.3); the
    /// key derivation is agnostic to that.
    pub fn new(user: u64, pathname: &[u8]) -> Self {
        let mut hasher = sha256::Sha256::new();
        hasher.update(&user.to_be_bytes());
        hasher.update(&(pathname.len() as u64).to_be_bytes());
        hasher.update(pathname);
        FileKey(Fingerprint::from_bytes(hasher.finalize()))
    }

    /// Raw key bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        self.0.as_bytes()
    }

    /// Reconstructs a key from its raw hash bytes (journal replay and
    /// checkpoint restore; the pathname itself is not recoverable from the
    /// hash, nor needed).
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        FileKey(Fingerprint::from_bytes(bytes))
    }
}

/// One file-index entry: where to find the file recipe and summary metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// The user who owns the file. The lookup key is a one-way hash of
    /// `(user, pathname)`, so the entry records the user explicitly: crash
    /// recovery needs it to resolve the recipe's client fingerprints through
    /// the user's ownership mappings when verifying recovered state.
    pub user: u64,
    /// Identifier of the recipe container holding the file recipe.
    pub recipe_container_id: u64,
    /// Byte offset of the recipe blob within its container.
    pub recipe_offset: u32,
    /// Size of the serialised recipe blob in bytes.
    pub recipe_size: u32,
    /// Logical size of the file in bytes.
    pub file_size: u64,
    /// Number of secrets (chunks) the file was divided into.
    pub num_secrets: u64,
    /// Upload sequence number (monotonic per server; identifies backup versions).
    pub version: u64,
}

impl FileEntry {
    /// The container location of the file recipe blob.
    pub fn recipe_location(&self) -> ShareLocation {
        ShareLocation {
            container_id: self.recipe_container_id,
            offset: self.recipe_offset,
            size: self.recipe_size,
        }
    }

    /// Serialises the entry (the journal/checkpoint wire format — identical
    /// to the in-store representation).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.encode()
    }

    /// Parses an entry serialised by [`FileEntry::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<FileEntry> {
        Self::decode(bytes)
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(48);
        out.extend_from_slice(&self.user.to_be_bytes());
        out.extend_from_slice(&self.recipe_container_id.to_be_bytes());
        out.extend_from_slice(&self.recipe_offset.to_be_bytes());
        out.extend_from_slice(&self.recipe_size.to_be_bytes());
        out.extend_from_slice(&self.file_size.to_be_bytes());
        out.extend_from_slice(&self.num_secrets.to_be_bytes());
        out.extend_from_slice(&self.version.to_be_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> Option<FileEntry> {
        if bytes.len() != 48 {
            return None;
        }
        Some(FileEntry {
            user: u64::from_be_bytes(bytes[0..8].try_into().ok()?),
            recipe_container_id: u64::from_be_bytes(bytes[8..16].try_into().ok()?),
            recipe_offset: u32::from_be_bytes(bytes[16..20].try_into().ok()?),
            recipe_size: u32::from_be_bytes(bytes[20..24].try_into().ok()?),
            file_size: u64::from_be_bytes(bytes[24..32].try_into().ok()?),
            num_secrets: u64::from_be_bytes(bytes[32..40].try_into().ok()?),
            version: u64::from_be_bytes(bytes[40..48].try_into().ok()?),
        })
    }
}

/// The per-server file index backed by the LSM store.
pub struct FileIndex {
    store: KvStore,
}

impl Default for FileIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl FileIndex {
    /// Creates an empty file index.
    pub fn new() -> Self {
        FileIndex {
            store: KvStore::new(),
        }
    }

    /// Creates a file index with an explicit store configuration.
    pub fn with_config(config: KvStoreConfig) -> Self {
        FileIndex {
            store: KvStore::with_config(config),
        }
    }

    /// Creates a *fresh* disk-backed file index named `name` on the
    /// backend, discarding any previous incarnation of the same name.
    pub fn create(
        backend: Arc<dyn StorageBackend>,
        name: &str,
        config: KvStoreConfig,
    ) -> Result<Self, StorageError> {
        Ok(FileIndex {
            store: KvStore::create(backend, name, config)?,
        })
    }

    /// Opens the disk-backed file index previously persisted under `name`,
    /// resuming the runs its manifest describes.
    pub fn open(
        backend: Arc<dyn StorageBackend>,
        name: &str,
        config: KvStoreConfig,
    ) -> Result<Self, StorageError> {
        Ok(FileIndex {
            store: KvStore::open(backend, name, config)?,
        })
    }

    /// Freezes buffered writes into a durable run (disk mode; a cheap no-op
    /// when the write buffer is empty).
    pub fn flush_runs(&mut self) -> Result<(), StorageError> {
        self.store.try_flush()
    }

    /// Whether index runs spill to a storage backend.
    pub fn is_disk_backed(&self) -> bool {
        self.store.is_disk_backed()
    }

    /// Block-cache counters (`None` in memory mode).
    pub fn cache_stats(&self) -> Option<BlockCacheStats> {
        self.store.cache_stats()
    }

    /// Inserts or replaces the entry for a file.
    pub fn put(&mut self, key: FileKey, entry: FileEntry) {
        self.store.put(key.as_bytes().to_vec(), entry.encode());
    }

    /// Looks up the entry for a file.
    pub fn get(&mut self, key: &FileKey) -> Option<FileEntry> {
        self.store
            .get(key.as_bytes())
            .and_then(|bytes| FileEntry::decode(&bytes))
    }

    /// Removes the entry for a file, returning it if present.
    pub fn remove(&mut self, key: &FileKey) -> Option<FileEntry> {
        let entry = self.get(key);
        if entry.is_some() {
            self.store.delete(key.as_bytes());
        }
        entry
    }

    /// Every `(key, entry)` pair currently indexed — the snapshot half of
    /// checkpointing.
    pub fn export(&self) -> Vec<(FileKey, FileEntry)> {
        self.store
            .snapshot()
            .iter()
            .filter_map(|(k, v)| {
                let key: [u8; 32] = k.as_slice().try_into().ok()?;
                Some((FileKey::from_bytes(key), FileEntry::decode(v)?))
            })
            .collect()
    }

    /// Number of files indexed.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether no files are indexed.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Approximate index memory footprint in bytes.
    pub fn approximate_size(&self) -> usize {
        self.store.approximate_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(version: u64) -> FileEntry {
        FileEntry {
            user: 1,
            recipe_container_id: 77,
            recipe_offset: 4096,
            recipe_size: 512,
            file_size: 1 << 30,
            num_secrets: 131072,
            version,
        }
    }

    #[test]
    fn put_get_remove_round_trip() {
        let mut index = FileIndex::new();
        let key = FileKey::new(1, b"/home/alice/backup.tar");
        assert!(index.get(&key).is_none());
        index.put(key, entry(1));
        assert_eq!(index.get(&key), Some(entry(1)));
        assert_eq!(index.remove(&key), Some(entry(1)));
        assert!(index.get(&key).is_none());
        assert!(index.is_empty());
    }

    #[test]
    fn keys_separate_users_and_paths() {
        let a = FileKey::new(1, b"/home/alice/backup.tar");
        let b = FileKey::new(2, b"/home/alice/backup.tar");
        let c = FileKey::new(1, b"/home/alice/backup2.tar");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert_eq!(a, FileKey::new(1, b"/home/alice/backup.tar"));
    }

    #[test]
    fn key_derivation_is_length_prefixed() {
        // (user=1, "ab") must not collide with (user=1, "a" + trailing garbage
        // arranged differently).
        let a = FileKey::new(0x0000_0001_6162_0000, b"");
        let b = FileKey::new(0x0000_0001_0000_0000, b"ab\0\0");
        assert_ne!(a, b);
    }

    #[test]
    fn new_version_overwrites_old() {
        let mut index = FileIndex::new();
        let key = FileKey::new(9, b"/weekly/backup.tar");
        index.put(key, entry(1));
        index.put(key, entry(2));
        assert_eq!(index.get(&key).unwrap().version, 2);
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn entry_encoding_round_trips() {
        let e = FileEntry {
            user: 42,
            recipe_container_id: u64::MAX,
            recipe_offset: u32::MAX,
            recipe_size: 77,
            file_size: 123,
            num_secrets: 456,
            version: 789,
        };
        assert_eq!(FileEntry::decode(&e.encode()), Some(e.clone()));
        assert_eq!(FileEntry::decode(&[0u8; 47]), None);
        assert_eq!(FileEntry::decode(&[0u8; 40]), None);
        assert_eq!(
            e.recipe_location(),
            ShareLocation {
                container_id: u64::MAX,
                offset: u32::MAX,
                size: 77,
            }
        );
    }

    #[test]
    fn many_files_from_many_users() {
        let mut index = FileIndex::new();
        for user in 0..20u64 {
            for file in 0..100u32 {
                let key = FileKey::new(user, format!("/home/u{user}/f{file}").as_bytes());
                index.put(key, entry(file as u64));
            }
        }
        assert_eq!(index.len(), 2000);
        let probe = FileKey::new(7, b"/home/u7/f42");
        assert_eq!(index.get(&probe).unwrap().version, 42);
    }
}
