//! Index management for CDStore servers (§4.4).
//!
//! Each CDStore server keeps two index structures — the *file index* and the
//! *share index* — in a local key-value store. The paper uses LevelDB; this
//! crate provides a self-contained substitute with the same structural
//! ingredients (an LSM-style store with a write-buffer, sorted runs, Bloom
//! filters, and background compaction) plus the two CDStore-specific index
//! layers on top:
//!
//! * [`KvStore`] — the log-structured merge key-value store.
//! * [`FileIndex`] — maps `(user, pathname)` keys to file-recipe references.
//! * [`ShareIndex`] — maps share fingerprints to container references, owner
//!   lists, and per-user reference counts (the structure both deduplication
//!   stages query).
//! * [`sharded`] — thread-safe variants of all three, striped over
//!   per-stripe mutexes so a server can run many clients concurrently.
//!
//! # Examples
//!
//! ```
//! use cdstore_index::KvStore;
//!
//! let mut store = KvStore::new();
//! store.put(b"alpha".to_vec(), b"1".to_vec());
//! assert_eq!(store.get(b"alpha"), Some(b"1".to_vec()));
//! store.delete(b"alpha");
//! assert_eq!(store.get(b"alpha"), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bloom;
pub mod file_index;
pub mod kvstore;
mod run;
pub mod sharded;
pub mod share_index;

pub use bloom::BloomFilter;
pub use file_index::{FileEntry, FileIndex, FileKey};
pub use kvstore::{BlockCacheStats, KvStore, KvStoreConfig, KvStoreOpenStats, KvStoreStats};
pub use sharded::{
    FilePutOutcome, ShardedFileIndex, ShardedKvStore, ShardedShareIndex, StoreOutcome,
};
pub use share_index::{ReleaseReport, ShareAddOutcome, ShareEntry, ShareIndex, ShareLocation};
