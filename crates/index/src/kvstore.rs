//! A log-structured merge (LSM) key-value store, the LevelDB substitute.
//!
//! Writes land in an in-memory write buffer (the *memtable*); when the
//! buffer exceeds its budget it is frozen into an immutable sorted *run*
//! fronted by a Bloom filter. Reads consult the memtable first and then the
//! runs from newest to oldest, skipping runs whose Bloom filter rules the key
//! out. Deletions are tombstones until compaction drops them.
//!
//! The store runs in one of two modes behind the same API:
//!
//! * **Memory mode** ([`KvStore::new`]) keeps frozen runs as sorted vectors —
//!   fast, volatile, fine for tests and small deployments.
//! * **Disk mode** ([`KvStore::create`] / [`KvStore::open`]) spills frozen
//!   runs to a [`StorageBackend`] in the CRC-framed block format of the
//!   private `run` module, keeping only each run's Bloom filter and fence
//!   pointers
//!   resident. Block reads go through a byte-bounded LRU cache, so the
//!   memory footprint is `memtable + blooms + fences + cache budget`
//!   regardless of how many keys the store holds. A manifest object makes
//!   the run set reloadable: [`KvStore::open`] resumes exactly the runs a
//!   previous incarnation persisted.
//!
//! Instead of LevelDB's all-into-one merges, compaction is *tiered*: when
//! the run count exceeds `max_runs`, the adjacent window of
//! `compaction_fanin` runs with the fewest total bytes is merged, so write
//! amplification stays bounded as the index grows to 10⁸ fingerprints.
//! Tombstones are only dropped when the merge window includes the oldest
//! run (otherwise an older value could resurface).
//!
//! This mirrors the structure CDStore relies on from LevelDB [26, 44]: fast
//! random inserts/updates/deletes and Bloom-filtered lookups.
//!
//! # Durability and errors
//!
//! Runs are appended with the same fsync discipline as the metadata journal
//! and published by an atomic manifest `put`, so a crash can orphan a
//! half-written run object (swept on open) but never corrupt the manifest.
//! The lookup API keeps its infallible `Option` signatures; a backend I/O
//! error or checksummed corruption on the read path is unrecoverable for
//! the in-process caller and panics with the failing object key. Fallible
//! variants ([`KvStore::try_flush`]) exist for the write paths servers
//! drive directly.

use std::collections::BTreeMap;
use std::sync::Arc;

use cdstore_storage::{LruCache, StorageBackend, StorageError};

use crate::bloom::BloomFilter;
use crate::run::{
    manifest_key, parse_run_key, run_key_prefix, BlockCache, Manifest, RunHandle, RunWriter,
};

/// Configuration knobs of the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvStoreConfig {
    /// Number of entries the memtable may hold before being frozen.
    pub memtable_capacity: usize,
    /// Number of frozen runs that triggers a merge compaction.
    pub max_runs: usize,
    /// Bloom-filter bits per key for frozen runs.
    pub bloom_bits_per_key: usize,
    /// Target byte size of one data block in on-disk runs (disk mode only).
    pub block_bytes: usize,
    /// Byte budget of the block cache fronting on-disk runs (disk mode
    /// only).
    pub block_cache_bytes: usize,
    /// How many adjacent runs one tiered compaction merges.
    pub compaction_fanin: usize,
}

impl Default for KvStoreConfig {
    fn default() -> Self {
        KvStoreConfig {
            memtable_capacity: 64 * 1024,
            max_runs: 8,
            bloom_bits_per_key: 10,
            block_bytes: 4 * 1024,
            block_cache_bytes: 4 * 1024 * 1024,
            compaction_fanin: 4,
        }
    }
}

/// Operation counters, used to reason about index overhead in experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStoreStats {
    /// Number of `put` operations.
    pub puts: u64,
    /// Number of `get` operations.
    pub gets: u64,
    /// Number of `delete` operations.
    pub deletes: u64,
    /// Number of memtable flushes into runs.
    pub flushes: u64,
    /// Number of merge compactions.
    pub compactions: u64,
    /// Number of run probes skipped thanks to Bloom filters.
    pub bloom_skips: u64,
    /// Memtable flushes that failed at the backend and were deferred (the
    /// memtable is kept and the flush retried on the next trigger).
    pub flush_failures: u64,
}

/// Block-cache counters of a disk-backed store — the resident-memory story
/// of the disk index (`peak_bytes` never exceeds the configured budget).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Block fetches served from the cache.
    pub hits: u64,
    /// Block fetches that had to touch the backend.
    pub misses: u64,
    /// Blocks evicted to stay within the byte budget.
    pub evictions: u64,
    /// Bytes currently cached.
    pub current_bytes: usize,
    /// High-water mark of cached bytes.
    pub peak_bytes: usize,
    /// Configured byte budget.
    pub capacity_bytes: usize,
}

/// What [`KvStore::open`] found on the backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStoreOpenStats {
    /// Runs listed in the manifest and loaded intact.
    pub runs_loaded: usize,
    /// Manifest-listed runs dropped because their object was torn or
    /// corrupt (the manifest is rewritten without them).
    pub runs_dropped: usize,
    /// Run objects present on the backend but absent from the manifest
    /// (half-written leftovers of an interrupted flush), deleted on open.
    pub orphans_swept: usize,
}

/// Where a frozen run's entries live.
enum RunData {
    /// Sorted key → value-or-tombstone entries, resident.
    Memory(Vec<(Vec<u8>, Option<Vec<u8>>)>),
    /// An on-disk run; only fence pointers are resident (plus the Bloom
    /// filter in the owning [`Run`]).
    Disk(RunHandle),
}

/// One immutable sorted run.
struct Run {
    data: RunData,
    bloom: BloomFilter,
    /// Entries including tombstones.
    entries: u64,
    /// Approximate byte size — exact object size for disk runs, summed
    /// key/value lengths for memory runs. Drives tiered window selection.
    bytes: u64,
}

impl Run {
    fn from_sorted(entries: Vec<(Vec<u8>, Option<Vec<u8>>)>, bits_per_key: usize) -> Self {
        let mut bloom = BloomFilter::new(entries.len(), bits_per_key);
        let mut bytes = 0u64;
        for (k, v) in &entries {
            bloom.insert(k);
            bytes += (k.len() + v.as_ref().map_or(0, |v| v.len())) as u64;
        }
        Run {
            entries: entries.len() as u64,
            bytes,
            data: RunData::Memory(entries),
            bloom,
        }
    }

    fn from_disk(handle: RunHandle, bloom: BloomFilter) -> Self {
        Run {
            entries: handle.entry_count(),
            bytes: handle.total_bytes(),
            data: RunData::Disk(handle),
            bloom,
        }
    }
}

/// The state backing disk mode: where runs live and the cache in front of
/// their blocks.
struct DiskEnv {
    backend: Arc<dyn StorageBackend>,
    name: String,
    next_seq: u64,
    cache: BlockCache,
}

/// The LSM key-value store.
pub struct KvStore {
    config: KvStoreConfig,
    /// Active write buffer: key → value-or-tombstone.
    memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Frozen runs, newest last.
    runs: Vec<Run>,
    /// Disk-mode state (`None` in memory mode).
    disk: Option<DiskEnv>,
    /// Exact live (non-tombstoned) key count, maintained on every mutation.
    live: usize,
    stats: KvStoreStats,
    open_stats: KvStoreOpenStats,
}

impl Default for KvStore {
    fn default() -> Self {
        Self::new()
    }
}

impl KvStore {
    /// Creates a memory-mode store with default configuration.
    pub fn new() -> Self {
        Self::with_config(KvStoreConfig::default())
    }

    /// Creates a memory-mode store with an explicit configuration.
    pub fn with_config(config: KvStoreConfig) -> Self {
        KvStore {
            config,
            memtable: BTreeMap::new(),
            runs: Vec::new(),
            disk: None,
            live: 0,
            stats: KvStoreStats::default(),
            open_stats: KvStoreOpenStats::default(),
        }
    }

    /// Creates a *fresh* disk-backed store named `name` on the backend,
    /// deleting any manifest and run objects a previous incarnation of the
    /// same name left behind. Use [`KvStore::open`] to resume them instead.
    pub fn create(
        backend: Arc<dyn StorageBackend>,
        name: &str,
        config: KvStoreConfig,
    ) -> Result<Self, StorageError> {
        backend.delete(&manifest_key(name))?;
        let prefix = run_key_prefix(name);
        for key in backend.list()? {
            if key.starts_with(&prefix) {
                backend.delete(&key)?;
            }
        }
        let mut store = Self::with_config(config);
        store.disk = Some(DiskEnv {
            backend,
            name: name.to_string(),
            next_seq: 0,
            cache: LruCache::new(config.block_cache_bytes),
        });
        Ok(store)
    }

    /// Opens the disk-backed store named `name`, reloading the run set its
    /// manifest describes. Runs whose objects are torn or corrupt are
    /// dropped (and the manifest rewritten without them); run objects not in
    /// the manifest — leftovers of an interrupted flush — are swept. An
    /// absent manifest yields an empty store.
    pub fn open(
        backend: Arc<dyn StorageBackend>,
        name: &str,
        config: KvStoreConfig,
    ) -> Result<Self, StorageError> {
        let manifest = Manifest::read(&*backend, name)?.unwrap_or_default();
        let mut open_stats = KvStoreOpenStats::default();

        // Sweep orphan run objects (present on the backend, absent from the
        // manifest) before anything else: their sequence numbers may be
        // reused by the next flush.
        let listed: std::collections::BTreeSet<u64> = manifest.run_seqs.iter().copied().collect();
        let prefix = run_key_prefix(name);
        for key in backend.list()? {
            if !key.starts_with(&prefix) {
                continue;
            }
            let orphan = parse_run_key(name, &key).map(|seq| !listed.contains(&seq));
            if orphan.unwrap_or(true) {
                backend.delete(&key)?;
                open_stats.orphans_swept += 1;
            }
        }

        let mut runs = Vec::with_capacity(manifest.run_seqs.len());
        for &seq in &manifest.run_seqs {
            match RunHandle::load(&*backend, name, seq) {
                Ok((handle, bloom)) => {
                    open_stats.runs_loaded += 1;
                    runs.push(Run::from_disk(handle, bloom));
                }
                Err(_) => {
                    // Torn or corrupt: drop the run. The server-level WAL
                    // replay reconciles whatever state it carried.
                    open_stats.runs_dropped += 1;
                    backend.delete(&crate::run::run_key(name, seq))?;
                }
            }
        }

        let mut store = Self::with_config(config);
        store.open_stats = open_stats;
        store.disk = Some(DiskEnv {
            backend,
            name: name.to_string(),
            next_seq: manifest.next_seq,
            cache: LruCache::new(config.block_cache_bytes),
        });
        store.runs = runs;
        if open_stats.runs_dropped == 0 {
            store.live = manifest.live_keys as usize;
        } else {
            // The persisted count covered runs we dropped: recount by
            // streaming merge and republish the surviving run set.
            store.live = store.count_live_in_runs()?;
            store.write_manifest()?;
        }
        Ok(store)
    }

    /// Returns the operation counters.
    pub fn stats(&self) -> KvStoreStats {
        self.stats
    }

    /// What [`KvStore::open`] found (zeroes for stores not opened from
    /// disk).
    pub fn open_stats(&self) -> KvStoreOpenStats {
        self.open_stats
    }

    /// Whether runs spill to a storage backend.
    pub fn is_disk_backed(&self) -> bool {
        self.disk.is_some()
    }

    /// Block-cache counters (`None` in memory mode).
    pub fn cache_stats(&self) -> Option<BlockCacheStats> {
        self.disk.as_ref().map(|env| BlockCacheStats {
            hits: env.cache.hits(),
            misses: env.cache.misses(),
            evictions: env.cache.evictions(),
            current_bytes: env.cache.current_bytes(),
            peak_bytes: env.cache.peak_bytes(),
            capacity_bytes: env.cache.capacity_bytes(),
        })
    }

    /// Inserts or overwrites a key.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.stats.puts += 1;
        if !self.probe_is_live(&key) {
            self.live += 1;
        }
        self.memtable.insert(key, Some(value));
        self.maybe_flush();
    }

    /// Deletes a key (no-op if absent).
    pub fn delete(&mut self, key: &[u8]) {
        self.stats.deletes += 1;
        if self.probe_is_live(key) {
            self.live -= 1;
            self.memtable.insert(key.to_vec(), None);
            self.maybe_flush();
        }
        // Not live anywhere: no tombstone needed (any existing tombstone
        // already shadows older runs).
    }

    /// Looks up a key.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.stats.gets += 1;
        self.probe(key).flatten()
    }

    /// Returns whether the key is present (not deleted).
    pub fn contains(&mut self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Resolves a key across memtable and runs: `None` if unknown,
    /// `Some(None)` if tombstoned, `Some(Some(v))` if live. Panics on a
    /// backend read error (see the module docs on errors).
    fn probe(&mut self, key: &[u8]) -> Option<Option<Vec<u8>>> {
        if let Some(value) = self.memtable.get(key) {
            return Some(value.clone());
        }
        for run in self.runs.iter().rev() {
            if !run.bloom.may_contain(key) {
                self.stats.bloom_skips += 1;
                continue;
            }
            match &run.data {
                RunData::Memory(entries) => {
                    if let Ok(i) = entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                        return Some(entries[i].1.clone());
                    }
                }
                RunData::Disk(handle) => {
                    let env = self.disk.as_mut().expect("disk run without disk env");
                    match handle
                        .get(&*env.backend, &mut env.cache, key)
                        .unwrap_or_else(|e| panic!("disk index read failed: {e}"))
                    {
                        Some(found) => return Some(found),
                        None => continue,
                    }
                }
            }
        }
        None
    }

    fn probe_is_live(&mut self, key: &[u8]) -> bool {
        self.probe(key).map(|v| v.is_some()).unwrap_or(false)
    }

    /// Number of live keys. O(1): maintained across puts, deletes, flushes,
    /// and compactions.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the store holds no live keys.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// All live key/value pairs in key order. Streams disk runs block by
    /// block (bypassing the cache); panics on a backend read error.
    pub fn snapshot(&self) -> BTreeMap<Vec<u8>, Vec<u8>> {
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        // Oldest runs first so newer entries overwrite them.
        for run in &self.runs {
            match &run.data {
                RunData::Memory(entries) => {
                    for (k, v) in entries {
                        merged.insert(k.clone(), v.clone());
                    }
                }
                RunData::Disk(handle) => {
                    let env = self.disk.as_ref().expect("disk run without disk env");
                    for entry in handle.iter(&*env.backend) {
                        let (k, v) =
                            entry.unwrap_or_else(|e| panic!("disk index scan failed: {e}"));
                        merged.insert(k, v);
                    }
                }
            }
        }
        for (k, v) in &self.memtable {
            merged.insert(k.clone(), v.clone());
        }
        merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|value| (k, value)))
            .collect()
    }

    /// Live keys with a given prefix, in key order. Range-bounded on every
    /// source: the memtable and memory runs are entered by binary search,
    /// disk runs seek via their fence pointers — only blocks overlapping
    /// the prefix are read.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for run in &self.runs {
            match &run.data {
                RunData::Memory(entries) => {
                    let start = entries.partition_point(|(k, _)| k.as_slice() < prefix);
                    for (k, v) in &entries[start..] {
                        if !k.starts_with(prefix) {
                            break;
                        }
                        merged.insert(k.clone(), v.clone());
                    }
                }
                RunData::Disk(handle) => {
                    let env = self.disk.as_ref().expect("disk run without disk env");
                    for entry in handle.iter_from(&*env.backend, prefix) {
                        let (k, v) =
                            entry.unwrap_or_else(|e| panic!("disk index scan failed: {e}"));
                        if k.as_slice() < prefix {
                            // Leading entries of the seeked block.
                            continue;
                        }
                        if !k.starts_with(prefix) {
                            break;
                        }
                        merged.insert(k, v);
                    }
                }
            }
        }
        for (k, v) in self.memtable.range(prefix.to_vec()..) {
            if !k.starts_with(prefix) {
                break;
            }
            merged.insert(k.clone(), v.clone());
        }
        merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|value| (k, value)))
            .collect()
    }

    /// Forces the memtable to be frozen into a run, panicking on a backend
    /// write error ([`KvStore::try_flush`] is the fallible variant).
    pub fn flush(&mut self) {
        self.try_flush()
            .unwrap_or_else(|e| panic!("index flush failed: {e}"));
    }

    /// Freezes the memtable into a run (persisted in disk mode) and runs
    /// any due tiered compactions. On error the memtable is left intact and
    /// the flush can simply be retried.
    pub fn try_flush(&mut self) -> Result<(), StorageError> {
        if !self.memtable.is_empty() {
            match &mut self.disk {
                None => {
                    let entries: Vec<(Vec<u8>, Option<Vec<u8>>)> =
                        std::mem::take(&mut self.memtable).into_iter().collect();
                    self.runs
                        .push(Run::from_sorted(entries, self.config.bloom_bits_per_key));
                }
                Some(env) => {
                    let seq = env.next_seq;
                    let mut writer = RunWriter::new(
                        &*env.backend,
                        &env.name,
                        seq,
                        self.config.block_bytes,
                        self.memtable.len(),
                        self.config.bloom_bits_per_key,
                    )?;
                    for (k, v) in &self.memtable {
                        writer.push(k, v.as_deref())?;
                    }
                    let (handle, bloom) = writer
                        .finish()?
                        .expect("non-empty memtable produced an empty run");
                    self.runs.push(Run::from_disk(handle, bloom));
                    self.disk.as_mut().expect("disk env").next_seq = seq + 1;
                    // Publish the run atomically; on failure unwind so the
                    // memtable stays authoritative and the retry rewrites
                    // the same sequence number.
                    if let Err(e) = self.write_manifest() {
                        let run = self.runs.pop().expect("just pushed");
                        let env = self.disk.as_mut().expect("disk env");
                        env.next_seq = seq;
                        if let RunData::Disk(handle) = run.data {
                            let _ = env.backend.delete(handle.object_key());
                        }
                        return Err(e);
                    }
                    self.memtable.clear();
                }
            }
            self.stats.flushes += 1;
        }
        while self.runs.len() > self.config.max_runs {
            self.compact_tier()?;
        }
        Ok(())
    }

    /// Merges the adjacent window of `compaction_fanin` runs with the
    /// fewest total bytes (adjacency keeps the newest-wins order intact).
    fn compact_tier(&mut self) -> Result<(), StorageError> {
        let fanin = self.config.compaction_fanin.clamp(2, self.runs.len());
        let window_bytes = |start: usize| -> u64 {
            self.runs[start..start + fanin]
                .iter()
                .map(|r| r.bytes)
                .sum()
        };
        let start = (0..=self.runs.len() - fanin)
            .min_by_key(|&s| window_bytes(s))
            .expect("at least one window");
        self.merge_runs(start, start + fanin)
    }

    /// Merge-compacts all runs into one, dropping tombstones. In disk mode
    /// the memtable is flushed first (the merged run set plus manifest then
    /// fully describe the store). Panics on a backend error.
    pub fn compact(&mut self) {
        self.try_compact()
            .unwrap_or_else(|e| panic!("index compaction failed: {e}"));
    }

    /// Fallible variant of [`KvStore::compact`].
    pub fn try_compact(&mut self) -> Result<(), StorageError> {
        if self.disk.is_some() {
            self.try_flush()?;
        }
        if self.runs.len() <= 1 {
            return Ok(());
        }
        self.merge_runs(0, self.runs.len())
    }

    /// Merges runs `[start, end)` into one, newest-wins; tombstones are
    /// dropped iff the window includes the oldest run. Only mutates state
    /// after the merged run is durable.
    fn merge_runs(&mut self, start: usize, end: usize) -> Result<(), StorageError> {
        debug_assert!(start < end && end <= self.runs.len());
        // Manifests persist a runs-only live count, so disk-mode merges
        // must only happen with an empty memtable (flush/compact enforce
        // this ordering).
        debug_assert!(self.disk.is_none() || self.memtable.is_empty());
        let drop_tombstones = start == 0;
        let window = &self.runs[start..end];
        let expected: u64 = window.iter().map(|r| r.entries).sum();

        // One streaming iterator per run in the window, oldest first.
        type EntryIter<'a> =
            Box<dyn Iterator<Item = Result<(Vec<u8>, Option<Vec<u8>>), StorageError>> + 'a>;
        let mut sources: Vec<std::iter::Peekable<EntryIter<'_>>> = Vec::with_capacity(window.len());
        for run in window {
            let iter: EntryIter<'_> = match &run.data {
                RunData::Memory(entries) => {
                    Box::new(entries.iter().map(|(k, v)| Ok((k.clone(), v.clone()))))
                }
                RunData::Disk(handle) => {
                    let env = self.disk.as_ref().expect("disk run without disk env");
                    Box::new(handle.iter(&*env.backend))
                }
            };
            sources.push(iter.peekable());
        }

        enum Sink<'a> {
            Memory(Vec<(Vec<u8>, Option<Vec<u8>>)>),
            Disk(Box<RunWriter<'a>>, u64),
        }
        let mut sink = match &self.disk {
            None => Sink::Memory(Vec::new()),
            Some(env) => {
                let seq = env.next_seq;
                Sink::Disk(
                    Box::new(RunWriter::new(
                        &*env.backend,
                        &env.name,
                        seq,
                        self.config.block_bytes,
                        expected as usize,
                        self.config.bloom_bits_per_key,
                    )?),
                    seq,
                )
            }
        };

        // K-way merge: smallest key wins; on ties the newest source (the
        // highest window index) provides the value and every older source
        // skips its now-shadowed entry.
        loop {
            let mut min_key: Option<Vec<u8>> = None;
            for source in sources.iter_mut() {
                match source.peek() {
                    Some(Ok((k, _)))
                        if min_key.as_deref().map(|m| k.as_slice() < m).unwrap_or(true) =>
                    {
                        min_key = Some(k.clone());
                    }
                    Some(Ok(_)) => {}
                    Some(Err(_)) => {
                        return Err(source.next().expect("peeked").expect_err("peeked error"));
                    }
                    None => {}
                }
            }
            let Some(key) = min_key else { break };
            let mut newest: Option<Option<Vec<u8>>> = None;
            for source in sources.iter_mut() {
                if matches!(source.peek(), Some(Ok((k, _))) if *k == key) {
                    let (_, v) = source.next().expect("peeked").expect("peeked ok");
                    newest = Some(v);
                }
            }
            let value = newest.expect("some source held the min key");
            if drop_tombstones && value.is_none() {
                continue;
            }
            match &mut sink {
                Sink::Memory(out) => out.push((key, value)),
                Sink::Disk(writer, _) => writer.push(&key, value.as_deref())?,
            }
        }
        drop(sources);

        let merged = match sink {
            Sink::Memory(out) => {
                if out.is_empty() {
                    None
                } else {
                    Some(Run::from_sorted(out, self.config.bloom_bits_per_key))
                }
            }
            Sink::Disk(writer, seq) => {
                let finished = writer.finish()?;
                self.disk.as_mut().expect("disk env").next_seq = seq + 1;
                finished.map(|(handle, bloom)| Run::from_disk(handle, bloom))
            }
        };

        // Swap the window for the merged run, then publish and delete the
        // replaced objects. A crash between these steps leaves orphans the
        // next open sweeps.
        let replaced: Vec<Run> = self.runs.splice(start..end, merged).collect();
        if self.disk.is_some() {
            // The manifest write publishes the merge; if it fails we are
            // mid-transition, but open() falls back to the old manifest and
            // sweeps the merged run as an orphan, so correctness holds.
            self.write_manifest()?;
            let env = self.disk.as_mut().expect("disk env");
            let dead: Vec<u64> = replaced
                .iter()
                .filter_map(|r| match &r.data {
                    RunData::Disk(handle) => Some(handle.seq()),
                    RunData::Memory(_) => None,
                })
                .collect();
            env.cache.retain(|&(run_seq, _)| !dead.contains(&run_seq));
            for run in &replaced {
                if let RunData::Disk(handle) = &run.data {
                    env.backend.delete(handle.object_key())?;
                }
            }
        }
        self.stats.compactions += 1;
        Ok(())
    }

    /// Rewrites the manifest from the current run set. Disk mode only;
    /// callers guarantee the runs alone carry every live key (the memtable
    /// is empty or was just frozen into the newest run), so persisting
    /// `self.live` as the runs-only count is exact.
    fn write_manifest(&mut self) -> Result<(), StorageError> {
        let env = self.disk.as_ref().expect("manifest write without disk env");
        let manifest = Manifest {
            next_seq: env.next_seq,
            live_keys: self.live as u64,
            run_seqs: self
                .runs
                .iter()
                .map(|r| match &r.data {
                    RunData::Disk(handle) => handle.seq(),
                    RunData::Memory(_) => unreachable!("memory run in disk mode"),
                })
                .collect(),
        };
        manifest.write(&*env.backend, &env.name)
    }

    /// Counts live keys by streaming a newest-wins merge over the runs
    /// (used when the persisted count is stale after dropping a torn run).
    fn count_live_in_runs(&self) -> Result<usize, StorageError> {
        let env = self.disk.as_ref().expect("recount without disk env");
        type EntryIter<'a> =
            Box<dyn Iterator<Item = Result<(Vec<u8>, Option<Vec<u8>>), StorageError>> + 'a>;
        let mut sources: Vec<std::iter::Peekable<EntryIter<'_>>> = Vec::new();
        for run in &self.runs {
            match &run.data {
                RunData::Disk(handle) => {
                    let iter: EntryIter<'_> = Box::new(handle.iter(&*env.backend));
                    sources.push(iter.peekable());
                }
                RunData::Memory(_) => unreachable!("memory run in disk mode"),
            }
        }
        let mut live = 0usize;
        loop {
            let mut min_key: Option<Vec<u8>> = None;
            for source in sources.iter_mut() {
                match source.peek() {
                    Some(Ok((k, _)))
                        if min_key.as_deref().map(|m| k.as_slice() < m).unwrap_or(true) =>
                    {
                        min_key = Some(k.clone());
                    }
                    Some(Ok(_)) => {}
                    Some(Err(_)) => {
                        return Err(source.next().expect("peeked").expect_err("peeked error"));
                    }
                    None => {}
                }
            }
            let Some(key) = min_key else { break };
            let mut newest: Option<Option<Vec<u8>>> = None;
            for source in sources.iter_mut() {
                if matches!(source.peek(), Some(Ok((k, _))) if *k == key) {
                    let (_, v) = source.next().expect("peeked").expect("peeked ok");
                    newest = Some(v);
                }
            }
            if newest.expect("some source held the min key").is_some() {
                live += 1;
            }
        }
        Ok(live)
    }

    /// Number of frozen runs currently held (for tests and diagnostics).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Approximate *resident* memory footprint in bytes: memtable entries,
    /// Bloom filters, and — for disk runs — fence pointers plus the block
    /// cache, rather than the spilled data itself.
    pub fn approximate_size(&self) -> usize {
        let memtable: usize = self
            .memtable
            .iter()
            .map(|(k, v)| k.len() + v.as_ref().map_or(0, |v| v.len()))
            .sum();
        let runs: usize = self
            .runs
            .iter()
            .map(|r| {
                let data = match &r.data {
                    RunData::Memory(entries) => entries
                        .iter()
                        .map(|(k, v)| k.len() + v.as_ref().map_or(0, |v| v.len()))
                        .sum::<usize>(),
                    RunData::Disk(handle) => handle.meta_bytes(),
                };
                data + r.bloom.num_bits() / 8
            })
            .sum();
        let cache = self
            .disk
            .as_ref()
            .map(|env| env.cache.current_bytes())
            .unwrap_or(0);
        memtable + runs + cache
    }

    fn maybe_flush(&mut self) {
        if self.memtable.len() >= self.config.memtable_capacity {
            if let Err(_e) = self.try_flush() {
                // Keep the memtable (no data loss) and retry on the next
                // mutation; durability is provided by the server WAL above.
                self.stats.flush_failures += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdstore_storage::MemoryBackend;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn small_config() -> KvStoreConfig {
        KvStoreConfig {
            memtable_capacity: 16,
            max_runs: 3,
            ..KvStoreConfig::default()
        }
    }

    /// Runs the same scenario against a memory store and a fresh disk store.
    fn both_modes(test: impl Fn(KvStore)) {
        test(KvStore::with_config(small_config()));
        let backend: Arc<dyn StorageBackend> = Arc::new(MemoryBackend::new());
        test(KvStore::create(backend, "test", small_config()).unwrap());
    }

    #[test]
    fn put_get_delete_round_trip() {
        both_modes(|mut store| {
            store.put(b"k1".to_vec(), b"v1".to_vec());
            store.put(b"k2".to_vec(), b"v2".to_vec());
            assert_eq!(store.get(b"k1"), Some(b"v1".to_vec()));
            assert_eq!(store.get(b"k2"), Some(b"v2".to_vec()));
            assert_eq!(store.get(b"k3"), None);
            store.delete(b"k1");
            assert_eq!(store.get(b"k1"), None);
            assert_eq!(store.len(), 1);
        });
    }

    #[test]
    fn overwrites_return_latest_value() {
        both_modes(|mut store| {
            for round in 0..5u8 {
                for i in 0..50u8 {
                    store.put(vec![i], vec![round, i]);
                }
            }
            for i in 0..50u8 {
                assert_eq!(store.get(&[i]), Some(vec![4, i]));
            }
            assert_eq!(store.len(), 50);
        });
    }

    #[test]
    fn values_survive_flush_and_compaction() {
        both_modes(|mut store| {
            for i in 0..200u32 {
                store.put(i.to_be_bytes().to_vec(), (i * 3).to_be_bytes().to_vec());
            }
            assert!(store.stats().flushes > 0);
            assert!(store.stats().compactions > 0);
            for i in 0..200u32 {
                assert_eq!(
                    store.get(&i.to_be_bytes()),
                    Some((i * 3).to_be_bytes().to_vec())
                );
            }
            assert_eq!(store.len(), 200);
        });
    }

    #[test]
    fn deletes_survive_flush_and_compaction() {
        both_modes(|mut store| {
            for i in 0..100u32 {
                store.put(i.to_be_bytes().to_vec(), b"x".to_vec());
            }
            for i in (0..100u32).step_by(2) {
                store.delete(&i.to_be_bytes());
            }
            store.flush();
            store.compact();
            for i in 0..100u32 {
                let expected = i % 2 == 1;
                assert_eq!(store.contains(&i.to_be_bytes()), expected, "key {i}");
            }
            assert_eq!(store.len(), 50);
        });
    }

    #[test]
    fn compaction_reclaims_tombstones_and_merges_runs() {
        both_modes(|mut store| {
            for i in 0..64u32 {
                store.put(i.to_be_bytes().to_vec(), b"payload".to_vec());
            }
            store.flush();
            let runs_before = store.run_count();
            store.compact();
            assert!(store.run_count() <= runs_before);
            assert!(store.run_count() <= 1);
        });
    }

    #[test]
    fn tiered_compaction_bounds_run_count_without_full_merges() {
        let mut store = KvStore::with_config(KvStoreConfig {
            memtable_capacity: 8,
            max_runs: 4,
            compaction_fanin: 2,
            ..KvStoreConfig::default()
        });
        for i in 0..400u32 {
            store.put(i.to_be_bytes().to_vec(), vec![0u8; 16]);
        }
        // Auto-compaction keeps the run count bounded...
        assert!(store.run_count() <= 4);
        // ...without collapsing everything into one run every time.
        assert!(store.run_count() > 1);
        assert!(store.stats().compactions > 0);
        for i in 0..400u32 {
            assert!(store.contains(&i.to_be_bytes()), "key {i}");
        }
    }

    #[test]
    fn snapshot_and_prefix_scan() {
        both_modes(|mut store| {
            store.put(b"user1/file-a".to_vec(), b"1".to_vec());
            store.put(b"user1/file-b".to_vec(), b"2".to_vec());
            store.put(b"user2/file-a".to_vec(), b"3".to_vec());
            store.flush();
            store.put(b"user1/file-c".to_vec(), b"4".to_vec());
            let user1 = store.scan_prefix(b"user1/");
            assert_eq!(user1.len(), 3);
            assert_eq!(store.snapshot().len(), 4);
            // Deleted keys drop out of scans.
            store.delete(b"user1/file-b");
            assert_eq!(store.scan_prefix(b"user1/").len(), 2);
            assert_eq!(store.scan_prefix(b"user3/"), vec![]);
        });
    }

    #[test]
    fn bloom_filters_skip_runs_for_absent_keys() {
        both_modes(|mut store| {
            for i in 0..64u32 {
                store.put(i.to_be_bytes().to_vec(), b"v".to_vec());
            }
            store.flush();
            for i in 1000..1200u32 {
                let _ = store.get(&i.to_be_bytes());
            }
            assert!(
                store.stats().bloom_skips > 100,
                "bloom skips: {}",
                store.stats().bloom_skips
            );
        });
    }

    #[test]
    fn approximate_size_grows_with_data() {
        let mut store = KvStore::new();
        let empty = store.approximate_size();
        for i in 0..100u32 {
            store.put(i.to_be_bytes().to_vec(), vec![0u8; 100]);
        }
        assert!(store.approximate_size() > empty + 100 * 100);
    }

    #[test]
    fn disk_store_reopens_with_its_data() {
        let backend: Arc<dyn StorageBackend> = Arc::new(MemoryBackend::new());
        let mut store = KvStore::create(backend.clone(), "idx", small_config()).unwrap();
        for i in 0..300u32 {
            store.put(i.to_be_bytes().to_vec(), (i * 7).to_be_bytes().to_vec());
        }
        for i in (0..300u32).step_by(3) {
            store.delete(&i.to_be_bytes());
        }
        store.flush();
        let expected = store.snapshot();
        let live = store.len();
        drop(store);

        let mut reopened = KvStore::open(backend, "idx", small_config()).unwrap();
        assert!(reopened.is_disk_backed());
        assert_eq!(reopened.open_stats().runs_dropped, 0);
        assert_eq!(reopened.len(), live);
        assert_eq!(reopened.snapshot(), expected);
        for i in 0..300u32 {
            let want = if i % 3 == 0 {
                None
            } else {
                Some((i * 7).to_be_bytes().to_vec())
            };
            assert_eq!(reopened.get(&i.to_be_bytes()), want);
        }
    }

    #[test]
    fn unflushed_memtable_is_lost_on_reopen_but_state_is_consistent() {
        let backend: Arc<dyn StorageBackend> = Arc::new(MemoryBackend::new());
        let mut store = KvStore::create(backend.clone(), "idx", small_config()).unwrap();
        for i in 0..40u32 {
            store.put(i.to_be_bytes().to_vec(), b"flushed".to_vec());
        }
        store.flush();
        // These stay in the memtable (capacity 16 not reached after flush).
        for i in 100..105u32 {
            store.put(i.to_be_bytes().to_vec(), b"volatile".to_vec());
        }
        drop(store);
        let mut reopened = KvStore::open(backend, "idx", small_config()).unwrap();
        assert_eq!(reopened.len(), 40);
        assert_eq!(reopened.get(&100u32.to_be_bytes()), None);
        assert_eq!(reopened.get(&5u32.to_be_bytes()), Some(b"flushed".to_vec()));
        assert_eq!(reopened.len(), reopened.snapshot().len());
    }

    #[test]
    fn create_discards_previous_incarnation() {
        let backend: Arc<dyn StorageBackend> = Arc::new(MemoryBackend::new());
        let mut store = KvStore::create(backend.clone(), "idx", small_config()).unwrap();
        store.put(b"old".to_vec(), b"state".to_vec());
        store.flush();
        drop(store);
        let mut fresh = KvStore::create(backend.clone(), "idx", small_config()).unwrap();
        assert_eq!(fresh.get(b"old"), None);
        assert_eq!(fresh.len(), 0);
        // The old objects are gone from the backend too.
        assert!(backend.list().unwrap().is_empty());
    }

    #[test]
    fn orphan_runs_are_swept_on_open() {
        let backend: Arc<dyn StorageBackend> = Arc::new(MemoryBackend::new());
        let mut store = KvStore::create(backend.clone(), "idx", small_config()).unwrap();
        store.put(b"a".to_vec(), b"1".to_vec());
        store.flush();
        drop(store);
        // A half-written run object from an interrupted flush.
        backend
            .put("idx-idx-r-00000000000000ff", b"torn garbage")
            .unwrap();
        let reopened = KvStore::open(backend.clone(), "idx", small_config()).unwrap();
        assert_eq!(reopened.open_stats().orphans_swept, 1);
        assert!(!backend.exists("idx-idx-r-00000000000000ff").unwrap());
        assert_eq!(reopened.len(), 1);
    }

    #[test]
    fn torn_manifest_listed_run_is_dropped_consistently() {
        let backend: Arc<dyn StorageBackend> = Arc::new(MemoryBackend::new());
        let config = KvStoreConfig {
            memtable_capacity: 100,
            ..KvStoreConfig::default()
        };
        let mut store = KvStore::create(backend.clone(), "idx", config).unwrap();
        for i in 0..20u32 {
            store.put(i.to_be_bytes().to_vec(), b"first".to_vec());
        }
        store.flush();
        for i in 20..40u32 {
            store.put(i.to_be_bytes().to_vec(), b"second".to_vec());
        }
        store.flush();
        assert_eq!(store.run_count(), 2);
        drop(store);
        // Truncate the second run's object to a prefix.
        let keys: Vec<String> = backend
            .list()
            .unwrap()
            .into_iter()
            .filter(|k| k.starts_with("idx-idx-r-"))
            .collect();
        assert_eq!(keys.len(), 2);
        let victim = keys.last().unwrap();
        let data = backend.get(victim).unwrap();
        backend.put(victim, &data[..data.len() / 2]).unwrap();

        let mut reopened = KvStore::open(backend, "idx", small_config()).unwrap();
        assert_eq!(reopened.open_stats().runs_dropped, 1);
        assert_eq!(reopened.open_stats().runs_loaded, 1);
        // The surviving run's keys read back; the dropped run's are gone;
        // the live count was recounted to match.
        assert_eq!(reopened.len(), 20);
        assert_eq!(reopened.len(), reopened.snapshot().len());
        assert_eq!(reopened.get(&5u32.to_be_bytes()), Some(b"first".to_vec()));
        assert_eq!(reopened.get(&25u32.to_be_bytes()), None);
    }

    #[test]
    fn block_cache_serves_hot_reads_within_budget() {
        let config = KvStoreConfig {
            memtable_capacity: 64,
            block_cache_bytes: 16 * 1024,
            ..KvStoreConfig::default()
        };
        let backend: Arc<dyn StorageBackend> = Arc::new(MemoryBackend::new());
        let mut store = KvStore::create(backend, "idx", config).unwrap();
        for i in 0..2000u32 {
            store.put(i.to_be_bytes().to_vec(), vec![0xabu8; 64]);
        }
        store.flush();
        // Cold pass misses, hot pass hits.
        for i in 0..50u32 {
            assert!(store.contains(&i.to_be_bytes()));
        }
        let cold = store.cache_stats().unwrap();
        for i in 0..50u32 {
            assert!(store.contains(&i.to_be_bytes()));
        }
        let hot = store.cache_stats().unwrap();
        assert!(hot.hits > cold.hits);
        assert_eq!(hot.misses, cold.misses);
        assert!(hot.peak_bytes <= hot.capacity_bytes);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn behaves_like_a_btreemap(ops in proptest::collection::vec(
            (any::<u8>(), proptest::option::of(any::<u8>())), 0..400)) {
            // Model-based test: the store must agree with a reference map
            // under an arbitrary interleaving of puts and deletes.
            let mut store = KvStore::with_config(KvStoreConfig {
                memtable_capacity: 7,
                max_runs: 2,
                bloom_bits_per_key: 8,
                ..KvStoreConfig::default()
            });
            let mut model: std::collections::BTreeMap<Vec<u8>, Vec<u8>> = Default::default();
            for (key_byte, maybe_value) in ops {
                let key = vec![key_byte % 32];
                match maybe_value {
                    Some(v) => {
                        store.put(key.clone(), vec![v]);
                        model.insert(key, vec![v]);
                    }
                    None => {
                        store.delete(&key);
                        model.remove(&key);
                    }
                }
            }
            prop_assert_eq!(store.len(), model.len());
            for k in 0..32u8 {
                prop_assert_eq!(store.get(&[k]), model.get(&vec![k]).cloned());
            }
            let snapshot = store.snapshot();
            prop_assert_eq!(snapshot, model);
        }

        #[test]
        fn random_workload_preserves_all_live_keys(seed: u64) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut store = KvStore::with_config(small_config());
            let mut model = std::collections::BTreeMap::new();
            for _ in 0..500 {
                let key: Vec<u8> = (0..rng.gen_range(1..8)).map(|_| rng.gen_range(b'a'..=b'f')).collect();
                if rng.gen_bool(0.8) {
                    let value = vec![rng.gen::<u8>(); rng.gen_range(1..16)];
                    store.put(key.clone(), value.clone());
                    model.insert(key, value);
                } else {
                    store.delete(&key);
                    model.remove(&key);
                }
            }
            prop_assert_eq!(store.len(), model.len());
            prop_assert_eq!(store.snapshot(), model);
        }
    }
}
