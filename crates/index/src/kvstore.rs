//! A log-structured merge (LSM) key-value store, the LevelDB substitute.
//!
//! Writes land in an in-memory write buffer (the *memtable*); when the
//! buffer exceeds its budget it is frozen into an immutable sorted *run*
//! fronted by a Bloom filter. Reads consult the memtable first and then the
//! runs from newest to oldest, skipping runs whose Bloom filter rules the key
//! out. When the number of runs grows past a threshold they are merge-
//! compacted into one. Deletions are tombstones until compaction drops them.
//!
//! This mirrors the structure CDStore relies on from LevelDB [26, 44]: fast
//! random inserts/updates/deletes and Bloom-filtered lookups.

use std::collections::BTreeMap;

use crate::bloom::BloomFilter;

/// Configuration knobs of the store.
#[derive(Debug, Clone, Copy)]
pub struct KvStoreConfig {
    /// Number of entries the memtable may hold before being frozen.
    pub memtable_capacity: usize,
    /// Number of frozen runs that triggers a merge compaction.
    pub max_runs: usize,
    /// Bloom-filter bits per key for frozen runs.
    pub bloom_bits_per_key: usize,
}

impl Default for KvStoreConfig {
    fn default() -> Self {
        KvStoreConfig {
            memtable_capacity: 64 * 1024,
            max_runs: 8,
            bloom_bits_per_key: 10,
        }
    }
}

/// Operation counters, used to reason about index overhead in experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStoreStats {
    /// Number of `put` operations.
    pub puts: u64,
    /// Number of `get` operations.
    pub gets: u64,
    /// Number of `delete` operations.
    pub deletes: u64,
    /// Number of memtable flushes into runs.
    pub flushes: u64,
    /// Number of merge compactions.
    pub compactions: u64,
    /// Number of run probes skipped thanks to Bloom filters.
    pub bloom_skips: u64,
}

/// One immutable sorted run.
struct Run {
    /// Sorted key → value-or-tombstone entries.
    entries: Vec<(Vec<u8>, Option<Vec<u8>>)>,
    bloom: BloomFilter,
}

impl Run {
    fn from_sorted(entries: Vec<(Vec<u8>, Option<Vec<u8>>)>, bits_per_key: usize) -> Self {
        let mut bloom = BloomFilter::new(entries.len(), bits_per_key);
        for (k, _) in &entries {
            bloom.insert(k);
        }
        Run { entries, bloom }
    }

    fn get(&self, key: &[u8]) -> Option<&Option<Vec<u8>>> {
        self.entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| &self.entries[i].1)
    }
}

/// The LSM key-value store.
pub struct KvStore {
    config: KvStoreConfig,
    /// Active write buffer: key → value-or-tombstone.
    memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Frozen runs, newest last.
    runs: Vec<Run>,
    stats: KvStoreStats,
}

impl Default for KvStore {
    fn default() -> Self {
        Self::new()
    }
}

impl KvStore {
    /// Creates a store with default configuration.
    pub fn new() -> Self {
        Self::with_config(KvStoreConfig::default())
    }

    /// Creates a store with an explicit configuration.
    pub fn with_config(config: KvStoreConfig) -> Self {
        KvStore {
            config,
            memtable: BTreeMap::new(),
            runs: Vec::new(),
            stats: KvStoreStats::default(),
        }
    }

    /// Returns the operation counters.
    pub fn stats(&self) -> KvStoreStats {
        self.stats
    }

    /// Inserts or overwrites a key.
    pub fn put(&mut self, key: Vec<u8>, value: Vec<u8>) {
        self.stats.puts += 1;
        self.memtable.insert(key, Some(value));
        self.maybe_flush();
    }

    /// Deletes a key (no-op if absent).
    pub fn delete(&mut self, key: &[u8]) {
        self.stats.deletes += 1;
        self.memtable.insert(key.to_vec(), None);
        self.maybe_flush();
    }

    /// Looks up a key.
    pub fn get(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        self.stats.gets += 1;
        if let Some(value) = self.memtable.get(key) {
            return value.clone();
        }
        for run in self.runs.iter().rev() {
            if !run.bloom.may_contain(key) {
                self.stats.bloom_skips += 1;
                continue;
            }
            if let Some(value) = run.get(key) {
                return value.clone();
            }
        }
        None
    }

    /// Returns whether the key is present (not deleted).
    pub fn contains(&mut self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Number of live keys (scans all structures; intended for tests and
    /// statistics, not the hot path).
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Whether the store holds no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over all live key/value pairs in key order.
    pub fn snapshot(&self) -> BTreeMap<Vec<u8>, Vec<u8>> {
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        // Oldest runs first so newer entries overwrite them.
        for run in &self.runs {
            for (k, v) in &run.entries {
                merged.insert(k.clone(), v.clone());
            }
        }
        for (k, v) in &self.memtable {
            merged.insert(k.clone(), v.clone());
        }
        merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|value| (k, value)))
            .collect()
    }

    /// Iterates over live keys with a given prefix.
    pub fn scan_prefix(&self, prefix: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
        self.snapshot()
            .into_iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .collect()
    }

    /// Forces the memtable to be frozen into a run.
    pub fn flush(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        let entries: Vec<(Vec<u8>, Option<Vec<u8>>)> =
            std::mem::take(&mut self.memtable).into_iter().collect();
        self.runs
            .push(Run::from_sorted(entries, self.config.bloom_bits_per_key));
        self.stats.flushes += 1;
        if self.runs.len() > self.config.max_runs {
            self.compact();
        }
    }

    /// Merge-compacts all runs into one, dropping tombstones.
    pub fn compact(&mut self) {
        if self.runs.len() <= 1 {
            return;
        }
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for run in self.runs.drain(..) {
            for (k, v) in run.entries {
                merged.insert(k, v);
            }
        }
        // Tombstones can be dropped once all older runs are merged away.
        let entries: Vec<(Vec<u8>, Option<Vec<u8>>)> =
            merged.into_iter().filter(|(_, v)| v.is_some()).collect();
        if !entries.is_empty() {
            self.runs
                .push(Run::from_sorted(entries, self.config.bloom_bits_per_key));
        }
        self.stats.compactions += 1;
    }

    /// Number of frozen runs currently held (for tests and diagnostics).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Approximate memory footprint in bytes (keys + values + Bloom bits).
    pub fn approximate_size(&self) -> usize {
        let memtable: usize = self
            .memtable
            .iter()
            .map(|(k, v)| k.len() + v.as_ref().map_or(0, |v| v.len()))
            .sum();
        let runs: usize = self
            .runs
            .iter()
            .map(|r| {
                r.entries
                    .iter()
                    .map(|(k, v)| k.len() + v.as_ref().map_or(0, |v| v.len()))
                    .sum::<usize>()
                    + r.bloom.num_bits() / 8
            })
            .sum();
        memtable + runs
    }

    fn maybe_flush(&mut self) {
        if self.memtable.len() >= self.config.memtable_capacity {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    fn small_config() -> KvStoreConfig {
        KvStoreConfig {
            memtable_capacity: 16,
            max_runs: 3,
            bloom_bits_per_key: 10,
        }
    }

    #[test]
    fn put_get_delete_round_trip() {
        let mut store = KvStore::new();
        store.put(b"k1".to_vec(), b"v1".to_vec());
        store.put(b"k2".to_vec(), b"v2".to_vec());
        assert_eq!(store.get(b"k1"), Some(b"v1".to_vec()));
        assert_eq!(store.get(b"k2"), Some(b"v2".to_vec()));
        assert_eq!(store.get(b"k3"), None);
        store.delete(b"k1");
        assert_eq!(store.get(b"k1"), None);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn overwrites_return_latest_value() {
        let mut store = KvStore::with_config(small_config());
        for round in 0..5u8 {
            for i in 0..50u8 {
                store.put(vec![i], vec![round, i]);
            }
        }
        for i in 0..50u8 {
            assert_eq!(store.get(&[i]), Some(vec![4, i]));
        }
    }

    #[test]
    fn values_survive_flush_and_compaction() {
        let mut store = KvStore::with_config(small_config());
        for i in 0..200u32 {
            store.put(i.to_be_bytes().to_vec(), (i * 3).to_be_bytes().to_vec());
        }
        assert!(store.stats().flushes > 0);
        assert!(store.stats().compactions > 0);
        for i in 0..200u32 {
            assert_eq!(
                store.get(&i.to_be_bytes()),
                Some((i * 3).to_be_bytes().to_vec())
            );
        }
        assert_eq!(store.len(), 200);
    }

    #[test]
    fn deletes_survive_flush_and_compaction() {
        let mut store = KvStore::with_config(small_config());
        for i in 0..100u32 {
            store.put(i.to_be_bytes().to_vec(), b"x".to_vec());
        }
        for i in (0..100u32).step_by(2) {
            store.delete(&i.to_be_bytes());
        }
        store.flush();
        store.compact();
        for i in 0..100u32 {
            let expected = i % 2 == 1;
            assert_eq!(store.contains(&i.to_be_bytes()), expected, "key {i}");
        }
        assert_eq!(store.len(), 50);
    }

    #[test]
    fn compaction_reclaims_tombstones_and_merges_runs() {
        let mut store = KvStore::with_config(small_config());
        for i in 0..64u32 {
            store.put(i.to_be_bytes().to_vec(), b"payload".to_vec());
        }
        store.flush();
        let runs_before = store.run_count();
        store.compact();
        assert!(store.run_count() <= runs_before);
        assert!(store.run_count() <= 1);
    }

    #[test]
    fn snapshot_and_prefix_scan() {
        let mut store = KvStore::with_config(small_config());
        store.put(b"user1/file-a".to_vec(), b"1".to_vec());
        store.put(b"user1/file-b".to_vec(), b"2".to_vec());
        store.put(b"user2/file-a".to_vec(), b"3".to_vec());
        store.flush();
        store.put(b"user1/file-c".to_vec(), b"4".to_vec());
        let user1 = store.scan_prefix(b"user1/");
        assert_eq!(user1.len(), 3);
        assert_eq!(store.snapshot().len(), 4);
    }

    #[test]
    fn bloom_filters_skip_runs_for_absent_keys() {
        let mut store = KvStore::with_config(small_config());
        for i in 0..64u32 {
            store.put(i.to_be_bytes().to_vec(), b"v".to_vec());
        }
        store.flush();
        for i in 1000..1200u32 {
            let _ = store.get(&i.to_be_bytes());
        }
        assert!(
            store.stats().bloom_skips > 100,
            "bloom skips: {}",
            store.stats().bloom_skips
        );
    }

    #[test]
    fn approximate_size_grows_with_data() {
        let mut store = KvStore::new();
        let empty = store.approximate_size();
        for i in 0..100u32 {
            store.put(i.to_be_bytes().to_vec(), vec![0u8; 100]);
        }
        assert!(store.approximate_size() > empty + 100 * 100);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn behaves_like_a_btreemap(ops in proptest::collection::vec(
            (any::<u8>(), proptest::option::of(any::<u8>())), 0..400)) {
            // Model-based test: the store must agree with a reference map
            // under an arbitrary interleaving of puts and deletes.
            let mut store = KvStore::with_config(KvStoreConfig {
                memtable_capacity: 7,
                max_runs: 2,
                bloom_bits_per_key: 8,
            });
            let mut model: std::collections::BTreeMap<Vec<u8>, Vec<u8>> = Default::default();
            for (key_byte, maybe_value) in ops {
                let key = vec![key_byte % 32];
                match maybe_value {
                    Some(v) => {
                        store.put(key.clone(), vec![v]);
                        model.insert(key, vec![v]);
                    }
                    None => {
                        store.delete(&key);
                        model.remove(&key);
                    }
                }
            }
            for k in 0..32u8 {
                prop_assert_eq!(store.get(&[k]), model.get(&vec![k]).cloned());
            }
            let snapshot = store.snapshot();
            prop_assert_eq!(snapshot, model);
        }

        #[test]
        fn random_workload_preserves_all_live_keys(seed: u64) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut store = KvStore::with_config(small_config());
            let mut model = std::collections::BTreeMap::new();
            for _ in 0..500 {
                let key: Vec<u8> = (0..rng.gen_range(1..8)).map(|_| rng.gen_range(b'a'..=b'f')).collect();
                if rng.gen_bool(0.8) {
                    let value = vec![rng.gen::<u8>(); rng.gen_range(1..16)];
                    store.put(key.clone(), value.clone());
                    model.insert(key, value);
                } else {
                    store.delete(&key);
                    model.remove(&key);
                }
            }
            prop_assert_eq!(store.snapshot(), model);
        }
    }
}
