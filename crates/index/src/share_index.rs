//! The share index: fingerprint → container location, owners, and refcounts.
//!
//! The share index "holds the entries for all unique shares of different
//! files. Each entry describes a share, and is keyed by the share
//! fingerprint. It stores the reference to the container that holds the
//! share. To support intra-user deduplication, each entry also holds a list
//! of user identifiers to distinguish who owns the share, as well as a
//! reference count for each user to support deletion." (§4.4)

use std::sync::Arc;

use cdstore_crypto::Fingerprint;
use cdstore_storage::{StorageBackend, StorageError};

use crate::kvstore::{BlockCacheStats, KvStore, KvStoreConfig};

pub use cdstore_storage::ShareLocation;

/// One share-index entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShareEntry {
    /// Physical location of the unique copy of the share.
    pub location: ShareLocation,
    /// Owning users and their per-user reference counts.
    pub owners: Vec<(u64, u32)>,
}

impl ShareEntry {
    /// Total references across all users.
    pub fn total_refs(&self) -> u64 {
        self.owners.iter().map(|(_, c)| *c as u64).sum()
    }

    /// Whether the given user owns at least one reference.
    pub fn owned_by(&self, user: u64) -> bool {
        self.owners.iter().any(|(u, c)| *u == user && *c > 0)
    }

    /// Serialises the entry (the journal/checkpoint wire format — identical
    /// to the in-store representation).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.encode()
    }

    /// Parses an entry serialised by [`ShareEntry::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<ShareEntry> {
        Self::decode(bytes)
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 12 * self.owners.len());
        out.extend_from_slice(&self.location.container_id.to_be_bytes());
        out.extend_from_slice(&self.location.offset.to_be_bytes());
        out.extend_from_slice(&self.location.size.to_be_bytes());
        out.extend_from_slice(&(self.owners.len() as u32).to_be_bytes());
        for (user, count) in &self.owners {
            out.extend_from_slice(&user.to_be_bytes());
            out.extend_from_slice(&count.to_be_bytes());
        }
        out
    }

    fn decode(bytes: &[u8]) -> Option<ShareEntry> {
        if bytes.len() < 20 {
            return None;
        }
        let container_id = u64::from_be_bytes(bytes[0..8].try_into().ok()?);
        let offset = u32::from_be_bytes(bytes[8..12].try_into().ok()?);
        let size = u32::from_be_bytes(bytes[12..16].try_into().ok()?);
        let count = u32::from_be_bytes(bytes[16..20].try_into().ok()?) as usize;
        if bytes.len() != 20 + count * 12 {
            return None;
        }
        let mut owners = Vec::with_capacity(count);
        for i in 0..count {
            let base = 20 + i * 12;
            let user = u64::from_be_bytes(bytes[base..base + 8].try_into().ok()?);
            let refs = u32::from_be_bytes(bytes[base + 8..base + 12].try_into().ok()?);
            owners.push((user, refs));
        }
        Some(ShareEntry {
            location: ShareLocation {
                container_id,
                offset,
                size,
            },
            owners,
        })
    }
}

/// Outcome of recording a share upload in the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShareAddOutcome {
    /// The share was not yet stored: the caller must write it to a container.
    NewShare,
    /// The share already exists; only the reference bookkeeping changed
    /// (inter-user deduplication hit).
    Duplicate,
}

/// The result of dropping one reference with
/// [`ShareIndex::remove_reference`]: where the unique copy lives and how many
/// references remain, so the caller can drive the rest of the reclamation
/// protocol (tear down per-user ownership mappings when `user_refs` hits
/// zero, release the container bytes when `total_refs` hits zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReleaseReport {
    /// Physical location of the share's unique copy.
    pub location: ShareLocation,
    /// References the releasing user still holds after the decrement.
    pub user_refs: u32,
    /// References remaining across all users after the decrement. Zero means
    /// the entry was removed from the index and the share is now dead.
    pub total_refs: u64,
}

/// The per-server share index backed by the LSM store.
pub struct ShareIndex {
    store: KvStore,
}

impl Default for ShareIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl ShareIndex {
    /// Creates an empty share index.
    pub fn new() -> Self {
        ShareIndex {
            store: KvStore::new(),
        }
    }

    /// Creates a share index with an explicit store configuration.
    pub fn with_config(config: KvStoreConfig) -> Self {
        ShareIndex {
            store: KvStore::with_config(config),
        }
    }

    /// Creates a *fresh* disk-backed share index named `name` on the
    /// backend, discarding any previous incarnation of the same name.
    pub fn create(
        backend: Arc<dyn StorageBackend>,
        name: &str,
        config: KvStoreConfig,
    ) -> Result<Self, StorageError> {
        Ok(ShareIndex {
            store: KvStore::create(backend, name, config)?,
        })
    }

    /// Opens the disk-backed share index previously persisted under `name`,
    /// resuming the runs its manifest describes.
    pub fn open(
        backend: Arc<dyn StorageBackend>,
        name: &str,
        config: KvStoreConfig,
    ) -> Result<Self, StorageError> {
        Ok(ShareIndex {
            store: KvStore::open(backend, name, config)?,
        })
    }

    /// Freezes buffered writes into a durable run (disk mode; a cheap no-op
    /// when the write buffer is empty).
    pub fn flush_runs(&mut self) -> Result<(), StorageError> {
        self.store.try_flush()
    }

    /// Whether index runs spill to a storage backend.
    pub fn is_disk_backed(&self) -> bool {
        self.store.is_disk_backed()
    }

    /// Block-cache counters (`None` in memory mode).
    pub fn cache_stats(&self) -> Option<BlockCacheStats> {
        self.store.cache_stats()
    }

    /// Looks up the entry for a share fingerprint.
    pub fn lookup(&mut self, fp: &Fingerprint) -> Option<ShareEntry> {
        self.store
            .get(fp.as_bytes())
            .and_then(|bytes| ShareEntry::decode(&bytes))
    }

    /// Whether a share with this fingerprint is already stored (the
    /// inter-user deduplication test).
    pub fn is_stored(&mut self, fp: &Fingerprint) -> bool {
        self.lookup(fp).is_some()
    }

    /// Whether the given user already owns the share (the intra-user
    /// deduplication test answered on behalf of a client).
    pub fn user_owns(&mut self, fp: &Fingerprint, user: u64) -> bool {
        self.lookup(fp).map(|e| e.owned_by(user)).unwrap_or(false)
    }

    /// For a batch of fingerprints, returns which ones the user has already
    /// uploaded (the reply to a client's intra-user dedup query, §3.3).
    pub fn filter_user_duplicates(&mut self, user: u64, fps: &[Fingerprint]) -> Vec<bool> {
        fps.iter().map(|fp| self.user_owns(fp, user)).collect()
    }

    /// Records that `user` references the share. If the share is new, the
    /// provided `location` is stored and [`ShareAddOutcome::NewShare`] is
    /// returned; otherwise the existing location is kept and the user's
    /// reference count is incremented.
    pub fn add_reference(
        &mut self,
        fp: &Fingerprint,
        location: ShareLocation,
        user: u64,
    ) -> ShareAddOutcome {
        match self.lookup(fp) {
            Some(mut entry) => {
                self.add_reference_to_entry(fp, &mut entry, user);
                ShareAddOutcome::Duplicate
            }
            None => {
                self.insert_new(fp, location, user);
                ShareAddOutcome::NewShare
            }
        }
    }

    /// Like [`ShareIndex::add_reference`] for a share known to exist, for
    /// callers that already hold the decoded entry from a lookup: updates the
    /// entry's owner list in place and writes it back without re-reading the
    /// store.
    pub fn add_reference_to_entry(&mut self, fp: &Fingerprint, entry: &mut ShareEntry, user: u64) {
        match entry.owners.iter_mut().find(|(u, _)| *u == user) {
            Some((_, count)) => *count += 1,
            None => entry.owners.push((user, 1)),
        }
        self.store.put(fp.as_bytes().to_vec(), entry.encode());
    }

    /// Inserts a fresh entry for a share known to be absent, giving `user`
    /// its first reference.
    pub fn insert_new(&mut self, fp: &Fingerprint, location: ShareLocation, user: u64) {
        let entry = ShareEntry {
            location,
            owners: vec![(user, 1)],
        };
        self.store.put(fp.as_bytes().to_vec(), entry.encode());
    }

    /// Adds one reference for `user` to a share that must already be stored.
    /// Returns `false` (and changes nothing) if the fingerprint is unknown.
    pub fn add_reference_existing(&mut self, fp: &Fingerprint, user: u64) -> bool {
        match self.lookup(fp) {
            Some(mut entry) => {
                self.add_reference_to_entry(fp, &mut entry, user);
                true
            }
            None => false,
        }
    }

    /// Drops one reference held by `user`, deleting the entry when the last
    /// reference across all users goes. Returns `None` — a no-op — if the
    /// share is unknown or `user` holds no reference.
    pub fn remove_reference(&mut self, fp: &Fingerprint, user: u64) -> Option<ReleaseReport> {
        let mut entry = self.lookup(fp)?;
        let pos = entry
            .owners
            .iter()
            .position(|(u, c)| *u == user && *c > 0)?;
        entry.owners[pos].1 -= 1;
        let user_refs = entry.owners[pos].1;
        if user_refs == 0 {
            entry.owners.remove(pos);
        }
        let total_refs = entry.total_refs();
        if total_refs == 0 {
            self.store.delete(fp.as_bytes());
        } else {
            self.store.put(fp.as_bytes().to_vec(), entry.encode());
        }
        Some(ReleaseReport {
            location: entry.location,
            user_refs,
            total_refs,
        })
    }

    /// Atomically repoints the share's location from `from` to `to` — the
    /// index half of container compaction. Fails (returning `false`, changing
    /// nothing) if the share is gone or its location no longer equals `from`
    /// (someone else moved or deleted it first); the caller must then discard
    /// the copy it made at `to`.
    pub fn relocate(&mut self, fp: &Fingerprint, from: ShareLocation, to: ShareLocation) -> bool {
        let Some(mut entry) = self.lookup(fp) else {
            return false;
        };
        if entry.location != from {
            return false;
        }
        entry.location = to;
        self.store.put(fp.as_bytes().to_vec(), entry.encode());
        true
    }

    /// Installs an entry verbatim, overwriting any existing one — the
    /// restore half of checkpoint recovery. Unlike the reference-taking
    /// mutators, this performs no bookkeeping of its own.
    pub fn insert_entry(&mut self, fp: &Fingerprint, entry: &ShareEntry) {
        self.store.put(fp.as_bytes().to_vec(), entry.encode());
    }

    /// Removes an entry verbatim, whatever references it holds — journal
    /// replay of a share deletion and recovery's pruning of entries that
    /// point into containers lost with the crash.
    pub fn remove_entry(&mut self, fp: &Fingerprint) {
        self.store.delete(fp.as_bytes());
    }

    /// Every `(fingerprint, entry)` pair currently tracked — the snapshot
    /// half of checkpointing (and the iteration recovery's verification
    /// pass cross-checks against container headers).
    pub fn export(&self) -> Vec<(Fingerprint, ShareEntry)> {
        self.store
            .snapshot()
            .iter()
            .filter_map(|(k, v)| {
                let fp: [u8; 32] = k.as_slice().try_into().ok()?;
                Some((Fingerprint::from_bytes(fp), ShareEntry::decode(v)?))
            })
            .collect()
    }

    /// Number of unique shares tracked.
    pub fn unique_shares(&self) -> usize {
        self.store.len()
    }

    /// Total physical bytes referenced by the index (sum of unique share sizes).
    pub fn physical_bytes(&self) -> u64 {
        self.store
            .snapshot()
            .values()
            .filter_map(|v| ShareEntry::decode(v))
            .map(|e| e.location.size as u64)
            .sum()
    }

    /// Approximate index memory footprint in bytes (relevant to the cost
    /// model's EC2 instance sizing, §5.6).
    pub fn approximate_size(&self) -> usize {
        self.store.approximate_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(i: u32) -> Fingerprint {
        Fingerprint::of(&i.to_be_bytes())
    }

    fn loc(id: u64, size: u32) -> ShareLocation {
        ShareLocation {
            container_id: id,
            offset: 0,
            size,
        }
    }

    #[test]
    fn new_share_then_duplicates() {
        let mut index = ShareIndex::new();
        assert!(!index.is_stored(&fp(1)));
        assert_eq!(
            index.add_reference(&fp(1), loc(10, 100), 1),
            ShareAddOutcome::NewShare
        );
        assert_eq!(
            index.add_reference(&fp(1), loc(99, 100), 2),
            ShareAddOutcome::Duplicate
        );
        assert_eq!(
            index.add_reference(&fp(1), loc(99, 100), 1),
            ShareAddOutcome::Duplicate
        );
        let entry = index.lookup(&fp(1)).unwrap();
        // The original location wins; the duplicate's location is ignored.
        assert_eq!(entry.location, loc(10, 100));
        assert_eq!(entry.total_refs(), 3);
        assert!(entry.owned_by(1));
        assert!(entry.owned_by(2));
        assert!(!entry.owned_by(3));
        assert_eq!(index.unique_shares(), 1);
    }

    #[test]
    fn intra_user_dedup_query() {
        let mut index = ShareIndex::new();
        index.add_reference(&fp(1), loc(1, 10), 7);
        index.add_reference(&fp(2), loc(1, 10), 8);
        let result = index.filter_user_duplicates(7, &[fp(1), fp(2), fp(3)]);
        assert_eq!(result, vec![true, false, false]);
        assert!(index.user_owns(&fp(1), 7));
        assert!(!index.user_owns(&fp(2), 7));
    }

    #[test]
    fn reference_counting_supports_deletion() {
        let mut index = ShareIndex::new();
        index.add_reference(&fp(5), loc(3, 42), 1);
        index.add_reference(&fp(5), loc(3, 42), 1);
        index.add_reference(&fp(5), loc(3, 42), 2);
        // Two references from user 1, one from user 2.
        let first = index.remove_reference(&fp(5), 1).unwrap();
        assert_eq!((first.user_refs, first.total_refs), (1, 2));
        let second = index.remove_reference(&fp(5), 1).unwrap();
        assert_eq!((second.user_refs, second.total_refs), (0, 1));
        assert!(index.is_stored(&fp(5)));
        // User 1 holds nothing any more: further removals are no-ops.
        assert_eq!(index.remove_reference(&fp(5), 1), None);
        // Last reference gone: the entry is deleted and the location reported
        // for garbage collection.
        let last = index.remove_reference(&fp(5), 2).unwrap();
        assert_eq!(last.location, loc(3, 42));
        assert_eq!((last.user_refs, last.total_refs), (0, 0));
        assert!(!index.is_stored(&fp(5)));
        assert_eq!(index.remove_reference(&fp(5), 2), None);
    }

    #[test]
    fn add_reference_existing_requires_a_stored_share() {
        let mut index = ShareIndex::new();
        assert!(!index.add_reference_existing(&fp(1), 7));
        index.add_reference(&fp(1), loc(1, 10), 7);
        assert!(index.add_reference_existing(&fp(1), 7));
        assert!(index.add_reference_existing(&fp(1), 8));
        let entry = index.lookup(&fp(1)).unwrap();
        assert_eq!(entry.total_refs(), 3);
        assert!(entry.owned_by(8));
    }

    #[test]
    fn relocate_repoints_only_the_expected_location() {
        let mut index = ShareIndex::new();
        index.add_reference(&fp(9), loc(1, 64), 1);
        // A stale `from` (e.g. a compactor racing a newer move) fails.
        assert!(!index.relocate(&fp(9), loc(2, 64), loc(3, 64)));
        assert_eq!(index.lookup(&fp(9)).unwrap().location, loc(1, 64));
        // The expected `from` succeeds and preserves the owners.
        assert!(index.relocate(&fp(9), loc(1, 64), loc(3, 64)));
        let entry = index.lookup(&fp(9)).unwrap();
        assert_eq!(entry.location, loc(3, 64));
        assert!(entry.owned_by(1));
        // Unknown fingerprints fail.
        assert!(!index.relocate(&fp(10), loc(1, 64), loc(3, 64)));
    }

    #[test]
    fn physical_bytes_counts_unique_shares_once() {
        let mut index = ShareIndex::new();
        index.add_reference(&fp(1), loc(1, 1000), 1);
        index.add_reference(&fp(1), loc(1, 1000), 2);
        index.add_reference(&fp(2), loc(1, 500), 1);
        assert_eq!(index.physical_bytes(), 1500);
        assert_eq!(index.unique_shares(), 2);
    }

    #[test]
    fn entry_encoding_round_trips() {
        let entry = ShareEntry {
            location: loc(0xdeadbeef, 12345),
            owners: vec![(1, 3), (42, 1), (u64::MAX, 7)],
        };
        assert_eq!(ShareEntry::decode(&entry.encode()), Some(entry));
        assert_eq!(ShareEntry::decode(&[1, 2, 3]), None);
        assert_eq!(ShareEntry::decode(&[0u8; 21]), None);
    }

    #[test]
    fn many_shares_scale() {
        let mut index = ShareIndex::new();
        for i in 0..5000u32 {
            index.add_reference(&fp(i), loc(i as u64 / 100, 8192), (i % 9) as u64);
        }
        assert_eq!(index.unique_shares(), 5000);
        for i in (0..5000u32).step_by(97) {
            assert!(index.is_stored(&fp(i)));
        }
        assert!(index.approximate_size() > 5000 * 32);
    }
}
