//! On-disk sorted runs of the disk-resident [`crate::KvStore`].
//!
//! Each frozen run is one backend object of CRC-framed data blocks followed
//! by a persisted Bloom filter, a fence-pointer section, and a fixed-size
//! footer — the same framing discipline (`len | crc32 | payload`, torn-tail
//! detectable) as the metadata journal in `cdstore_storage::journal`:
//!
//! ```text
//! idx-{name}-r-{seq:016x}:
//!   [framed block]*          sorted (key, value-or-tombstone) entries
//!   [framed bloom]           BloomFilter::to_bytes
//!   [framed fence]           per-block (offset, len, entries, first_key)
//!   footer (44 bytes)        "CDRN" ver bloom_off/len fence_off/len crc
//! ```
//!
//! The run set itself is described by a manifest object (`idx-{name}-mf`),
//! written atomically with `put` *after* the runs it lists are durable, so a
//! crash can tear a run object's appended tail but never the manifest: the
//! old manifest simply keeps describing the old run set. Runs present on the
//! backend but absent from the manifest are orphans from an interrupted
//! flush/compaction and are swept on open.
//!
//! Reads hold only the bloom filter and fence pointers in memory; block
//! payloads are fetched with `StorageBackend::read_range` through the
//! caller's byte-bounded block cache.

use std::sync::Arc;

use cdstore_storage::journal::crc32;
use cdstore_storage::{LruCache, StorageBackend, StorageError};

use crate::bloom::BloomFilter;

/// Format version stamped into run footers and manifests.
const RUN_VERSION: u32 = 1;

/// Magic tag of a run footer.
const RUN_MAGIC: &[u8; 4] = b"CDRN";

/// Magic tag of a manifest object.
const MANIFEST_MAGIC: &[u8; 4] = b"CDMF";

/// Size of the fixed run footer.
const FOOTER_BYTES: usize = 44;

/// Size of a `len | crc32` frame header.
const FRAME_HEADER: usize = 8;

/// Pending writer bytes are appended to the backend in chunks of this size,
/// so building a run never buffers more than ~1 MB regardless of run size.
const APPEND_CHUNK: usize = 1024 * 1024;

/// Key prefix shared by every on-disk index object (runs and manifests) —
/// the third key family on a server backend, next to `container-` and
/// `meta-`.
pub(crate) const INDEX_KEY_PREFIX: &str = "idx-";

/// Backend key of a run object.
pub(crate) fn run_key(name: &str, seq: u64) -> String {
    format!("{INDEX_KEY_PREFIX}{name}-r-{seq:016x}")
}

/// Key prefix of all run objects of a named store.
pub(crate) fn run_key_prefix(name: &str) -> String {
    format!("{INDEX_KEY_PREFIX}{name}-r-")
}

/// Backend key of a named store's manifest.
pub(crate) fn manifest_key(name: &str) -> String {
    format!("{INDEX_KEY_PREFIX}{name}-mf")
}

/// Parses a run object key back into its sequence number.
pub(crate) fn parse_run_key(name: &str, key: &str) -> Option<u64> {
    u64::from_str_radix(key.strip_prefix(&run_key_prefix(name))?, 16).ok()
}

/// The block cache shared by all disk runs of one store: `(run seq, block
/// index)` → verified block payload.
pub(crate) type BlockCache = LruCache<(u64, u32), Arc<Vec<u8>>>;

fn corrupt(key: &str, what: &str) -> StorageError {
    StorageError::Corrupt(format!("{key}: {what}"))
}

/// Appends a `len | crc32 | payload` frame to `out`, returning the framed
/// length.
fn frame_into(out: &mut Vec<u8>, payload: &[u8]) -> usize {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    FRAME_HEADER + payload.len()
}

/// Verifies a full `len | crc32 | payload` frame and returns the payload.
fn unframe<'a>(framed: &'a [u8], key: &str) -> Result<&'a [u8], StorageError> {
    if framed.len() < FRAME_HEADER {
        return Err(corrupt(key, "truncated frame"));
    }
    let len = u32::from_le_bytes(framed[0..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(framed[4..8].try_into().expect("4 bytes"));
    let payload = framed
        .get(FRAME_HEADER..FRAME_HEADER + len)
        .ok_or_else(|| corrupt(key, "frame length out of range"))?;
    if crc32(payload) != crc {
        return Err(corrupt(key, "frame checksum mismatch"));
    }
    Ok(payload)
}

/// The manifest: which run objects are live, in age order (oldest first),
/// plus the allocator state and the live-key count of the run set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Manifest {
    /// Next run sequence number to allocate.
    pub next_seq: u64,
    /// Live (non-tombstoned) keys across the listed runs. Valid because
    /// manifests are only written at flush/compaction boundaries, when the
    /// memtable is empty.
    pub live_keys: u64,
    /// Sequence numbers of the live runs, oldest first.
    pub run_seqs: Vec<u64>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(24 + self.run_seqs.len() * 8);
        payload.extend_from_slice(&RUN_VERSION.to_le_bytes());
        payload.extend_from_slice(&self.next_seq.to_le_bytes());
        payload.extend_from_slice(&self.live_keys.to_le_bytes());
        payload.extend_from_slice(&(self.run_seqs.len() as u32).to_le_bytes());
        for seq in &self.run_seqs {
            payload.extend_from_slice(&seq.to_le_bytes());
        }
        let mut out = Vec::with_capacity(4 + FRAME_HEADER + payload.len());
        out.extend_from_slice(MANIFEST_MAGIC);
        frame_into(&mut out, &payload);
        out
    }

    fn decode(bytes: &[u8], key: &str) -> Result<Manifest, StorageError> {
        if bytes.len() < 4 || &bytes[0..4] != MANIFEST_MAGIC {
            return Err(corrupt(key, "bad manifest magic"));
        }
        let payload = unframe(&bytes[4..], key)?;
        if payload.len() < 24 {
            return Err(corrupt(key, "manifest too short"));
        }
        let version = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes"));
        if version != RUN_VERSION {
            return Err(corrupt(key, "unsupported manifest version"));
        }
        let next_seq = u64::from_le_bytes(payload[4..12].try_into().expect("8 bytes"));
        let live_keys = u64::from_le_bytes(payload[12..20].try_into().expect("8 bytes"));
        let count = u32::from_le_bytes(payload[20..24].try_into().expect("4 bytes")) as usize;
        if payload.len() != 24 + count * 8 {
            return Err(corrupt(key, "manifest run list truncated"));
        }
        let run_seqs = payload[24..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect();
        Ok(Manifest {
            next_seq,
            live_keys,
            run_seqs,
        })
    }

    /// Atomically publishes this manifest (plain `put`: the backends'
    /// write-temp-then-rename/replace discipline makes it all-or-nothing).
    pub fn write(&self, backend: &dyn StorageBackend, name: &str) -> Result<(), StorageError> {
        backend.put(&manifest_key(name), &self.encode())
    }

    /// Loads the manifest of a named store; `Ok(None)` when the store was
    /// never flushed (no manifest object).
    pub fn read(
        backend: &dyn StorageBackend,
        name: &str,
    ) -> Result<Option<Manifest>, StorageError> {
        let key = manifest_key(name);
        match backend.get(&key) {
            Ok(bytes) => Ok(Some(Self::decode(&bytes, &key)?)),
            Err(StorageError::NotFound(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// Fence pointer of one data block.
#[derive(Debug, Clone)]
struct BlockMeta {
    /// Byte offset of the framed block within the run object.
    offset: u64,
    /// Framed length (header included).
    len: u32,
    /// First key in the block.
    first_key: Vec<u8>,
}

/// An immutable on-disk run: its resident metadata (fence pointers) plus
/// enough accounting to drive compaction. The Bloom filter lives alongside
/// in the owning store's `Run`.
pub(crate) struct RunHandle {
    key: String,
    seq: u64,
    blocks: Vec<BlockMeta>,
    entry_count: u64,
    #[cfg_attr(not(test), allow(dead_code))]
    tombstones: u64,
    /// Size of the whole run object (the compaction cost metric).
    total_bytes: u64,
}

impl RunHandle {
    /// The run's sequence number (also its block-cache namespace).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Entries in the run, tombstones included.
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Tombstone entries in the run.
    #[cfg(test)]
    pub fn tombstones(&self) -> u64 {
        self.tombstones
    }

    /// Size of the backing object in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// The backend object key.
    pub fn object_key(&self) -> &str {
        &self.key
    }

    /// Resident metadata footprint: fence-pointer keys and bookkeeping.
    pub fn meta_bytes(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.first_key.len() + 24)
            .sum::<usize>()
    }

    /// Loads a run's metadata (footer, bloom, fence pointers) from the
    /// backend, verifying every checksum. A torn or corrupt object fails
    /// here — block payloads are verified lazily on first read.
    pub fn load(
        backend: &dyn StorageBackend,
        name: &str,
        seq: u64,
    ) -> Result<(RunHandle, BloomFilter), StorageError> {
        let key = run_key(name, seq);
        let total = backend.object_size(&key)?;
        if (total as usize) < FOOTER_BYTES {
            return Err(corrupt(&key, "object shorter than footer"));
        }
        let footer = backend.read_range(&key, total - FOOTER_BYTES as u64, FOOTER_BYTES)?;
        if &footer[0..4] != RUN_MAGIC {
            return Err(corrupt(&key, "bad footer magic"));
        }
        let crc = u32::from_le_bytes(footer[40..44].try_into().expect("4 bytes"));
        if crc32(&footer[0..40]) != crc {
            return Err(corrupt(&key, "footer checksum mismatch"));
        }
        let version = u32::from_le_bytes(footer[4..8].try_into().expect("4 bytes"));
        if version != RUN_VERSION {
            return Err(corrupt(&key, "unsupported run version"));
        }
        let bloom_off = u64::from_le_bytes(footer[8..16].try_into().expect("8 bytes"));
        let bloom_len = u64::from_le_bytes(footer[16..24].try_into().expect("8 bytes"));
        let fence_off = u64::from_le_bytes(footer[24..32].try_into().expect("8 bytes"));
        let fence_len = u64::from_le_bytes(footer[32..40].try_into().expect("8 bytes"));
        let sections_end = fence_off.checked_add(fence_len);
        if bloom_off.checked_add(bloom_len) != Some(fence_off)
            || sections_end != Some(total - FOOTER_BYTES as u64)
        {
            return Err(corrupt(&key, "inconsistent footer offsets"));
        }
        let bloom_framed = backend.read_range(&key, bloom_off, bloom_len as usize)?;
        let bloom = BloomFilter::from_bytes(unframe(&bloom_framed, &key)?)
            .ok_or_else(|| corrupt(&key, "malformed bloom section"))?;
        let fence_framed = backend.read_range(&key, fence_off, fence_len as usize)?;
        let fence = unframe(&fence_framed, &key)?;
        if fence.len() < 20 {
            return Err(corrupt(&key, "fence section too short"));
        }
        let entry_count = u64::from_le_bytes(fence[0..8].try_into().expect("8 bytes"));
        let tombstones = u64::from_le_bytes(fence[8..16].try_into().expect("8 bytes"));
        let block_count = u32::from_le_bytes(fence[16..20].try_into().expect("4 bytes")) as usize;
        let mut blocks = Vec::with_capacity(block_count);
        let mut cursor = 20usize;
        let mut next_offset = 0u64;
        for _ in 0..block_count {
            let head = fence
                .get(cursor..cursor + 16)
                .ok_or_else(|| corrupt(&key, "fence entry truncated"))?;
            let offset = u64::from_le_bytes(head[0..8].try_into().expect("8 bytes"));
            let len = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
            let klen = u32::from_le_bytes(head[12..16].try_into().expect("4 bytes")) as usize;
            cursor += 16;
            let first_key = fence
                .get(cursor..cursor + klen)
                .ok_or_else(|| corrupt(&key, "fence key truncated"))?
                .to_vec();
            cursor += klen;
            // Blocks must tile the data region exactly.
            if offset != next_offset {
                return Err(corrupt(&key, "fence offsets not contiguous"));
            }
            next_offset = offset + len as u64;
            blocks.push(BlockMeta {
                offset,
                len,
                first_key,
            });
        }
        if cursor != fence.len() || next_offset != bloom_off {
            return Err(corrupt(&key, "fence does not cover the data region"));
        }
        Ok((
            RunHandle {
                key,
                seq,
                blocks,
                entry_count,
                tombstones,
                total_bytes: total,
            },
            bloom,
        ))
    }

    /// Fetches and verifies one block's payload, through the cache.
    fn block(
        &self,
        backend: &dyn StorageBackend,
        cache: &mut BlockCache,
        idx: usize,
    ) -> Result<Arc<Vec<u8>>, StorageError> {
        let cache_key = (self.seq, idx as u32);
        if let Some(payload) = cache.get(&cache_key) {
            return Ok(payload.clone());
        }
        let meta = &self.blocks[idx];
        let framed = backend.read_range(&self.key, meta.offset, meta.len as usize)?;
        let payload = Arc::new(unframe(&framed, &self.key)?.to_vec());
        cache.put(cache_key, payload.clone(), payload.len());
        Ok(payload)
    }

    /// Index of the block that could contain `key`, if any.
    fn block_for(&self, key: &[u8]) -> Option<usize> {
        let idx = self
            .blocks
            .partition_point(|b| b.first_key.as_slice() <= key);
        idx.checked_sub(1)
    }

    /// Point lookup. `Ok(None)` means the run has no entry for the key;
    /// `Ok(Some(None))` is a tombstone.
    pub fn get(
        &self,
        backend: &dyn StorageBackend,
        cache: &mut BlockCache,
        key: &[u8],
    ) -> Result<Option<Option<Vec<u8>>>, StorageError> {
        let Some(idx) = self.block_for(key) else {
            return Ok(None);
        };
        let payload = self.block(backend, cache, idx)?;
        for entry in BlockEntries::new(&payload, &self.key) {
            let (k, v) = entry?;
            match k.cmp(key) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => return Ok(Some(v.map(|v| v.to_vec()))),
                std::cmp::Ordering::Greater => return Ok(None),
            }
        }
        Ok(None)
    }

    /// Streams the whole run oldest-to-newest key order, bypassing the block
    /// cache (sequential merge/snapshot traffic would only thrash it).
    pub fn iter<'a>(&'a self, backend: &'a dyn StorageBackend) -> RunIter<'a> {
        RunIter {
            handle: self,
            backend,
            next_block: 0,
            block: Vec::new(),
            cursor: 0,
            failed: false,
        }
    }

    /// Streams entries with keys `>= start`, seeking via the fence pointers
    /// so earlier blocks are never read.
    pub fn iter_from<'a>(&'a self, backend: &'a dyn StorageBackend, start: &[u8]) -> RunIter<'a> {
        let first_block = self.block_for(start).unwrap_or(0);
        RunIter {
            handle: self,
            backend,
            next_block: first_block,
            block: Vec::new(),
            cursor: 0,
            failed: false,
        }
    }
}

/// Parses the entries of one block payload:
/// `klen u32 | flag u8 | vlen u32 | key | value` per entry.
struct BlockEntries<'a> {
    payload: &'a [u8],
    cursor: usize,
    key: &'a str,
}

impl<'a> BlockEntries<'a> {
    fn new(payload: &'a [u8], key: &'a str) -> Self {
        BlockEntries {
            payload,
            cursor: 0,
            key,
        }
    }
}

impl<'a> Iterator for BlockEntries<'a> {
    type Item = Result<(&'a [u8], Option<&'a [u8]>), StorageError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.cursor >= self.payload.len() {
            return None;
        }
        match parse_entry(self.payload, self.cursor) {
            Ok((k, v, next)) => {
                self.cursor = next;
                Some(Ok((k, v)))
            }
            Err(()) => {
                self.cursor = self.payload.len();
                Some(Err(corrupt(self.key, "malformed block entry")))
            }
        }
    }
}

/// Parses one entry at `cursor`, returning `(key, value, next_cursor)`.
#[allow(clippy::type_complexity)]
fn parse_entry(payload: &[u8], cursor: usize) -> Result<(&[u8], Option<&[u8]>, usize), ()> {
    let head = payload.get(cursor..cursor + 9).ok_or(())?;
    let klen = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as usize;
    let flag = head[4];
    let vlen = u32::from_le_bytes(head[5..9].try_into().expect("4 bytes")) as usize;
    let key_start = cursor + 9;
    let key = payload.get(key_start..key_start + klen).ok_or(())?;
    let val_start = key_start + klen;
    let value = match flag {
        0 if vlen == 0 => None,
        1 => Some(payload.get(val_start..val_start + vlen).ok_or(())?),
        _ => return Err(()),
    };
    Ok((key, value, val_start + vlen))
}

/// Streaming iterator over a run's entries (one block resident at a time).
pub(crate) struct RunIter<'a> {
    handle: &'a RunHandle,
    backend: &'a dyn StorageBackend,
    next_block: usize,
    block: Vec<u8>,
    cursor: usize,
    failed: bool,
}

impl Iterator for RunIter<'_> {
    type Item = Result<(Vec<u8>, Option<Vec<u8>>), StorageError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if self.cursor < self.block.len() {
                match parse_entry(&self.block, self.cursor) {
                    Ok((k, v, next)) => {
                        self.cursor = next;
                        return Some(Ok((k.to_vec(), v.map(|v| v.to_vec()))));
                    }
                    Err(()) => {
                        self.failed = true;
                        return Some(Err(corrupt(&self.handle.key, "malformed block entry")));
                    }
                }
            }
            let meta = self.handle.blocks.get(self.next_block)?;
            self.next_block += 1;
            self.cursor = 0;
            let framed =
                match self
                    .backend
                    .read_range(&self.handle.key, meta.offset, meta.len as usize)
                {
                    Ok(framed) => framed,
                    Err(e) => {
                        self.failed = true;
                        return Some(Err(e));
                    }
                };
            match unframe(&framed, &self.handle.key) {
                Ok(payload) => self.block = payload.to_vec(),
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

/// Streaming writer producing one run object through batched appends: memory
/// stays bounded by `APPEND_CHUNK` + one block however large the run grows.
pub(crate) struct RunWriter<'a> {
    backend: &'a dyn StorageBackend,
    name: String,
    seq: u64,
    key: String,
    block_bytes: usize,
    bloom: BloomFilter,
    /// Bytes framed but not yet appended to the backend.
    pending: Vec<u8>,
    /// Object offset where the next sealed block will land.
    offset: u64,
    block: Vec<u8>,
    block_first_key: Vec<u8>,
    blocks: Vec<BlockMeta>,
    entry_count: u64,
    #[cfg_attr(not(test), allow(dead_code))]
    tombstones: u64,
}

impl<'a> RunWriter<'a> {
    /// Starts a run object. Any stale object under the same key (an orphan
    /// from an interrupted earlier write) is deleted first, since the writer
    /// appends.
    pub fn new(
        backend: &'a dyn StorageBackend,
        name: &str,
        seq: u64,
        block_bytes: usize,
        expected_entries: usize,
        bloom_bits_per_key: usize,
    ) -> Result<Self, StorageError> {
        let key = run_key(name, seq);
        backend.delete(&key)?;
        Ok(RunWriter {
            backend,
            name: name.to_string(),
            seq,
            key,
            block_bytes: block_bytes.max(256),
            bloom: BloomFilter::new(expected_entries, bloom_bits_per_key),
            pending: Vec::new(),
            offset: 0,
            block: Vec::new(),
            block_first_key: Vec::new(),
            blocks: Vec::new(),
            entry_count: 0,
            tombstones: 0,
        })
    }

    /// Appends one entry; keys must arrive in strictly ascending order.
    pub fn push(&mut self, key: &[u8], value: Option<&[u8]>) -> Result<(), StorageError> {
        if self.block.is_empty() {
            self.block_first_key = key.to_vec();
        }
        self.block
            .extend_from_slice(&(key.len() as u32).to_le_bytes());
        match value {
            Some(v) => {
                self.block.push(1);
                self.block
                    .extend_from_slice(&(v.len() as u32).to_le_bytes());
                self.block.extend_from_slice(key);
                self.block.extend_from_slice(v);
            }
            None => {
                self.block.push(0);
                self.block.extend_from_slice(&0u32.to_le_bytes());
                self.block.extend_from_slice(key);
                self.tombstones += 1;
            }
        }
        self.bloom.insert(key);
        self.entry_count += 1;
        if self.block.len() >= self.block_bytes {
            self.seal_block()?;
        }
        Ok(())
    }

    fn seal_block(&mut self) -> Result<(), StorageError> {
        if self.block.is_empty() {
            return Ok(());
        }
        let len = frame_into(&mut self.pending, &self.block) as u32;
        self.blocks.push(BlockMeta {
            offset: self.offset,
            len,
            first_key: std::mem::take(&mut self.block_first_key),
        });
        self.offset += len as u64;
        self.block.clear();
        if self.pending.len() >= APPEND_CHUNK {
            self.backend.append(&self.key, &self.pending)?;
            self.pending.clear();
        }
        Ok(())
    }

    /// Seals the run: flushes the last block, writes the bloom, fence, and
    /// footer sections, and reloads the run from the backend (so the caller
    /// gets exactly what a recovery would see). Returns `None` for an empty
    /// run — nothing was written and the object does not exist.
    pub fn finish(mut self) -> Result<Option<(RunHandle, BloomFilter)>, StorageError> {
        self.seal_block()?;
        if self.blocks.is_empty() {
            return Ok(None);
        }
        let bloom_off = self.offset;
        let bloom_len = frame_into(&mut self.pending, &self.bloom.to_bytes()) as u64;
        let fence_off = bloom_off + bloom_len;
        let mut fence = Vec::with_capacity(20 + self.blocks.len() * 24);
        fence.extend_from_slice(&self.entry_count.to_le_bytes());
        fence.extend_from_slice(&self.tombstones.to_le_bytes());
        fence.extend_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        for block in &self.blocks {
            fence.extend_from_slice(&block.offset.to_le_bytes());
            fence.extend_from_slice(&block.len.to_le_bytes());
            fence.extend_from_slice(&(block.first_key.len() as u32).to_le_bytes());
            fence.extend_from_slice(&block.first_key);
        }
        let fence_len = frame_into(&mut self.pending, &fence) as u64;
        let mut footer = Vec::with_capacity(FOOTER_BYTES);
        footer.extend_from_slice(RUN_MAGIC);
        footer.extend_from_slice(&RUN_VERSION.to_le_bytes());
        footer.extend_from_slice(&bloom_off.to_le_bytes());
        footer.extend_from_slice(&bloom_len.to_le_bytes());
        footer.extend_from_slice(&fence_off.to_le_bytes());
        footer.extend_from_slice(&fence_len.to_le_bytes());
        let crc = crc32(&footer);
        footer.extend_from_slice(&crc.to_le_bytes());
        self.pending.extend_from_slice(&footer);
        self.backend.append(&self.key, &self.pending)?;
        RunHandle::load(self.backend, &self.name, self.seq).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdstore_storage::MemoryBackend;

    fn entry(i: u32) -> (Vec<u8>, Option<Vec<u8>>) {
        let key = format!("key-{i:06}").into_bytes();
        if i.is_multiple_of(7) {
            (key, None)
        } else {
            (key, Some(format!("value-{i}").into_bytes()))
        }
    }

    fn write_run(backend: &MemoryBackend, n: u32) -> (RunHandle, BloomFilter) {
        let mut writer = RunWriter::new(backend, "t", 1, 512, n as usize, 10).unwrap();
        for i in 0..n {
            let (k, v) = entry(i);
            writer.push(&k, v.as_deref()).unwrap();
        }
        writer.finish().unwrap().unwrap()
    }

    #[test]
    fn round_trips_entries_blocks_and_metadata() {
        let backend = MemoryBackend::new();
        let (handle, bloom) = write_run(&backend, 500);
        assert_eq!(handle.entry_count(), 500);
        assert_eq!(
            handle.tombstones(),
            (0..500).filter(|i| i % 7 == 0).count() as u64
        );
        assert!(handle.blocks.len() > 1, "should span several blocks");
        assert!(bloom.may_contain(b"key-000001"));

        let mut cache: BlockCache = LruCache::new(1024 * 1024);
        for i in 0..500u32 {
            let (k, v) = entry(i);
            assert_eq!(handle.get(&backend, &mut cache, &k).unwrap(), Some(v));
        }
        assert_eq!(handle.get(&backend, &mut cache, b"absent").unwrap(), None);
        assert_eq!(handle.get(&backend, &mut cache, b"zzz").unwrap(), None);
        // A second pass over hot keys is all cache hits.
        let misses = cache.misses();
        for i in 0..500u32 {
            let (k, _) = entry(i);
            handle.get(&backend, &mut cache, &k).unwrap();
        }
        assert_eq!(cache.misses(), misses);
    }

    #[test]
    fn iter_streams_every_entry_in_order() {
        let backend = MemoryBackend::new();
        let (handle, _) = write_run(&backend, 300);
        let collected: Vec<_> = handle.iter(&backend).map(|r| r.unwrap()).collect();
        assert_eq!(collected.len(), 300);
        let expected: Vec<_> = (0..300).map(entry).collect();
        assert_eq!(collected, expected);
        // Seeked iteration starts within the right block.
        let from: Vec<_> = handle
            .iter_from(&backend, b"key-000250")
            .map(|r| r.unwrap())
            .filter(|(k, _)| k.as_slice() >= b"key-000250".as_slice())
            .collect();
        assert_eq!(from.len(), 50);
        assert_eq!(from[0].0, b"key-000250".to_vec());
    }

    #[test]
    fn truncated_objects_fail_to_load() {
        let backend = MemoryBackend::new();
        let (handle, _) = write_run(&backend, 200);
        let key = handle.object_key().to_string();
        let full = backend.get(&key).unwrap();
        // Every strict byte-prefix must be rejected at load time (the
        // footer is the last thing written, so any tear loses it).
        for cut in [0, 1, full.len() / 2, full.len() - 1] {
            backend.put(&key, &full[..cut]).unwrap();
            assert!(RunHandle::load(&backend, "t", 1).is_err(), "prefix {cut}");
        }
        // Flipping a footer byte is caught by the footer checksum.
        backend.put(&key, &full).unwrap();
        backend.corrupt(&key, full.len() - 10).unwrap();
        assert!(RunHandle::load(&backend, "t", 1).is_err());
    }

    #[test]
    fn corrupt_blocks_are_caught_on_read() {
        let backend = MemoryBackend::new();
        let (handle, _) = write_run(&backend, 200);
        // Flip a byte in the first data block (well before bloom/fence).
        backend.corrupt(handle.object_key(), 20).unwrap();
        let (reloaded, _) = RunHandle::load(&backend, "t", 1).unwrap();
        let mut cache: BlockCache = LruCache::new(1024 * 1024);
        assert!(matches!(
            reloaded.get(&backend, &mut cache, b"key-000001"),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn manifest_round_trips_and_rejects_corruption() {
        let backend = MemoryBackend::new();
        assert_eq!(Manifest::read(&backend, "t").unwrap(), None);
        let manifest = Manifest {
            next_seq: 17,
            live_keys: 123_456,
            run_seqs: vec![3, 9, 16],
        };
        manifest.write(&backend, "t").unwrap();
        assert_eq!(Manifest::read(&backend, "t").unwrap(), Some(manifest));
        backend.corrupt(&manifest_key("t"), 15).unwrap();
        assert!(Manifest::read(&backend, "t").is_err());
    }

    #[test]
    fn key_helpers_round_trip() {
        assert_eq!(run_key("share-00", 255), "idx-share-00-r-00000000000000ff");
        assert_eq!(
            parse_run_key("share-00", &run_key("share-00", 255)),
            Some(255)
        );
        assert_eq!(parse_run_key("share-00", "idx-share-01-r-00"), None);
        assert_eq!(parse_run_key("share-00", &manifest_key("share-00")), None);
    }

    #[test]
    fn empty_runs_write_nothing() {
        let backend = MemoryBackend::new();
        let writer = RunWriter::new(&backend, "t", 5, 512, 0, 10).unwrap();
        assert!(writer.finish().unwrap().is_none());
        assert!(!backend.exists(&run_key("t", 5)).unwrap());
    }
}
