//! Sharded, thread-safe wrappers around the index structures.
//!
//! A CDStore server handles many concurrent clients (§5.4, Figure 8), so its
//! indices must support parallel lookups and inserts. Each wrapper here
//! stripes the underlying single-threaded structure over a power-of-two
//! number of shards, each behind its own mutex, selected by a hash of the
//! key:
//!
//! * [`ShardedShareIndex`] — stripes by share fingerprint. Because SHA-256
//!   fingerprints are uniformly distributed, the first eight bytes select the
//!   stripe directly.
//! * [`ShardedFileIndex`] — stripes by the (already hashed) [`FileKey`].
//! * [`ShardedKvStore`] — stripes arbitrary byte keys by an FNV-1a hash.
//!
//! The crucial concurrency contract lives in
//! [`ShardedShareIndex::add_reference_or_store`]: the stripe lock is held
//! across the lookup *and* the caller's store action, so two clients racing
//! on the same fingerprint store the share's physical bytes exactly once —
//! the invariant inter-user deduplication depends on.

use std::sync::Arc;

use cdstore_crypto::Fingerprint;
use cdstore_storage::{StorageBackend, StorageError};
use parking_lot::Mutex;

use crate::file_index::{FileEntry, FileIndex, FileKey};
use crate::kvstore::{BlockCacheStats, KvStore, KvStoreConfig};
use crate::share_index::{ReleaseReport, ShareEntry, ShareIndex, ShareLocation};

/// Default number of lock stripes per index.
pub const DEFAULT_SHARDS: usize = 16;

/// Store name of one stripe of a disk-backed sharded index. Open must use
/// the same stripe count as create (the wrappers here fix it to
/// [`DEFAULT_SHARDS`] in their disk constructors for exactly that reason).
fn stripe_name(name: &str, i: usize) -> String {
    format!("{name}-{i:02}")
}

/// Sums per-stripe block-cache counters; `None` if no stripe is disk-backed.
fn combined_cache_stats(
    stats: impl Iterator<Item = Option<BlockCacheStats>>,
) -> Option<BlockCacheStats> {
    let mut total: Option<BlockCacheStats> = None;
    for s in stats.flatten() {
        let t = total.get_or_insert_with(BlockCacheStats::default);
        t.hits += s.hits;
        t.misses += s.misses;
        t.evictions += s.evictions;
        t.current_bytes += s.current_bytes;
        t.peak_bytes += s.peak_bytes;
        t.capacity_bytes += s.capacity_bytes;
    }
    total
}

/// Outcome of [`ShardedShareIndex::add_reference_or_store`].
///
/// Distinguishes *who* already owned a duplicate, so the server can keep its
/// intra-user vs inter-user deduplication counters exact even when a user's
/// own uploads race each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// The share was new: the store action ran and its bytes were written.
    Stored,
    /// Another user had already stored the share (an inter-user duplicate).
    DedupInterUser,
    /// This user had already stored the share — e.g. two of their own
    /// uploads racing past the intra-user query stage.
    DedupIntraUser,
}

/// Outcome of [`ShardedFileIndex::put_if_newer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilePutOutcome {
    /// The entry was written. `displaced` holds the older entry it replaced,
    /// if any, so the caller can release the resources (recipe blob, share
    /// references) the superseded version held.
    Written {
        /// The strictly older entry the write replaced, if the key existed.
        displaced: Option<FileEntry>,
    },
    /// The index already held an entry at least as new; nothing was written
    /// and the caller must release the resources of the entry it tried to
    /// insert.
    Stale,
}

/// FNV-1a over a byte key, for striping keys without a uniform distribution.
/// Public so other layers (e.g. the façade's per-file write locks) stripe
/// with the same hash instead of duplicating it.
pub fn fnv1a(key: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in key {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Stripe hash for a uniformly distributed 32-byte fingerprint/hash key:
/// the first eight bytes are already uniform.
fn fingerprint_hash(bytes: &[u8; 32]) -> u64 {
    u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"))
}

/// Unwraps the result of a `_with` hook variant invoked with an infallible
/// hook (the plain methods here delegate through this, and callers passing
/// their own infallible hooks can too).
pub fn infallible<T>(result: Result<T, std::convert::Infallible>) -> T {
    match result {
        Ok(value) => value,
        Err(never) => match never {},
    }
}

/// The shared striping mechanics: a power-of-two number of mutex-guarded
/// shards selected by a key hash. Each wrapper below layers its domain
/// methods over one of these.
struct Striped<T> {
    shards: Vec<Mutex<T>>,
    mask: u64,
}

impl<T> Striped<T> {
    /// Builds (at least) `requested` stripes, rounded up to a power of two.
    fn new(requested: usize, make: impl Fn() -> T) -> Self {
        infallible(Self::try_new(requested, |_| Ok(make())))
    }

    /// Fallible variant of [`Striped::new`]; `make` receives the stripe
    /// number (disk-backed stripes derive their object names from it).
    fn try_new<E>(requested: usize, make: impl Fn(usize) -> Result<T, E>) -> Result<Self, E> {
        let count = requested.max(1).next_power_of_two();
        let mut shards = Vec::with_capacity(count);
        for i in 0..count {
            shards.push(Mutex::new(make(i)?));
        }
        Ok(Striped {
            shards,
            mask: count as u64 - 1,
        })
    }

    fn len(&self) -> usize {
        self.shards.len()
    }

    /// The stripe a key hash selects.
    fn shard(&self, hash: u64) -> &Mutex<T> {
        &self.shards[(hash & self.mask) as usize]
    }

    /// Sums a per-stripe statistic over all stripes.
    fn sum<N: std::iter::Sum>(&self, stat: impl Fn(&mut T) -> N) -> N {
        self.shards.iter().map(|s| stat(&mut s.lock())).sum()
    }
}

/// A thread-safe share index striped by fingerprint.
pub struct ShardedShareIndex {
    stripes: Striped<ShareIndex>,
}

impl Default for ShardedShareIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedShareIndex {
    /// Creates an index with [`DEFAULT_SHARDS`] stripes.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an index with (at least) the requested number of stripes,
    /// rounded up to a power of two.
    pub fn with_shards(shards: usize) -> Self {
        ShardedShareIndex {
            stripes: Striped::new(shards, ShareIndex::new),
        }
    }

    /// Creates a *fresh* disk-backed index named `name` on the backend
    /// ([`DEFAULT_SHARDS`] stripes, one store per stripe), discarding any
    /// previous incarnation of the same name.
    pub fn create(
        backend: Arc<dyn StorageBackend>,
        name: &str,
        config: KvStoreConfig,
    ) -> Result<Self, StorageError> {
        Ok(ShardedShareIndex {
            stripes: Striped::try_new(DEFAULT_SHARDS, |i| {
                ShareIndex::create(backend.clone(), &stripe_name(name, i), config)
            })?,
        })
    }

    /// Opens the disk-backed index previously persisted under `name`,
    /// resuming every stripe's runs.
    pub fn open(
        backend: Arc<dyn StorageBackend>,
        name: &str,
        config: KvStoreConfig,
    ) -> Result<Self, StorageError> {
        Ok(ShardedShareIndex {
            stripes: Striped::try_new(DEFAULT_SHARDS, |i| {
                ShareIndex::open(backend.clone(), &stripe_name(name, i), config)
            })?,
        })
    }

    /// Freezes every stripe's buffered writes into durable runs (disk mode).
    pub fn flush_runs(&self) -> Result<(), StorageError> {
        for stripe in &self.stripes.shards {
            stripe.lock().flush_runs()?;
        }
        Ok(())
    }

    /// Summed block-cache counters over all stripes (`None` in memory mode).
    pub fn cache_stats(&self) -> Option<BlockCacheStats> {
        combined_cache_stats(self.stripes.shards.iter().map(|s| s.lock().cache_stats()))
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.stripes.len()
    }

    fn shard(&self, fp: &Fingerprint) -> &Mutex<ShareIndex> {
        self.stripes.shard(fingerprint_hash(fp.as_bytes()))
    }

    /// Looks up the entry for a share fingerprint.
    pub fn lookup(&self, fp: &Fingerprint) -> Option<ShareEntry> {
        self.shard(fp).lock().lookup(fp)
    }

    /// Whether a share with this fingerprint is already stored.
    pub fn is_stored(&self, fp: &Fingerprint) -> bool {
        self.lookup(fp).is_some()
    }

    /// Whether the given user already owns the share.
    pub fn user_owns(&self, fp: &Fingerprint, user: u64) -> bool {
        self.shard(fp).lock().user_owns(fp, user)
    }

    /// For a batch of fingerprints, returns which ones the user has already
    /// uploaded (the reply to a client's intra-user dedup query, §3.3).
    pub fn filter_user_duplicates(&self, user: u64, fps: &[Fingerprint]) -> Vec<bool> {
        fps.iter().map(|fp| self.user_owns(fp, user)).collect()
    }

    /// Records that `user` references the share, storing it first if it is
    /// new. The `store` action runs under the fingerprint's stripe lock, so
    /// two threads racing on the same fingerprint invoke it exactly once —
    /// the loser of the race sees a dedup outcome and the winner's location.
    ///
    /// Holding the stripe lock across `store` is a deliberate trade-off: it
    /// keeps exactly-once trivial to reason about, at the cost of briefly
    /// serialising unrelated shares that hash to the same stripe while the
    /// store action runs (relevant only when the action does slow I/O; an
    /// in-flight-placeholder protocol could lift the action out of the lock
    /// if a remote backend ever sits on this path).
    pub fn add_reference_or_store<E>(
        &self,
        fp: &Fingerprint,
        user: u64,
        store: impl FnOnce() -> Result<ShareLocation, E>,
    ) -> Result<(ShareLocation, StoreOutcome), E> {
        self.add_reference_or_store_with(fp, user, store, |_| Ok(()))
    }

    /// [`ShardedShareIndex::add_reference_or_store`] with a journaling hook:
    /// `observe` runs under the same stripe lock, after the mutation, with
    /// the entry's post-state, so a write-ahead journal records mutations of
    /// one fingerprint in exactly the order they were applied.
    pub fn add_reference_or_store_with<E>(
        &self,
        fp: &Fingerprint,
        user: u64,
        store: impl FnOnce() -> Result<ShareLocation, E>,
        observe: impl FnOnce(&ShareEntry) -> Result<(), E>,
    ) -> Result<(ShareLocation, StoreOutcome), E> {
        let mut shard = self.shard(fp).lock();
        if let Some(mut entry) = shard.lookup(fp) {
            let outcome = if entry.owned_by(user) {
                StoreOutcome::DedupIntraUser
            } else {
                StoreOutcome::DedupInterUser
            };
            // Write back through the already-decoded entry: duplicates (the
            // dominant case in dedup-heavy workloads) cost one index read.
            shard.add_reference_to_entry(fp, &mut entry, user);
            observe(&entry)?;
            Ok((entry.location, outcome))
        } else {
            let location = store()?;
            shard.insert_new(fp, location, user);
            observe(&ShareEntry {
                location,
                owners: vec![(user, 1)],
            })?;
            Ok((location, StoreOutcome::Stored))
        }
    }

    /// Adds one reference for `user` to a share that must already be stored.
    /// Returns `false` (and changes nothing) if the fingerprint is unknown.
    pub fn add_reference_existing(&self, fp: &Fingerprint, user: u64) -> bool {
        infallible(self.add_reference_existing_with(fp, user, |_| Ok(())))
    }

    /// [`ShardedShareIndex::add_reference_existing`] with a journaling hook
    /// that observes the entry's post-state under the stripe lock (only
    /// invoked when the reference was actually added).
    pub fn add_reference_existing_with<E>(
        &self,
        fp: &Fingerprint,
        user: u64,
        observe: impl FnOnce(&ShareEntry) -> Result<(), E>,
    ) -> Result<bool, E> {
        let mut shard = self.shard(fp).lock();
        match shard.lookup(fp) {
            Some(mut entry) => {
                shard.add_reference_to_entry(fp, &mut entry, user);
                observe(&entry)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Drops one reference held by `user`, deleting the entry when the last
    /// reference across all users goes. Returns `None` — a no-op — if the
    /// share is unknown or `user` holds no reference.
    pub fn remove_reference(&self, fp: &Fingerprint, user: u64) -> Option<ReleaseReport> {
        infallible(self.remove_reference_with(fp, user, |_| Ok(())))
    }

    /// [`ShardedShareIndex::remove_reference`] with a journaling hook that
    /// observes the entry's post-state under the stripe lock: `Some` with the
    /// surviving entry, or `None` when the last reference went and the entry
    /// was deleted. Only invoked when a reference was actually dropped.
    pub fn remove_reference_with<E>(
        &self,
        fp: &Fingerprint,
        user: u64,
        observe: impl FnOnce(Option<&ShareEntry>) -> Result<(), E>,
    ) -> Result<Option<ReleaseReport>, E> {
        let mut shard = self.shard(fp).lock();
        let Some(report) = shard.remove_reference(fp, user) else {
            return Ok(None);
        };
        let post = shard.lookup(fp);
        observe(post.as_ref())?;
        Ok(Some(report))
    }

    /// Atomically repoints the share's location from `from` to `to` under the
    /// fingerprint's stripe lock — the index half of container compaction.
    /// Fails (returning `false`, changing nothing) if the share is gone or
    /// was moved concurrently; the caller must then discard the copy at `to`.
    pub fn relocate(&self, fp: &Fingerprint, from: ShareLocation, to: ShareLocation) -> bool {
        infallible(self.relocate_with(fp, from, to, |_| Ok(())))
    }

    /// [`ShardedShareIndex::relocate`] with a journaling hook that observes
    /// the repointed entry under the stripe lock (only invoked when the
    /// relocation succeeded).
    pub fn relocate_with<E>(
        &self,
        fp: &Fingerprint,
        from: ShareLocation,
        to: ShareLocation,
        observe: impl FnOnce(&ShareEntry) -> Result<(), E>,
    ) -> Result<bool, E> {
        let mut shard = self.shard(fp).lock();
        if !shard.relocate(fp, from, to) {
            return Ok(false);
        }
        if let Some(entry) = shard.lookup(fp) {
            observe(&entry)?;
        }
        Ok(true)
    }

    /// Installs an entry verbatim, overwriting any existing one — checkpoint
    /// restore and journal replay. No reference bookkeeping of its own.
    pub fn insert_entry(&self, fp: &Fingerprint, entry: &ShareEntry) {
        self.shard(fp).lock().insert_entry(fp, entry);
    }

    /// Removes an entry verbatim, whatever references it holds — journal
    /// replay of a share deletion and recovery's pruning of entries that
    /// point into containers lost with the crash.
    pub fn remove_entry(&self, fp: &Fingerprint) {
        self.shard(fp).lock().remove_entry(fp);
    }

    /// Every `(fingerprint, entry)` pair across all stripes — the snapshot
    /// half of checkpointing. Per-stripe locking only: concurrent mutations
    /// may land between stripes, so callers needing a true point-in-time
    /// snapshot must exclude writers for the duration.
    pub fn export(&self) -> Vec<(Fingerprint, ShareEntry)> {
        let mut all = Vec::new();
        for stripe in &self.stripes.shards {
            all.extend(stripe.lock().export());
        }
        all
    }

    /// Number of unique shares tracked (sums over all stripes).
    pub fn unique_shares(&self) -> usize {
        self.stripes.sum(|s| s.unique_shares())
    }

    /// Total physical bytes referenced by the index.
    pub fn physical_bytes(&self) -> u64 {
        self.stripes.sum(|s| s.physical_bytes())
    }

    /// Approximate index memory footprint in bytes.
    pub fn approximate_size(&self) -> usize {
        self.stripes.sum(|s| s.approximate_size())
    }
}

/// A thread-safe file index striped by the hashed [`FileKey`].
pub struct ShardedFileIndex {
    stripes: Striped<FileIndex>,
}

impl Default for ShardedFileIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedFileIndex {
    /// Creates an index with [`DEFAULT_SHARDS`] stripes.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates an index with (at least) the requested number of stripes,
    /// rounded up to a power of two.
    pub fn with_shards(shards: usize) -> Self {
        ShardedFileIndex {
            stripes: Striped::new(shards, FileIndex::new),
        }
    }

    /// Creates a *fresh* disk-backed index named `name` on the backend
    /// ([`DEFAULT_SHARDS`] stripes, one store per stripe), discarding any
    /// previous incarnation of the same name.
    pub fn create(
        backend: Arc<dyn StorageBackend>,
        name: &str,
        config: KvStoreConfig,
    ) -> Result<Self, StorageError> {
        Ok(ShardedFileIndex {
            stripes: Striped::try_new(DEFAULT_SHARDS, |i| {
                FileIndex::create(backend.clone(), &stripe_name(name, i), config)
            })?,
        })
    }

    /// Opens the disk-backed index previously persisted under `name`,
    /// resuming every stripe's runs.
    pub fn open(
        backend: Arc<dyn StorageBackend>,
        name: &str,
        config: KvStoreConfig,
    ) -> Result<Self, StorageError> {
        Ok(ShardedFileIndex {
            stripes: Striped::try_new(DEFAULT_SHARDS, |i| {
                FileIndex::open(backend.clone(), &stripe_name(name, i), config)
            })?,
        })
    }

    /// Freezes every stripe's buffered writes into durable runs (disk mode).
    pub fn flush_runs(&self) -> Result<(), StorageError> {
        for stripe in &self.stripes.shards {
            stripe.lock().flush_runs()?;
        }
        Ok(())
    }

    /// Summed block-cache counters over all stripes (`None` in memory mode).
    pub fn cache_stats(&self) -> Option<BlockCacheStats> {
        combined_cache_stats(self.stripes.shards.iter().map(|s| s.lock().cache_stats()))
    }

    fn shard(&self, key: &FileKey) -> &Mutex<FileIndex> {
        self.stripes.shard(fingerprint_hash(key.as_bytes()))
    }

    /// Inserts or replaces the entry for a file.
    pub fn put(&self, key: FileKey, entry: FileEntry) {
        self.shard(&key).lock().put(key, entry);
    }

    /// Inserts the entry unless the index already holds a strictly newer
    /// version for the key, reporting the displaced older entry (if any) so
    /// the caller can release the resources it held.
    ///
    /// Version numbers are allocated before the stripe lock is taken, so
    /// concurrent backups of the same file may arrive out of order; this
    /// compare-under-lock makes them converge on the highest version
    /// instead of last-writer-wins.
    pub fn put_if_newer(&self, key: FileKey, entry: FileEntry) -> FilePutOutcome {
        infallible(self.put_if_newer_with(key, entry, |_| Ok(())))
    }

    /// [`ShardedFileIndex::put_if_newer`] with a journaling hook that
    /// observes the written entry under the stripe lock (only invoked when
    /// the entry was actually written, i.e. not on [`FilePutOutcome::Stale`]).
    pub fn put_if_newer_with<E>(
        &self,
        key: FileKey,
        entry: FileEntry,
        observe: impl FnOnce(&FileEntry) -> Result<(), E>,
    ) -> Result<FilePutOutcome, E> {
        let mut shard = self.shard(&key).lock();
        let existing = shard.get(&key);
        match existing {
            Some(existing) if existing.version > entry.version => Ok(FilePutOutcome::Stale),
            displaced => {
                observe(&entry)?;
                shard.put(key, entry);
                Ok(FilePutOutcome::Written { displaced })
            }
        }
    }

    /// Looks up the entry for a file.
    pub fn get(&self, key: &FileKey) -> Option<FileEntry> {
        self.shard(key).lock().get(key)
    }

    /// Removes the entry for a file, returning it if present.
    pub fn remove(&self, key: &FileKey) -> Option<FileEntry> {
        infallible(self.remove_with(key, |_| Ok(())))
    }

    /// [`ShardedFileIndex::remove`] with a journaling hook that runs under
    /// the stripe lock (only invoked when an entry was actually removed,
    /// receiving it).
    pub fn remove_with<E>(
        &self,
        key: &FileKey,
        observe: impl FnOnce(&FileEntry) -> Result<(), E>,
    ) -> Result<Option<FileEntry>, E> {
        let mut shard = self.shard(key).lock();
        let Some(entry) = shard.remove(key) else {
            return Ok(None);
        };
        observe(&entry)?;
        Ok(Some(entry))
    }

    /// Every `(key, entry)` pair across all stripes — the snapshot half of
    /// checkpointing. Per-stripe locking only (see
    /// [`ShardedShareIndex::export`] for the point-in-time caveat).
    pub fn export(&self) -> Vec<(FileKey, FileEntry)> {
        let mut all = Vec::new();
        for stripe in &self.stripes.shards {
            all.extend(stripe.lock().export());
        }
        all
    }

    /// Number of files indexed.
    pub fn len(&self) -> usize {
        self.stripes.sum(|s| s.len())
    }

    /// Whether no files are indexed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate index memory footprint in bytes.
    pub fn approximate_size(&self) -> usize {
        self.stripes.sum(|s| s.approximate_size())
    }
}

/// A thread-safe key-value store striped by an FNV-1a hash of the key.
pub struct ShardedKvStore {
    stripes: Striped<KvStore>,
}

impl Default for ShardedKvStore {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedKvStore {
    /// Creates a store with [`DEFAULT_SHARDS`] stripes and the default
    /// [`KvStoreConfig`].
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// Creates a store with (at least) the requested number of stripes,
    /// rounded up to a power of two.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_config(KvStoreConfig::default(), shards)
    }

    /// Creates a store with an explicit per-stripe configuration.
    pub fn with_config(config: KvStoreConfig, shards: usize) -> Self {
        ShardedKvStore {
            stripes: Striped::new(shards, || KvStore::with_config(config)),
        }
    }

    /// Creates a *fresh* disk-backed store named `name` on the backend
    /// ([`DEFAULT_SHARDS`] stripes, one store per stripe), discarding any
    /// previous incarnation of the same name.
    pub fn create(
        backend: Arc<dyn StorageBackend>,
        name: &str,
        config: KvStoreConfig,
    ) -> Result<Self, StorageError> {
        Ok(ShardedKvStore {
            stripes: Striped::try_new(DEFAULT_SHARDS, |i| {
                KvStore::create(backend.clone(), &stripe_name(name, i), config)
            })?,
        })
    }

    /// Opens the disk-backed store previously persisted under `name`,
    /// resuming every stripe's runs.
    pub fn open(
        backend: Arc<dyn StorageBackend>,
        name: &str,
        config: KvStoreConfig,
    ) -> Result<Self, StorageError> {
        Ok(ShardedKvStore {
            stripes: Striped::try_new(DEFAULT_SHARDS, |i| {
                KvStore::open(backend.clone(), &stripe_name(name, i), config)
            })?,
        })
    }

    /// Freezes every stripe's buffered writes into durable runs (disk mode).
    pub fn flush_runs(&self) -> Result<(), StorageError> {
        for stripe in &self.stripes.shards {
            stripe.lock().try_flush()?;
        }
        Ok(())
    }

    /// Summed block-cache counters over all stripes (`None` in memory mode).
    pub fn cache_stats(&self) -> Option<BlockCacheStats> {
        combined_cache_stats(self.stripes.shards.iter().map(|s| s.lock().cache_stats()))
    }

    fn shard(&self, key: &[u8]) -> &Mutex<KvStore> {
        self.stripes.shard(fnv1a(key))
    }

    /// Inserts or overwrites a key.
    pub fn put(&self, key: Vec<u8>, value: Vec<u8>) {
        infallible(self.put_with(key, value, || Ok(())));
    }

    /// [`ShardedKvStore::put`] with a journaling hook that runs under the
    /// stripe lock, so mutations of one key journal in apply order.
    pub fn put_with<E>(
        &self,
        key: Vec<u8>,
        value: Vec<u8>,
        observe: impl FnOnce() -> Result<(), E>,
    ) -> Result<(), E> {
        let mut shard = self.shard(&key).lock();
        observe()?;
        shard.put(key, value);
        Ok(())
    }

    /// Looks up a key.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        self.shard(key).lock().get(key)
    }

    /// Deletes a key (no-op if absent).
    pub fn delete(&self, key: &[u8]) {
        infallible(self.delete_with(key, || Ok(())));
    }

    /// [`ShardedKvStore::delete`] with a journaling hook that runs under the
    /// stripe lock.
    pub fn delete_with<E>(
        &self,
        key: &[u8],
        observe: impl FnOnce() -> Result<(), E>,
    ) -> Result<(), E> {
        let mut shard = self.shard(key).lock();
        observe()?;
        shard.delete(key);
        Ok(())
    }

    /// Every live `(key, value)` pair across all stripes — the snapshot half
    /// of checkpointing. Per-stripe locking only (see
    /// [`ShardedShareIndex::export`] for the point-in-time caveat).
    pub fn export(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut all = Vec::new();
        for stripe in &self.stripes.shards {
            all.extend(stripe.lock().snapshot());
        }
        all
    }

    /// Returns whether the key is present (not deleted).
    pub fn contains(&self, key: &[u8]) -> bool {
        self.shard(key).lock().contains(key)
    }

    /// Number of live keys across all stripes.
    pub fn len(&self) -> usize {
        self.stripes.sum(|s| s.len())
    }

    /// Whether the store holds no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate memory footprint in bytes.
    pub fn approximate_size(&self) -> usize {
        self.stripes.sum(|s| s.approximate_size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn fp(i: u32) -> Fingerprint {
        Fingerprint::of(&i.to_be_bytes())
    }

    fn loc(id: u64, size: u32) -> ShareLocation {
        ShareLocation {
            container_id: id,
            offset: 0,
            size,
        }
    }

    #[test]
    fn shard_counts_round_up_to_powers_of_two() {
        assert_eq!(ShardedShareIndex::with_shards(0).shard_count(), 1);
        assert_eq!(ShardedShareIndex::with_shards(5).shard_count(), 8);
        assert_eq!(ShardedShareIndex::with_shards(16).shard_count(), 16);
    }

    #[test]
    fn share_index_round_trip_through_stripes() {
        let index = ShardedShareIndex::with_shards(4);
        for i in 0..500u32 {
            let (_, outcome) = index
                .add_reference_or_store::<()>(&fp(i), (i % 7) as u64, || Ok(loc(i as u64, 100)))
                .unwrap();
            assert_eq!(outcome, StoreOutcome::Stored);
        }
        assert_eq!(index.unique_shares(), 500);
        for i in (0..500u32).step_by(13) {
            assert!(index.is_stored(&fp(i)));
            assert!(index.user_owns(&fp(i), (i % 7) as u64));
            assert!(!index.user_owns(&fp(i), 99));
        }
        assert_eq!(
            index.filter_user_duplicates(0, &[fp(0), fp(1), fp(7)]),
            vec![true, false, true]
        );
        let release = index.remove_reference(&fp(0), 0).unwrap();
        assert_eq!(release.location, loc(0, 100));
        assert_eq!(release.total_refs, 0);
        assert!(!index.is_stored(&fp(0)));
    }

    #[test]
    fn relocate_races_resolve_under_the_stripe_lock() {
        let index = ShardedShareIndex::new();
        index
            .add_reference_or_store::<()>(&fp(1), 1, || Ok(loc(10, 8)))
            .unwrap();
        // Two compactors race to move the same share: exactly one wins.
        let winners = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u64)
                .map(|t| {
                    let index = &index;
                    scope.spawn(move || index.relocate(&fp(1), loc(10, 8), loc(100 + t, 8)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&won| won)
                .count()
        });
        assert_eq!(winners, 1);
        let moved = index.lookup(&fp(1)).unwrap().location;
        assert!(moved.container_id >= 100 && moved.container_id < 104);
        assert!(index.add_reference_existing(&fp(1), 2));
        assert!(!index.add_reference_existing(&fp(99), 2));
    }

    #[test]
    fn racing_stores_invoke_the_store_action_exactly_once() {
        let index = ShardedShareIndex::new();
        let stores = AtomicUsize::new(0);
        let new_outcomes = AtomicUsize::new(0);
        let threads = 8;
        let barrier = Barrier::new(threads);
        std::thread::scope(|scope| {
            for user in 0..threads as u64 {
                let index = &index;
                let stores = &stores;
                let new_outcomes = &new_outcomes;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..200u32 {
                        let (location, outcome) = index
                            .add_reference_or_store::<()>(&fp(i), user, || {
                                stores.fetch_add(1, Ordering::SeqCst);
                                Ok(loc(i as u64, 64))
                            })
                            .unwrap();
                        // Whoever wins, everyone sees the winner's location.
                        assert_eq!(location, loc(i as u64, 64));
                        if outcome == StoreOutcome::Stored {
                            new_outcomes.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        assert_eq!(stores.load(Ordering::SeqCst), 200);
        assert_eq!(new_outcomes.load(Ordering::SeqCst), 200);
        assert_eq!(index.unique_shares(), 200);
        for i in 0..200u32 {
            let entry = index.lookup(&fp(i)).unwrap();
            assert_eq!(entry.owners.len(), threads);
            assert_eq!(entry.total_refs(), threads as u64);
        }
    }

    #[test]
    fn duplicate_outcomes_distinguish_intra_from_inter_user() {
        let index = ShardedShareIndex::new();
        let (_, first) = index
            .add_reference_or_store::<()>(&fp(1), 7, || Ok(loc(1, 10)))
            .unwrap();
        assert_eq!(first, StoreOutcome::Stored);
        // The same user racing itself is an intra-user duplicate...
        let (_, same_user) = index
            .add_reference_or_store::<()>(&fp(1), 7, || Ok(loc(2, 10)))
            .unwrap();
        assert_eq!(same_user, StoreOutcome::DedupIntraUser);
        // ...while another user hitting the share is an inter-user one.
        let (_, other_user) = index
            .add_reference_or_store::<()>(&fp(1), 8, || Ok(loc(3, 10)))
            .unwrap();
        assert_eq!(other_user, StoreOutcome::DedupInterUser);
    }

    #[test]
    fn put_if_newer_keeps_the_highest_version() {
        let index = ShardedFileIndex::new();
        let key = FileKey::new(1, b"/racy");
        let entry = |version: u64| FileEntry {
            user: 1,
            recipe_container_id: version,
            recipe_offset: 0,
            recipe_size: 8,
            file_size: 1,
            num_secrets: 1,
            version,
        };
        assert_eq!(
            index.put_if_newer(key, entry(5)),
            FilePutOutcome::Written { displaced: None }
        );
        // An out-of-order older version loses...
        assert_eq!(index.put_if_newer(key, entry(4)), FilePutOutcome::Stale);
        assert_eq!(index.get(&key).unwrap().version, 5);
        // ...while a newer one wins and reports the entry it displaced.
        assert_eq!(
            index.put_if_newer(key, entry(6)),
            FilePutOutcome::Written {
                displaced: Some(entry(5))
            }
        );
        assert_eq!(index.get(&key).unwrap().version, 6);
    }

    #[test]
    fn store_errors_do_not_poison_the_stripe() {
        let index = ShardedShareIndex::new();
        let result = index.add_reference_or_store(&fp(1), 1, || Err("backend down"));
        assert_eq!(result, Err("backend down"));
        assert!(!index.is_stored(&fp(1)));
        // The stripe is still usable afterwards.
        let (_, outcome) = index
            .add_reference_or_store::<()>(&fp(1), 1, || Ok(loc(9, 9)))
            .unwrap();
        assert_eq!(outcome, StoreOutcome::Stored);
    }

    #[test]
    fn file_index_round_trip_through_stripes() {
        let index = ShardedFileIndex::with_shards(4);
        let entry = FileEntry {
            user: 3,
            recipe_container_id: 3,
            recipe_offset: 16,
            recipe_size: 52,
            file_size: 100,
            num_secrets: 4,
            version: 1,
        };
        for user in 0..10u64 {
            for f in 0..40u32 {
                let key = FileKey::new(user, format!("/u{user}/f{f}").as_bytes());
                index.put(key, entry.clone());
            }
        }
        assert_eq!(index.len(), 400);
        let probe = FileKey::new(3, b"/u3/f7");
        assert_eq!(index.get(&probe), Some(entry.clone()));
        assert_eq!(index.remove(&probe), Some(entry));
        assert_eq!(index.get(&probe), None);
        assert_eq!(index.len(), 399);
        assert!(index.approximate_size() > 0);
    }

    #[test]
    fn kv_store_round_trip_through_stripes() {
        let store = ShardedKvStore::with_config(
            KvStoreConfig {
                memtable_capacity: 8,
                max_runs: 2,
                bloom_bits_per_key: 8,
                ..KvStoreConfig::default()
            },
            4,
        );
        for i in 0..300u32 {
            store.put(i.to_be_bytes().to_vec(), (i * 2).to_be_bytes().to_vec());
        }
        assert_eq!(store.len(), 300);
        for i in 0..300u32 {
            assert_eq!(
                store.get(&i.to_be_bytes()),
                Some((i * 2).to_be_bytes().to_vec())
            );
        }
        store.delete(&7u32.to_be_bytes());
        assert!(!store.contains(&7u32.to_be_bytes()));
        assert_eq!(store.len(), 299);
        assert!(!store.is_empty());
    }

    #[test]
    fn disk_backed_stripes_persist_across_reopen() {
        use cdstore_storage::MemoryBackend;
        let backend: Arc<dyn StorageBackend> = Arc::new(MemoryBackend::new());
        let config = KvStoreConfig {
            memtable_capacity: 8,
            ..KvStoreConfig::default()
        };
        let index = ShardedShareIndex::create(backend.clone(), "share", config).unwrap();
        for i in 0..200u32 {
            index
                .add_reference_or_store::<()>(&fp(i), (i % 5) as u64, || Ok(loc(i as u64, 64)))
                .unwrap();
        }
        index.flush_runs().unwrap();
        drop(index);

        let reopened = ShardedShareIndex::open(backend.clone(), "share", config).unwrap();
        assert_eq!(reopened.unique_shares(), 200);
        for i in (0..200u32).step_by(17) {
            let entry = reopened.lookup(&fp(i)).unwrap();
            assert_eq!(entry.location, loc(i as u64, 64));
            assert!(entry.owned_by((i % 5) as u64));
        }
        assert!(reopened.cache_stats().is_some());

        // A fresh create of the same name discards the persisted state.
        let fresh = ShardedShareIndex::create(backend, "share", config).unwrap();
        assert_eq!(fresh.unique_shares(), 0);
    }

    #[test]
    fn kv_store_handles_concurrent_writers() {
        let store = ShardedKvStore::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..200u32 {
                        let mut key = t.to_be_bytes().to_vec();
                        key.extend_from_slice(&i.to_be_bytes());
                        store.put(key, vec![t as u8; 16]);
                    }
                });
            }
        });
        assert_eq!(store.len(), 8 * 200);
        let mut probe = 3u64.to_be_bytes().to_vec();
        probe.extend_from_slice(&150u32.to_be_bytes());
        assert_eq!(store.get(&probe), Some(vec![3u8; 16]));
    }
}
