//! A Bloom filter for negative-lookup short-circuiting.
//!
//! LevelDB attaches a Bloom filter to every table file so lookups of absent
//! keys rarely touch the file [18, 26]; the LSM runs in [`crate::KvStore`]
//! do the same. The filter uses double hashing over two SHA-256-derived
//! 64-bit values.

use cdstore_crypto::sha256;

/// A fixed-size Bloom filter.
#[derive(Debug, Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: usize,
    num_hashes: u32,
    items: usize,
}

impl BloomFilter {
    /// Creates a filter sized for `expected_items` with roughly
    /// `bits_per_key` bits per item (LevelDB's default is 10, giving ~1%
    /// false positives).
    pub fn new(expected_items: usize, bits_per_key: usize) -> Self {
        let num_bits = (expected_items.max(1) * bits_per_key.max(1)).max(64);
        // Optimal number of hash functions: ln(2) * bits_per_key.
        let num_hashes = ((bits_per_key as f64 * 0.69).round() as u32).clamp(1, 30);
        BloomFilter {
            bits: vec![0u64; num_bits.div_ceil(64)],
            num_bits,
            num_hashes,
            items: 0,
        }
    }

    /// Number of items inserted so far.
    pub fn len(&self) -> usize {
        self.items
    }

    /// Whether the filter has no items.
    pub fn is_empty(&self) -> bool {
        self.items == 0
    }

    /// Size of the filter in bits.
    pub fn num_bits(&self) -> usize {
        self.num_bits
    }

    fn hash_pair(key: &[u8]) -> (u64, u64) {
        let digest = sha256::hash(key);
        let h1 = u64::from_le_bytes(digest[0..8].try_into().expect("8 bytes"));
        let h2 = u64::from_le_bytes(digest[8..16].try_into().expect("8 bytes"));
        (h1, h2 | 1)
    }

    /// Inserts a key. The item count only grows when the key set at least
    /// one new bit: re-inserting a present key (or a key aliasing one — the
    /// usual Bloom ambiguity) leaves `len()` unchanged, so occupancy-derived
    /// sizing decisions don't drift under duplicate-heavy workloads.
    pub fn insert(&mut self, key: &[u8]) {
        let (h1, h2) = Self::hash_pair(key);
        let mut new_bit = false;
        for i in 0..self.num_hashes as u64 {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits as u64) as usize;
            let word = &mut self.bits[bit / 64];
            let mask = 1u64 << (bit % 64);
            new_bit |= *word & mask == 0;
            *word |= mask;
        }
        if new_bit {
            self.items += 1;
        }
    }

    /// Returns `false` if the key is definitely absent; `true` if it *may*
    /// be present.
    pub fn may_contain(&self, key: &[u8]) -> bool {
        let (h1, h2) = Self::hash_pair(key);
        for i in 0..self.num_hashes as u64 {
            let bit = (h1.wrapping_add(i.wrapping_mul(h2)) % self.num_bits as u64) as usize;
            if self.bits[bit / 64] & (1u64 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Serialises the filter (the persisted form attached to each on-disk
    /// run of [`crate::KvStore`]): `num_bits`, `num_hashes`, `items`, then
    /// the bit words, all little-endian.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.bits.len() * 8);
        out.extend_from_slice(&(self.num_bits as u64).to_le_bytes());
        out.extend_from_slice(&self.num_hashes.to_le_bytes());
        out.extend_from_slice(&(self.items as u64).to_le_bytes());
        for word in &self.bits {
            out.extend_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Parses a filter serialised by [`BloomFilter::to_bytes`]; `None` if
    /// the buffer is malformed.
    pub fn from_bytes(bytes: &[u8]) -> Option<BloomFilter> {
        if bytes.len() < 20 {
            return None;
        }
        let num_bits = u64::from_le_bytes(bytes[0..8].try_into().ok()?) as usize;
        let num_hashes = u32::from_le_bytes(bytes[8..12].try_into().ok()?);
        let items = u64::from_le_bytes(bytes[12..20].try_into().ok()?) as usize;
        let words = num_bits.div_ceil(64);
        if num_bits == 0 || num_hashes == 0 || bytes.len() != 20 + words * 8 {
            return None;
        }
        let bits = bytes[20..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        Some(BloomFilter {
            bits,
            num_bits,
            num_hashes,
            items,
        })
    }

    /// Measures the false-positive rate against a set of absent keys.
    pub fn false_positive_rate(&self, absent_keys: &[Vec<u8>]) -> f64 {
        if absent_keys.is_empty() {
            return 0.0;
        }
        let fp = absent_keys.iter().filter(|k| self.may_contain(k)).count();
        fp as f64 / absent_keys.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_keys_are_always_found() {
        let mut filter = BloomFilter::new(1000, 10);
        for i in 0..1000u32 {
            filter.insert(&i.to_le_bytes());
        }
        for i in 0..1000u32 {
            assert!(filter.may_contain(&i.to_le_bytes()), "key {i} missing");
        }
        assert_eq!(filter.len(), 1000);
    }

    #[test]
    fn false_positive_rate_is_low() {
        let mut filter = BloomFilter::new(10_000, 10);
        for i in 0..10_000u32 {
            filter.insert(format!("present-{i}").as_bytes());
        }
        let absent: Vec<Vec<u8>> = (0..10_000u32)
            .map(|i| format!("absent-{i}").into_bytes())
            .collect();
        let rate = filter.false_positive_rate(&absent);
        assert!(rate < 0.03, "false positive rate {rate} too high");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let filter = BloomFilter::new(100, 10);
        assert!(filter.is_empty());
        assert!(!filter.may_contain(b"anything"));
    }

    #[test]
    fn tiny_filters_still_work() {
        let mut filter = BloomFilter::new(0, 0);
        filter.insert(b"x");
        assert!(filter.may_contain(b"x"));
        assert!(filter.num_bits() >= 64);
    }

    #[test]
    fn duplicate_inserts_do_not_inflate_the_item_count() {
        let mut filter = BloomFilter::new(100, 10);
        filter.insert(b"same-key");
        filter.insert(b"same-key");
        filter.insert(b"same-key");
        assert_eq!(filter.len(), 1);
        filter.insert(b"other-key");
        assert_eq!(filter.len(), 2);
    }

    #[test]
    fn serialisation_round_trips() {
        let mut filter = BloomFilter::new(500, 10);
        for i in 0..500u32 {
            filter.insert(&i.to_le_bytes());
        }
        let bytes = filter.to_bytes();
        let restored = BloomFilter::from_bytes(&bytes).unwrap();
        assert_eq!(restored.len(), filter.len());
        assert_eq!(restored.num_bits(), filter.num_bits());
        for i in 0..500u32 {
            assert!(restored.may_contain(&i.to_le_bytes()));
        }
        // The restored filter answers identically on absent keys too.
        for i in 1000..1500u32 {
            assert_eq!(
                restored.may_contain(&i.to_le_bytes()),
                filter.may_contain(&i.to_le_bytes())
            );
        }
        // Malformed buffers are rejected.
        assert!(BloomFilter::from_bytes(&[]).is_none());
        assert!(BloomFilter::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        assert!(BloomFilter::from_bytes(&[0u8; 20]).is_none());
    }

    #[test]
    fn fewer_bits_per_key_raise_the_false_positive_rate() {
        let keys: Vec<Vec<u8>> = (0..5000u32).map(|i| i.to_le_bytes().to_vec()).collect();
        let absent: Vec<Vec<u8>> = (5000..10_000u32)
            .map(|i| i.to_le_bytes().to_vec())
            .collect();
        let mut small = BloomFilter::new(keys.len(), 4);
        let mut large = BloomFilter::new(keys.len(), 16);
        for k in &keys {
            small.insert(k);
            large.insert(k);
        }
        assert!(large.false_positive_rate(&absent) <= small.false_positive_rate(&absent));
    }
}
