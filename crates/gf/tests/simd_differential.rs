//! Differential tests proving that every SIMD region kernel is bit-identical
//! to the scalar implementation (and to the byte-at-a-time table reference)
//! for all multipliers, lengths, alignments, and tails.
//!
//! The suite exercises two layers:
//!
//! * **Explicit backends** — every entry of [`Backend::available()`] is run
//!   against `Backend::Scalar` in the same process, so on an AVX2 host one
//!   `cargo test` covers scalar, SSSE3, and AVX2 side by side.
//! * **Production dispatch** — the free functions (`region::mul_acc` et al.)
//!   go through the process-wide detect-once dispatch. CI runs this test
//!   binary twice, once normally and once with `CDSTORE_FORCE_SCALAR=1`, so
//!   both dispatch outcomes are validated end to end.

use cdstore_gf::region::{self, Backend};
use cdstore_gf::tables;
use proptest::prelude::*;

/// Byte-at-a-time reference: `dst = (acc ? dst : 0) ^ c * src`.
fn reference_mul(dst: &[u8], src: &[u8], c: u8, acc: bool) -> Vec<u8> {
    src.iter()
        .zip(dst)
        .map(|(&s, &d)| tables::mul(c, s) ^ if acc { d } else { 0 })
        .collect()
}

/// Deterministic pseudo-random bytes (xorshift64*) so failures reproduce.
fn fill_bytes(buf: &mut [u8], mut seed: u64) {
    for b in buf.iter_mut() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        *b = (seed.wrapping_mul(0x2545F4914F6CDD1D) >> 56) as u8;
    }
}

/// Lengths that straddle every vector width in play: empty, sub-16-byte
/// tails, exact SSE/AVX2 blocks, and off-by-one around each boundary.
const LENGTHS: &[usize] = &[
    0, 1, 2, 3, 7, 8, 15, 16, 17, 31, 32, 33, 47, 63, 64, 65, 96, 127, 128, 129, 255, 256, 257,
    1024, 4096, 4097,
];

/// Offsets into an over-allocated buffer so the kernels see misaligned
/// pointers as well as (likely) aligned ones.
const OFFSETS: &[usize] = &[0, 1, 3, 8, 13];

#[test]
fn every_backend_matches_scalar_for_all_multipliers_lengths_and_alignments() {
    let backends = Backend::available();
    assert!(backends.contains(&Backend::Scalar));
    // All 256 multipliers at a vector-straddling length, plus all interesting
    // lengths at a handful of adversarial multipliers.
    let full_c_len = 67usize;
    for backend in &backends {
        for c in 0u16..=255 {
            check_all_kernels(*backend, c as u8, full_c_len, 0);
        }
        for &len in LENGTHS {
            for &off in OFFSETS {
                for c in [0u8, 1, 2, 0x1d, 0x80, 0xff] {
                    check_all_kernels(*backend, c, len, off);
                }
            }
        }
    }
}

fn check_all_kernels(backend: Backend, c: u8, len: usize, offset: usize) {
    let mut src_buf = vec![0u8; offset + len];
    let mut dst_buf = vec![0u8; offset + len];
    fill_bytes(
        &mut src_buf,
        0x9E3779B97F4A7C15 ^ (len as u64) << 8 ^ c as u64,
    );
    fill_bytes(
        &mut dst_buf,
        0xD1B54A32D192ED03 ^ (offset as u64) << 16 ^ c as u64,
    );
    let src = &src_buf[offset..];
    let dst_init = dst_buf[offset..].to_vec();
    let ctx = format!(
        "backend={} c={c:#04x} len={len} offset={offset}",
        backend.name()
    );

    // mul_into: dst = c * src.
    let mut dst = dst_init.clone();
    backend.mul_into(&mut dst, src, c);
    assert_eq!(
        dst,
        reference_mul(&dst_init, src, c, false),
        "mul_into {ctx}"
    );

    // mul_acc: dst ^= c * src.
    let mut dst = dst_init.clone();
    backend.mul_acc(&mut dst, src, c);
    assert_eq!(dst, reference_mul(&dst_init, src, c, true), "mul_acc {ctx}");

    // xor_into: dst ^= src.
    let mut dst = dst_init.clone();
    backend.xor_into(&mut dst, src);
    assert_eq!(
        dst,
        reference_mul(&dst_init, src, 1, true),
        "xor_into {ctx}"
    );
}

#[test]
fn production_dispatch_matches_reference() {
    // Whatever backend `active()` picked (honouring CDSTORE_FORCE_SCALAR),
    // the free functions must agree with the table reference.
    let active = Backend::active();
    assert!(Backend::available().contains(&active));
    if std::env::var("CDSTORE_FORCE_SCALAR").is_ok_and(|v| v != "0") {
        assert_eq!(active, Backend::Scalar, "env override must force scalar");
    }
    for &len in LENGTHS {
        let mut src = vec![0u8; len];
        let mut dst_init = vec![0u8; len];
        fill_bytes(&mut src, 0xA076_1D64_78BD_642F ^ len as u64);
        fill_bytes(&mut dst_init, 0xE703_7ED1_A0B4_28DB ^ len as u64);
        for c in [0u8, 1, 3, 0x1d, 0xfe] {
            let mut dst = dst_init.clone();
            region::mul_into(&mut dst, &src, c);
            assert_eq!(
                dst,
                reference_mul(&dst_init, &src, c, false),
                "len={len} c={c}"
            );
            let mut dst = dst_init.clone();
            region::mul_acc(&mut dst, &src, c);
            assert_eq!(
                dst,
                reference_mul(&dst_init, &src, c, true),
                "len={len} c={c}"
            );
            let mut dst = dst_init.clone();
            region::xor_into(&mut dst, &src);
            assert_eq!(dst, reference_mul(&dst_init, &src, 1, true), "len={len}");
        }
    }
}

#[test]
fn matrix_apply_into_agrees_across_backends_via_dispatch() {
    // matrix_apply_into is built on the dispatched kernels; a small
    // Vandermonde-ish apply cross-checked against the byte reference catches
    // any row/column mix-up in the fused first-column path.
    let rows = 4;
    let cols = 3;
    let len = 130; // straddles the AVX2 width with a 2-byte tail
    let matrix: Vec<u8> = (1..=(rows * cols) as u8).collect();
    let mut flat = vec![0u8; cols * len];
    fill_bytes(&mut flat, 0x517C_C1B7_2722_0A95);
    let inputs: Vec<&[u8]> = flat.chunks(len).collect();

    let mut out = vec![vec![0xAAu8; len]; rows];
    {
        let mut refs: Vec<&mut [u8]> = out.iter_mut().map(|o| o.as_mut_slice()).collect();
        region::matrix_apply_into(&matrix, rows, cols, &inputs, &mut refs);
    }
    for r in 0..rows {
        for b in 0..len {
            let mut want = 0u8;
            for (c, input) in inputs.iter().enumerate() {
                want ^= tables::mul(matrix[r * cols + c], input[b]);
            }
            assert_eq!(out[r][b], want, "row {r} byte {b}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary (backend, c, data, offset) quadruples: SIMD ≡ scalar.
    #[test]
    fn simd_equals_scalar_on_arbitrary_regions(
        c: u8,
        data in proptest::collection::vec(any::<u8>(), 0..600),
        dst_seed: u64,
        offset in 0usize..17,
    ) {
        let offset = offset.min(data.len());
        let src = &data[offset..];
        let mut dst_init = vec![0u8; src.len()];
        fill_bytes(&mut dst_init, dst_seed);
        for backend in Backend::available() {
            for acc in [false, true] {
                let mut dst = dst_init.clone();
                if acc {
                    backend.mul_acc(&mut dst, src, c);
                } else {
                    backend.mul_into(&mut dst, src, c);
                }
                let want = reference_mul(&dst_init, src, c, acc);
                if dst != want {
                    return Err(TestCaseError::Fail(format!(
                        "backend={} acc={} c={:#04x} len={}",
                        backend.name(),
                        acc,
                        c,
                        src.len()
                    )));
                }
            }
        }
    }
}
