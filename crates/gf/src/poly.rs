//! Polynomial evaluation and interpolation over GF(2^8).
//!
//! Shamir's secret sharing evaluates a random polynomial of degree `k-1` at
//! `n` distinct points and reconstructs the constant term by Lagrange
//! interpolation from any `k` of them. These helpers implement exactly that,
//! operating on coefficient vectors of [`Gf256`] elements.

use crate::field::Gf256;

/// Evaluates the polynomial with the given coefficients at `x` using
/// Horner's rule. `coeffs[0]` is the constant term.
pub fn eval(coeffs: &[Gf256], x: Gf256) -> Gf256 {
    let mut acc = Gf256::ZERO;
    for &c in coeffs.iter().rev() {
        acc = acc * x + c;
    }
    acc
}

/// Evaluates the polynomial at `x = 0`, i.e. returns the constant term.
pub fn eval_at_zero(coeffs: &[Gf256]) -> Gf256 {
    coeffs.first().copied().unwrap_or(Gf256::ZERO)
}

/// Interpolates the unique polynomial of degree `< points.len()` passing
/// through the given `(x, y)` points and evaluates it at `at`.
///
/// Returns `None` if two points share the same x-coordinate (the
/// interpolation problem is then ill-posed).
pub fn interpolate_at(points: &[(Gf256, Gf256)], at: Gf256) -> Option<Gf256> {
    // Reject duplicate x-coordinates.
    for (i, (xi, _)) in points.iter().enumerate() {
        for (xj, _) in points.iter().skip(i + 1) {
            if xi == xj {
                return None;
            }
        }
    }
    let mut acc = Gf256::ZERO;
    for (i, &(xi, yi)) in points.iter().enumerate() {
        // Lagrange basis L_i(at) = prod_{j != i} (at - x_j) / (x_i - x_j).
        let mut num = Gf256::ONE;
        let mut den = Gf256::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            num *= at - xj;
            den *= xi - xj;
        }
        let basis = num * den.inverse().expect("distinct x-coordinates");
        acc += yi * basis;
    }
    Some(acc)
}

/// Interpolates the polynomial through `points` and returns its value at
/// zero (the secret in Shamir's scheme).
pub fn interpolate_at_zero(points: &[(Gf256, Gf256)]) -> Option<Gf256> {
    interpolate_at(points, Gf256::ZERO)
}

/// Interpolates the full coefficient vector of the unique polynomial of
/// degree `< points.len()` through the given points.
///
/// This is O(k^2) per call and is used by tests and by RSSS decoding when the
/// original random padding pieces must also be recovered.
pub fn interpolate_coeffs(points: &[(Gf256, Gf256)]) -> Option<Vec<Gf256>> {
    for (i, (xi, _)) in points.iter().enumerate() {
        for (xj, _) in points.iter().skip(i + 1) {
            if xi == xj {
                return None;
            }
        }
    }
    let k = points.len();
    let mut coeffs = vec![Gf256::ZERO; k];
    // Accumulate y_i * L_i(x) in coefficient form.
    for (i, &(xi, yi)) in points.iter().enumerate() {
        // Build numerator polynomial prod_{j != i} (x - x_j) iteratively.
        let mut num = vec![Gf256::ZERO; k];
        num[0] = Gf256::ONE;
        let mut deg = 0usize;
        let mut den = Gf256::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            // num *= (x - x_j) == (x + x_j) in GF(2^8).
            let mut next = vec![Gf256::ZERO; k];
            for d in 0..=deg {
                next[d + 1] += num[d];
                next[d] += num[d] * xj;
            }
            num = next;
            deg += 1;
            den *= xi - xj;
        }
        let scale = yi * den.inverse().expect("distinct x-coordinates");
        for d in 0..k {
            coeffs[d] += num[d] * scale;
        }
    }
    Some(coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn g(v: u8) -> Gf256 {
        Gf256::new(v)
    }

    #[test]
    fn eval_constant_polynomial() {
        assert_eq!(eval(&[g(0x42)], g(0x99)), g(0x42));
        assert_eq!(eval(&[], g(7)), Gf256::ZERO);
    }

    #[test]
    fn eval_linear_polynomial() {
        // p(x) = 3 + 5x evaluated at x = 2.
        let coeffs = [g(3), g(5)];
        assert_eq!(eval(&coeffs, g(2)), g(3) + g(5) * g(2));
    }

    #[test]
    fn eval_at_zero_returns_constant_term() {
        let coeffs = [g(0xaa), g(1), g(2), g(3)];
        assert_eq!(eval_at_zero(&coeffs), g(0xaa));
        assert_eq!(eval(&coeffs, Gf256::ZERO), g(0xaa));
    }

    #[test]
    fn interpolation_recovers_known_polynomial() {
        let coeffs = [g(0x17), g(0x2e), g(0x80)];
        let points: Vec<(Gf256, Gf256)> = (1..=3u8).map(|x| (g(x), eval(&coeffs, g(x)))).collect();
        assert_eq!(interpolate_at_zero(&points), Some(g(0x17)));
        assert_eq!(interpolate_coeffs(&points).unwrap(), coeffs.to_vec());
    }

    #[test]
    fn interpolation_rejects_duplicate_x() {
        let points = [(g(1), g(2)), (g(1), g(3))];
        assert_eq!(interpolate_at_zero(&points), None);
        assert_eq!(interpolate_coeffs(&points), None);
    }

    #[test]
    fn any_subset_of_points_recovers_the_secret() {
        let coeffs = [g(0x5a), g(0x01), g(0xfe), g(0x33)];
        let all_points: Vec<(Gf256, Gf256)> =
            (1..=10u8).map(|x| (g(x), eval(&coeffs, g(x)))).collect();
        // Any 4 of the 10 evaluation points determine the cubic.
        for start in 0..6 {
            let subset = &all_points[start..start + 4];
            assert_eq!(interpolate_at_zero(subset), Some(g(0x5a)));
        }
    }

    proptest! {
        #[test]
        fn interpolation_round_trips(coeff_bytes in proptest::collection::vec(any::<u8>(), 1..8),
                                     extra in 0u8..20) {
            let coeffs: Vec<Gf256> = coeff_bytes.iter().map(|&b| g(b)).collect();
            let k = coeffs.len();
            // Evaluate at k distinct non-zero points (offset by `extra` to vary them).
            let points: Vec<(Gf256, Gf256)> = (0..k)
                .map(|i| {
                    let x = g((i as u8).wrapping_add(extra).wrapping_add(1).max(1));
                    (x, eval(&coeffs, x))
                })
                .collect();
            // Skip degenerate cases where wrapping produced duplicate x values.
            let mut xs: Vec<u8> = points.iter().map(|(x, _)| x.value()).collect();
            xs.sort_unstable();
            xs.dedup();
            prop_assume!(xs.len() == k);
            prop_assert_eq!(interpolate_at_zero(&points).unwrap(), coeffs[0]);
            let recovered = interpolate_coeffs(&points).unwrap();
            prop_assert_eq!(recovered, coeffs);
        }

        #[test]
        fn interpolated_polynomial_passes_through_points(
            ys in proptest::collection::vec(any::<u8>(), 2..6)) {
            let points: Vec<(Gf256, Gf256)> = ys
                .iter()
                .enumerate()
                .map(|(i, &y)| (g(i as u8 + 1), g(y)))
                .collect();
            let coeffs = interpolate_coeffs(&points).unwrap();
            for &(x, y) in &points {
                prop_assert_eq!(eval(&coeffs, x), y);
            }
        }
    }
}
