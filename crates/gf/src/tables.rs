//! Precomputed logarithm / exponential tables for GF(2^8).
//!
//! The field is defined by the primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11d) with generator `α = 2` — the same
//! construction used by GF-Complete and most Reed-Solomon implementations.
//! All tables are computed at compile time by `const fn`s, so there is no
//! runtime initialisation cost and no global mutable state.

/// The primitive (irreducible) polynomial defining GF(2^8), without the
/// leading `x^8` term folded in: `0x11d = x^8 + x^4 + x^3 + x^2 + 1`.
pub const PRIMITIVE_POLY: u16 = 0x11d;

/// The multiplicative generator used to build the log/exp tables.
pub const GENERATOR: u8 = 2;

/// Order of the multiplicative group of GF(2^8).
pub const GROUP_ORDER: usize = 255;

const fn build_exp_log() -> ([u8; 512], [u8; 256]) {
    let mut exp = [0u8; 512];
    let mut log = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < GROUP_ORDER {
        exp[i] = x as u8;
        log[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= PRIMITIVE_POLY;
        }
        i += 1;
    }
    // Duplicate the exponent table so `exp[log_a + log_b]` never needs a
    // modular reduction for sums below 2 * 255.
    let mut j = GROUP_ORDER;
    while j < 512 {
        exp[j] = exp[j - GROUP_ORDER];
        j += 1;
    }
    (exp, log)
}

const TABLES: ([u8; 512], [u8; 256]) = build_exp_log();

/// Exponential table: `EXP[i] = α^i` for `i < 255`, duplicated to length 512.
pub static EXP: [u8; 512] = TABLES.0;

/// Logarithm table: `LOG[x] = log_α(x)` for `x != 0`; `LOG[0]` is unused (0).
pub static LOG: [u8; 256] = TABLES.1;

const fn build_mul_table() -> [[u8; 256]; 256] {
    let mut table = [[0u8; 256]; 256];
    let mut a = 1usize;
    while a < 256 {
        let la = TABLES.1[a] as usize;
        let mut b = 1usize;
        while b < 256 {
            let lb = TABLES.1[b] as usize;
            table[a][b] = TABLES.0[la + lb];
            b += 1;
        }
        a += 1;
    }
    table
}

/// Full 256x256 multiplication table: `MUL[a][b] = a * b` in GF(2^8).
///
/// Region operations index one row of this table per multiplication constant,
/// giving a single lookup per processed byte (the "table" method of
/// GF-Complete).
pub static MUL: [[u8; 256]; 256] = build_mul_table();

const fn build_inv_table() -> [u8; 256] {
    let mut inv = [0u8; 256];
    let mut a = 1usize;
    while a < 256 {
        let la = TABLES.1[a] as usize;
        inv[a] = TABLES.0[GROUP_ORDER - la];
        a += 1;
    }
    // inverse of 1 is 1 (GROUP_ORDER - 0 == 255, EXP[255] == EXP[0] == 1).
    inv[1] = 1;
    inv
}

/// Multiplicative-inverse table: `INV[a] = a^-1` for `a != 0`; `INV[0] = 0`.
pub static INV: [u8; 256] = build_inv_table();

/// Multiplies two field elements using the log/exp tables.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Divides `a` by `b` in GF(2^8).
///
/// # Panics
///
/// Panics if `b == 0`.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    assert!(b != 0, "division by zero in GF(2^8)");
    if a == 0 {
        0
    } else {
        EXP[GROUP_ORDER + LOG[a as usize] as usize - LOG[b as usize] as usize]
    }
}

/// Returns the multiplicative inverse of `a`, or `None` for `a == 0`.
#[inline]
pub fn inverse(a: u8) -> Option<u8> {
    if a == 0 {
        None
    } else {
        Some(INV[a as usize])
    }
}

/// Raises `a` to the power `e` in GF(2^8).
#[inline]
pub fn pow(a: u8, e: u32) -> u8 {
    if e == 0 {
        return 1;
    }
    if a == 0 {
        return 0;
    }
    let la = LOG[a as usize] as u64;
    let idx = (la * e as u64) % GROUP_ORDER as u64;
    EXP[idx as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_are_inverse_maps() {
        for (i, &x) in EXP.iter().enumerate().take(GROUP_ORDER) {
            assert_ne!(x, 0, "generator power must be non-zero");
            assert_eq!(LOG[x as usize] as usize, i);
        }
    }

    #[test]
    fn exp_table_is_periodic() {
        for i in 0..GROUP_ORDER {
            assert_eq!(EXP[i], EXP[i + GROUP_ORDER]);
        }
    }

    #[test]
    fn all_nonzero_elements_appear_in_exp() {
        let mut seen = [false; 256];
        for i in 0..GROUP_ORDER {
            seen[EXP[i] as usize] = true;
        }
        assert!(!seen[0]);
        assert!(
            seen[1..].iter().all(|&s| s),
            "α must generate the whole group"
        );
    }

    #[test]
    fn mul_matches_carryless_reference() {
        // Reference: schoolbook carry-less multiply followed by reduction.
        fn slow_mul(a: u8, b: u8) -> u8 {
            let mut result: u16 = 0;
            let mut a = a as u16;
            let mut b = b;
            while b != 0 {
                if b & 1 != 0 {
                    result ^= a;
                }
                a <<= 1;
                if a & 0x100 != 0 {
                    a ^= PRIMITIVE_POLY;
                }
                b >>= 1;
            }
            result as u8
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn mul_table_matches_mul() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(MUL[a as usize][b as usize], mul(a, b));
            }
        }
    }

    #[test]
    fn inverse_table_is_correct() {
        assert_eq!(inverse(0), None);
        for a in 1..=255u8 {
            let inv = inverse(a).unwrap();
            assert_eq!(mul(a, inv), 1, "a={a}");
        }
    }

    #[test]
    fn division_round_trips() {
        for a in 0..=255u8 {
            for b in 1..=255u8 {
                let q = div(a, b);
                assert_eq!(mul(q, b), a);
            }
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = div(7, 0);
    }

    #[test]
    fn pow_small_cases() {
        assert_eq!(pow(0, 0), 1);
        assert_eq!(pow(0, 5), 0);
        assert_eq!(pow(7, 0), 1);
        assert_eq!(pow(7, 1), 7);
        assert_eq!(pow(2, 8), mul(pow(2, 4), pow(2, 4)));
        // Fermat: a^255 == 1 for a != 0.
        for a in 1..=255u8 {
            assert_eq!(pow(a, 255), 1);
        }
    }
}
