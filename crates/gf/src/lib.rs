//! Galois field arithmetic over GF(2^8) for erasure coding and secret sharing.
//!
//! This crate is the reproduction of the GF-Complete substrate used by the
//! CDStore paper (Plank et al., FAST '13). It provides:
//!
//! * [`Gf256`] — single-element arithmetic (add, sub, mul, div, inverse,
//!   exponentiation) over GF(2^8) with the primitive polynomial
//!   `x^8 + x^4 + x^3 + x^2 + 1` (0x11d).
//! * [`region`] — bulk "region" operations over byte slices (XOR, multiply by
//!   a constant, multiply-accumulate), the building blocks of Reed-Solomon
//!   encoding and of the IDA/RSSS dispersal matrices.
//! * [`poly`] — polynomial evaluation and Lagrange interpolation over
//!   GF(2^8), the building blocks of Shamir's secret sharing.
//! * [`matrix`] — dense matrices over GF(2^8) with Gaussian-elimination
//!   inversion, used to build and invert dispersal/decoding matrices.
//!
//! # Examples
//!
//! ```
//! use cdstore_gf::Gf256;
//!
//! let a = Gf256::new(0x53);
//! let b = Gf256::new(0xca);
//! let p = a * b;
//! assert_eq!(p / b, a);
//! assert_eq!(a * a.inverse().unwrap(), Gf256::ONE);
//! ```

// Unsafe is denied crate-wide and re-allowed only inside the SIMD kernel
// modules of `region`, whose intrinsics carry per-function safety contracts
// (CPU-feature detection before dispatch, unaligned loads/stores only).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod field;
pub mod matrix;
pub mod poly;
pub mod region;
pub mod tables;

pub use field::Gf256;
pub use matrix::Matrix;
