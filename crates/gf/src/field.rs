//! A typed wrapper for single GF(2^8) field elements.

use core::fmt;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::tables;

/// An element of GF(2^8).
///
/// Arithmetic is implemented through the standard operator traits; addition
/// and subtraction are both XOR (characteristic 2), and multiplication /
/// division use the precomputed log/exp tables in [`crate::tables`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf256(pub u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The generator α of the multiplicative group.
    pub const GENERATOR: Gf256 = Gf256(tables::GENERATOR);

    /// Wraps a raw byte as a field element.
    #[inline]
    pub const fn new(value: u8) -> Self {
        Gf256(value)
    }

    /// Returns the raw byte value of this element.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Returns `true` if this is the additive identity.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the multiplicative inverse, or `None` for zero.
    #[inline]
    pub fn inverse(self) -> Option<Gf256> {
        tables::inverse(self.0).map(Gf256)
    }

    /// Raises this element to the power `e`.
    #[inline]
    pub fn pow(self, e: u32) -> Gf256 {
        Gf256(tables::pow(self.0, e))
    }

    /// Returns `α^e`, the `e`-th power of the group generator.
    #[inline]
    pub fn alpha_pow(e: u32) -> Gf256 {
        Self::GENERATOR.pow(e)
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256(0x{:02x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl From<u8> for Gf256 {
    fn from(value: u8) -> Self {
        Gf256(value)
    }
}

impl From<Gf256> for u8 {
    fn from(value: Gf256) -> Self {
        value.0
    }
}

// In GF(2^8) addition and subtraction are both XOR; clippy flags `^`
// inside arithmetic impls, but here it is the field operation itself.
#[allow(clippy::suspicious_arithmetic_impl)]
impl Add for Gf256 {
    type Output = Gf256;
    #[inline]
    fn add(self, rhs: Gf256) -> Gf256 {
        Gf256(self.0 ^ rhs.0)
    }
}

// In GF(2^8) addition and subtraction are both XOR; clippy flags `^`
// inside arithmetic impls, but here it is the field operation itself.
#[allow(clippy::suspicious_op_assign_impl)]
impl AddAssign for Gf256 {
    #[inline]
    fn add_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

// In GF(2^8) addition and subtraction are both XOR; clippy flags `^`
// inside arithmetic impls, but here it is the field operation itself.
#[allow(clippy::suspicious_arithmetic_impl)]
impl Sub for Gf256 {
    type Output = Gf256;
    #[inline]
    fn sub(self, rhs: Gf256) -> Gf256 {
        // Subtraction equals addition in characteristic 2.
        Gf256(self.0 ^ rhs.0)
    }
}

// In GF(2^8) addition and subtraction are both XOR; clippy flags `^`
// inside arithmetic impls, but here it is the field operation itself.
#[allow(clippy::suspicious_op_assign_impl)]
impl SubAssign for Gf256 {
    #[inline]
    fn sub_assign(&mut self, rhs: Gf256) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Gf256 {
        self
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Gf256) -> Gf256 {
        Gf256(tables::mul(self.0, rhs.0))
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Gf256) {
        self.0 = tables::mul(self.0, rhs.0);
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    #[inline]
    fn div(self, rhs: Gf256) -> Gf256 {
        Gf256(tables::div(self.0, rhs.0))
    }
}

impl DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Gf256) {
        self.0 = tables::div(self.0, rhs.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identities() {
        let a = Gf256::new(0x9c);
        assert_eq!(a + Gf256::ZERO, a);
        assert_eq!(a * Gf256::ONE, a);
        assert_eq!(a - a, Gf256::ZERO);
        assert_eq!(-a, a);
    }

    #[test]
    fn generator_has_full_order() {
        let mut x = Gf256::ONE;
        for i in 1..=255u32 {
            x *= Gf256::GENERATOR;
            if i < 255 {
                assert_ne!(x, Gf256::ONE, "order divides {i}");
            }
        }
        assert_eq!(x, Gf256::ONE);
    }

    #[test]
    fn inverse_of_zero_is_none() {
        assert_eq!(Gf256::ZERO.inverse(), None);
    }

    #[test]
    fn alpha_pow_matches_repeated_multiplication() {
        let mut x = Gf256::ONE;
        for e in 0..600u32 {
            assert_eq!(Gf256::alpha_pow(e), x);
            x *= Gf256::GENERATOR;
        }
    }

    #[test]
    fn assign_operators_match_binary_operators() {
        let a = Gf256::new(0x37);
        let b = Gf256::new(0xd4);
        let mut x = a;
        x += b;
        assert_eq!(x, a + b);
        x = a;
        x -= b;
        assert_eq!(x, a - b);
        x = a;
        x *= b;
        assert_eq!(x, a * b);
        x = a;
        x /= b;
        assert_eq!(x, a / b);
    }

    proptest! {
        #[test]
        fn addition_is_commutative_and_associative(a: u8, b: u8, c: u8) {
            let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn multiplication_is_commutative_and_associative(a: u8, b: u8, c: u8) {
            let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
            prop_assert_eq!(a * b, b * a);
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn multiplication_distributes_over_addition(a: u8, b: u8, c: u8) {
            let (a, b, c) = (Gf256::new(a), Gf256::new(b), Gf256::new(c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn nonzero_elements_have_inverses(a in 1u8..=255) {
            let a = Gf256::new(a);
            let inv = a.inverse().unwrap();
            prop_assert_eq!(a * inv, Gf256::ONE);
        }

        #[test]
        fn division_is_multiplication_by_inverse(a: u8, b in 1u8..=255) {
            let a = Gf256::new(a);
            let b = Gf256::new(b);
            prop_assert_eq!(a / b, a * b.inverse().unwrap());
        }

        #[test]
        fn pow_is_repeated_multiplication(a: u8, e in 0u32..64) {
            let a = Gf256::new(a);
            let mut expected = Gf256::ONE;
            for _ in 0..e {
                expected *= a;
            }
            prop_assert_eq!(a.pow(e), expected);
        }
    }
}
