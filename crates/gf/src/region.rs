//! Bulk ("region") operations over byte slices interpreted as GF(2^8) vectors.
//!
//! Reed-Solomon encoding, IDA dispersal, and the XOR steps of the AONT
//! package construction all reduce to three primitives over large buffers:
//! `dst ^= src`, `dst = c * src`, and `dst ^= c * src`. These are the Rust
//! equivalents of GF-Complete's region operations; the constant-multiplier
//! variants use one row of the precomputed 64 KiB multiplication table so the
//! inner loop is a single table lookup per byte.

use crate::tables::MUL;

/// XORs `src` into `dst` element-wise: `dst[i] ^= src[i]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "region length mismatch");
    // Process 8 bytes at a time through u64 words for throughput; the
    // remainder falls back to the byte loop.
    let chunks = dst.len() / 8;
    let (dst_words, dst_tail) = dst.split_at_mut(chunks * 8);
    let (src_words, src_tail) = src.split_at(chunks * 8);
    for (d, s) in dst_words.chunks_exact_mut(8).zip(src_words.chunks_exact(8)) {
        let dv = u64::from_ne_bytes(d.try_into().expect("chunk of 8"));
        let sv = u64::from_ne_bytes(s.try_into().expect("chunk of 8"));
        d.copy_from_slice(&(dv ^ sv).to_ne_bytes());
    }
    for (d, s) in dst_tail.iter_mut().zip(src_tail) {
        *d ^= *s;
    }
}

/// Returns the element-wise XOR of two equally sized slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor(a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len(), "region length mismatch");
    let mut out = a.to_vec();
    xor_into(&mut out, b);
    out
}

/// Multiplies every byte of `src` by the constant `c`, writing into `dst`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_into(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "region length mismatch");
    match c {
        0 => dst.fill(0),
        1 => dst.copy_from_slice(src),
        _ => {
            let row = &MUL[c as usize];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = row[s as usize];
            }
        }
    }
}

/// Returns `c * src` as a new vector.
pub fn mul(src: &[u8], c: u8) -> Vec<u8> {
    let mut out = vec![0u8; src.len()];
    mul_into(&mut out, src, c);
    out
}

/// Multiplies every byte of `src` by `c` and XORs the product into `dst`:
/// `dst[i] ^= c * src[i]`. This is the multiply-accumulate kernel of
/// matrix-vector products over GF(2^8).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_acc(dst: &mut [u8], src: &[u8], c: u8) {
    assert_eq!(dst.len(), src.len(), "region length mismatch");
    match c {
        0 => {}
        1 => xor_into(dst, src),
        _ => {
            let row = &MUL[c as usize];
            for (d, &s) in dst.iter_mut().zip(src) {
                *d ^= row[s as usize];
            }
        }
    }
}

/// Multiplies a dense `rows x cols` GF(2^8) matrix (row-major in `matrix`) by
/// `cols` equally sized data fragments, producing `rows` output fragments.
///
/// This is the common kernel behind Reed-Solomon encoding and IDA dispersal:
/// each output fragment `i` is `sum_j matrix[i][j] * inputs[j]`.
///
/// # Panics
///
/// Panics if `matrix.len() != rows * cols`, if `inputs.len() != cols`, or if
/// the input fragments are not all the same length.
pub fn matrix_apply(matrix: &[u8], rows: usize, cols: usize, inputs: &[&[u8]]) -> Vec<Vec<u8>> {
    assert_eq!(matrix.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(inputs.len(), cols, "input fragment count mismatch");
    let frag_len = inputs.first().map_or(0, |f| f.len());
    assert!(
        inputs.iter().all(|f| f.len() == frag_len),
        "input fragments must have equal length"
    );
    let mut outputs = vec![vec![0u8; frag_len]; rows];
    for (i, out) in outputs.iter_mut().enumerate() {
        for (j, input) in inputs.iter().enumerate() {
            mul_acc(out, input, matrix[i * cols + j]);
        }
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables;
    use proptest::prelude::*;

    #[test]
    fn xor_into_handles_unaligned_lengths() {
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000] {
            let a: Vec<u8> = (0..len).map(|i| (i * 7 + 13) as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i * 31 + 5) as u8).collect();
            let mut d = a.clone();
            xor_into(&mut d, &b);
            for i in 0..len {
                assert_eq!(d[i], a[i] ^ b[i]);
            }
        }
    }

    #[test]
    fn xor_is_involutive() {
        let a: Vec<u8> = (0..257).map(|i| (i % 251) as u8).collect();
        let b: Vec<u8> = (0..257).map(|i| (i % 241) as u8).collect();
        let once = xor(&a, &b);
        let twice = xor(&once, &b);
        assert_eq!(twice, a);
    }

    #[test]
    fn mul_by_zero_and_one() {
        let src: Vec<u8> = (0..=255).collect();
        assert!(mul(&src, 0).iter().all(|&x| x == 0));
        assert_eq!(mul(&src, 1), src);
    }

    #[test]
    fn mul_into_matches_scalar_mul() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [2u8, 3, 0x1d, 0xff] {
            let out = mul(&src, c);
            for (i, &o) in out.iter().enumerate() {
                assert_eq!(o, tables::mul(src[i], c));
            }
        }
    }

    #[test]
    fn mul_acc_accumulates() {
        let src: Vec<u8> = (0..64).map(|i| i as u8).collect();
        let mut dst = vec![0xaau8; 64];
        let before = dst.clone();
        mul_acc(&mut dst, &src, 5);
        for i in 0..64 {
            assert_eq!(dst[i], before[i] ^ tables::mul(src[i], 5));
        }
    }

    #[test]
    #[should_panic(expected = "region length mismatch")]
    fn length_mismatch_panics() {
        let mut dst = vec![0u8; 4];
        xor_into(&mut dst, &[0u8; 5]);
    }

    #[test]
    fn matrix_apply_identity() {
        // 2x2 identity matrix maps inputs to themselves.
        let m = [1u8, 0, 0, 1];
        let a = vec![1u8, 2, 3, 4];
        let b = vec![5u8, 6, 7, 8];
        let out = matrix_apply(&m, 2, 2, &[&a, &b]);
        assert_eq!(out[0], a);
        assert_eq!(out[1], b);
    }

    #[test]
    fn matrix_apply_small_known_case() {
        // [[1,1],[1,2]] * [a, b] = [a^b, a ^ 2*b]
        let m = [1u8, 1, 1, 2];
        let a = vec![0x10u8, 0x20];
        let b = vec![0x01u8, 0x80];
        let out = matrix_apply(&m, 2, 2, &[&a, &b]);
        assert_eq!(out[0], vec![0x11, 0xa0]);
        assert_eq!(
            out[1],
            vec![0x10 ^ tables::mul(0x01, 2), 0x20 ^ tables::mul(0x80, 2)]
        );
    }

    proptest! {
        #[test]
        fn mul_acc_is_mul_then_xor(src in proptest::collection::vec(any::<u8>(), 0..256),
                                   dst in proptest::collection::vec(any::<u8>(), 0..256),
                                   c: u8) {
            let len = src.len().min(dst.len());
            let src = &src[..len];
            let mut d1 = dst[..len].to_vec();
            mul_acc(&mut d1, src, c);
            let mut d2 = dst[..len].to_vec();
            let prod = mul(src, c);
            xor_into(&mut d2, &prod);
            prop_assert_eq!(d1, d2);
        }

        #[test]
        fn mul_by_constant_is_invertible(src in proptest::collection::vec(any::<u8>(), 0..256),
                                         c in 1u8..=255) {
            let forward = mul(&src, c);
            let inv = tables::inverse(c).unwrap();
            let back = mul(&forward, inv);
            prop_assert_eq!(back, src);
        }
    }
}
