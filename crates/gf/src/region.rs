//! Bulk ("region") operations over byte slices interpreted as GF(2^8) vectors.
//!
//! Reed-Solomon encoding, IDA dispersal, and the XOR steps of the AONT
//! package construction all reduce to three primitives over large buffers:
//! `dst ^= src`, `dst = c * src`, and `dst ^= c * src`. These are the Rust
//! equivalents of GF-Complete's region operations.
//!
//! # Kernel dispatch
//!
//! Each primitive has a portable scalar implementation (the 64 KiB
//! multiplication table, one lookup per byte) and split-table SIMD variants:
//! the product `c * x` is decomposed into the products of the low and high
//! nibbles of `x`, each read from a 16-entry table with a byte-shuffle
//! instruction (`pshufb` on SSSE3/AVX2, `tbl` on NEON) — 16 or 32 products
//! per instruction instead of one per load. This is GF-Complete's
//! `SPLIT_TABLE(8, 4)` scheme.
//!
//! The fastest backend the CPU supports is detected once per process (see
//! [`Backend::active`]); setting the environment variable
//! `CDSTORE_FORCE_SCALAR` (to anything but `0`) before first use forces the
//! scalar fallback, which is how CI pins golden vectors under both dispatch
//! modes. Every backend produces bit-identical output; the differential
//! suite in `tests/simd_differential.rs` proves it for all `(c, length,
//! alignment)` combinations.

use std::sync::OnceLock;

use crate::tables::MUL;

/// A region-kernel implementation selected by runtime CPU-feature detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable table-lookup loops; always available.
    Scalar,
    /// 128-bit split-table shuffle kernels (x86 `pshufb`).
    Ssse3,
    /// 256-bit split-table shuffle kernels (x86 `vpshufb`).
    Avx2,
    /// 128-bit split-table shuffle kernels (AArch64 `tbl`).
    Neon,
}

static ACTIVE: OnceLock<Backend> = OnceLock::new();

fn force_scalar() -> bool {
    std::env::var_os("CDSTORE_FORCE_SCALAR").is_some_and(|v| v != "0")
}

impl Backend {
    /// Every backend this binary can run on the current CPU, scalar first.
    /// Used by the differential test suite to compare all of them pairwise.
    pub fn available() -> Vec<Backend> {
        let mut v = vec![Backend::Scalar];
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        {
            if is_x86_feature_detected!("ssse3") {
                v.push(Backend::Ssse3);
            }
            if is_x86_feature_detected!("avx2") {
                v.push(Backend::Avx2);
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                v.push(Backend::Neon);
            }
        }
        v
    }

    /// The backend the free functions dispatch to, chosen once per process:
    /// the last (fastest) entry of [`Backend::available`], unless
    /// `CDSTORE_FORCE_SCALAR` is set at first use.
    pub fn active() -> Backend {
        *ACTIVE.get_or_init(|| {
            if force_scalar() {
                Backend::Scalar
            } else {
                *Self::available().last().expect("scalar always available")
            }
        })
    }

    /// Human-readable backend name (used by benches and logs).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Ssse3 => "ssse3",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }

    /// `dst[i] ^= src[i]` with this backend.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[allow(unsafe_code)] // SIMD variants exist only after feature detection
    pub fn xor_into(self, dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "region length mismatch");
        match self {
            Backend::Scalar => xor_into_scalar(dst, src),
            #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
            // SAFETY: constructing these variants requires the feature
            // detection in `Backend::available`/`Backend::active`.
            Backend::Ssse3 => unsafe { x86::xor_sse2(dst, src) },
            #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
            Backend::Avx2 => unsafe { x86::xor_avx2(dst, src) },
            #[cfg(target_arch = "aarch64")]
            Backend::Neon => unsafe { neon::xor_neon(dst, src) },
            #[allow(unreachable_patterns)]
            _ => xor_into_scalar(dst, src),
        }
    }

    /// `dst[i] = c * src[i]` with this backend.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[allow(unsafe_code)] // SIMD variants exist only after feature detection
    pub fn mul_into(self, dst: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(dst.len(), src.len(), "region length mismatch");
        match c {
            0 => dst.fill(0),
            1 => dst.copy_from_slice(src),
            _ => match self {
                Backend::Scalar => mul_scalar::<false>(dst, src, c),
                #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
                // SAFETY: variant implies the feature was detected.
                Backend::Ssse3 => unsafe { x86::mul_ssse3::<false>(dst, src, c) },
                #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
                Backend::Avx2 => unsafe { x86::mul_avx2::<false>(dst, src, c) },
                #[cfg(target_arch = "aarch64")]
                Backend::Neon => unsafe { neon::mul_neon::<false>(dst, src, c) },
                #[allow(unreachable_patterns)]
                _ => mul_scalar::<false>(dst, src, c),
            },
        }
    }

    /// `dst[i] ^= c * src[i]` with this backend.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    #[allow(unsafe_code)] // SIMD variants exist only after feature detection
    pub fn mul_acc(self, dst: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(dst.len(), src.len(), "region length mismatch");
        match c {
            0 => {}
            1 => self.xor_into(dst, src),
            _ => match self {
                Backend::Scalar => mul_scalar::<true>(dst, src, c),
                #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
                // SAFETY: variant implies the feature was detected.
                Backend::Ssse3 => unsafe { x86::mul_ssse3::<true>(dst, src, c) },
                #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
                Backend::Avx2 => unsafe { x86::mul_avx2::<true>(dst, src, c) },
                #[cfg(target_arch = "aarch64")]
                Backend::Neon => unsafe { neon::mul_neon::<true>(dst, src, c) },
                #[allow(unreachable_patterns)]
                _ => mul_scalar::<true>(dst, src, c),
            },
        }
    }
}

/// XORs `src` into `dst` element-wise: `dst[i] ^= src[i]`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn xor_into(dst: &mut [u8], src: &[u8]) {
    Backend::active().xor_into(dst, src);
}

/// Returns the element-wise XOR of two equally sized slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn xor(a: &[u8], b: &[u8]) -> Vec<u8> {
    assert_eq!(a.len(), b.len(), "region length mismatch");
    let mut out = a.to_vec();
    xor_into(&mut out, b);
    out
}

/// Multiplies every byte of `src` by the constant `c`, writing into `dst`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_into(dst: &mut [u8], src: &[u8], c: u8) {
    Backend::active().mul_into(dst, src, c);
}

/// Returns `c * src` as a new vector.
pub fn mul(src: &[u8], c: u8) -> Vec<u8> {
    let mut out = vec![0u8; src.len()];
    mul_into(&mut out, src, c);
    out
}

/// Multiplies every byte of `src` by `c` and XORs the product into `dst`:
/// `dst[i] ^= c * src[i]`. This is the multiply-accumulate kernel of
/// matrix-vector products over GF(2^8).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn mul_acc(dst: &mut [u8], src: &[u8], c: u8) {
    Backend::active().mul_acc(dst, src, c);
}

fn xor_into_scalar(dst: &mut [u8], src: &[u8]) {
    // Process 8 bytes at a time through u64 words for throughput; the
    // remainder falls back to the byte loop.
    let chunks = dst.len() / 8;
    let (dst_words, dst_tail) = dst.split_at_mut(chunks * 8);
    let (src_words, src_tail) = src.split_at(chunks * 8);
    for (d, s) in dst_words.chunks_exact_mut(8).zip(src_words.chunks_exact(8)) {
        let dv = u64::from_ne_bytes(d.try_into().expect("chunk of 8"));
        let sv = u64::from_ne_bytes(s.try_into().expect("chunk of 8"));
        d.copy_from_slice(&(dv ^ sv).to_ne_bytes());
    }
    for (d, s) in dst_tail.iter_mut().zip(src_tail) {
        *d ^= *s;
    }
}

/// Scalar multiply (`ACC = false`) / multiply-accumulate (`ACC = true`)
/// through one row of the 64 KiB table. `c` is neither 0 nor 1 here.
fn mul_scalar<const ACC: bool>(dst: &mut [u8], src: &[u8], c: u8) {
    let row = &MUL[c as usize];
    for (d, &s) in dst.iter_mut().zip(src) {
        if ACC {
            *d ^= row[s as usize];
        } else {
            *d = row[s as usize];
        }
    }
}

/// The two 16-entry split tables for multiplier `c`: products of the low
/// nibble (`c * i`) and of the high nibble (`c * (i << 4)`), `i in 0..16`.
/// `c * x = lo[x & 0xf] ^ hi[x >> 4]` by linearity of GF(2^8) multiplication.
fn nibble_tables(c: u8) -> ([u8; 16], [u8; 16]) {
    let row = &MUL[c as usize];
    let mut lo = [0u8; 16];
    let mut hi = [0u8; 16];
    for i in 0..16 {
        lo[i] = row[i];
        hi[i] = row[i << 4];
    }
    (lo, hi)
}

#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
#[allow(unsafe_code)]
mod x86 {
    //! x86 split-table kernels. All loads/stores are unaligned
    //! (`loadu`/`storeu`), so callers never need aligned buffers; the scalar
    //! tail handles the last `len % width` bytes.

    use super::{mul_scalar, nibble_tables};
    #[cfg(target_arch = "x86")]
    use core::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    /// # Safety
    ///
    /// Caller must ensure SSE2 is available (implied by SSSE3 detection; SSE2
    /// is baseline on x86_64). Slices must have equal lengths.
    #[target_feature(enable = "sse2")]
    pub unsafe fn xor_sse2(dst: &mut [u8], src: &[u8]) {
        let len = dst.len();
        let vec_len = len - len % 16;
        let mut i = 0;
        while i < vec_len {
            let d = _mm_loadu_si128(dst.as_ptr().add(i).cast());
            let s = _mm_loadu_si128(src.as_ptr().add(i).cast());
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), _mm_xor_si128(d, s));
            i += 16;
        }
        for j in vec_len..len {
            dst[j] ^= src[j];
        }
    }

    /// # Safety
    ///
    /// Caller must ensure AVX2 is available. Slices must have equal lengths.
    #[target_feature(enable = "avx2")]
    pub unsafe fn xor_avx2(dst: &mut [u8], src: &[u8]) {
        let len = dst.len();
        let vec_len = len - len % 32;
        let mut i = 0;
        while i < vec_len {
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_xor_si256(d, s));
            i += 32;
        }
        for j in vec_len..len {
            dst[j] ^= src[j];
        }
    }

    /// Split-table multiply (`ACC = false`) / multiply-accumulate
    /// (`ACC = true`), 16 bytes per step.
    ///
    /// # Safety
    ///
    /// Caller must ensure SSSE3 is available. Slices must have equal lengths;
    /// `c` must be neither 0 nor 1 (handled by the dispatcher).
    #[target_feature(enable = "ssse3")]
    pub unsafe fn mul_ssse3<const ACC: bool>(dst: &mut [u8], src: &[u8], c: u8) {
        let (lo_t, hi_t) = nibble_tables(c);
        let lo_tbl = _mm_loadu_si128(lo_t.as_ptr().cast());
        let hi_tbl = _mm_loadu_si128(hi_t.as_ptr().cast());
        let mask = _mm_set1_epi8(0x0f);
        let len = dst.len();
        let vec_len = len - len % 16;
        let mut i = 0;
        while i < vec_len {
            let v = _mm_loadu_si128(src.as_ptr().add(i).cast());
            let lo = _mm_and_si128(v, mask);
            let hi = _mm_and_si128(_mm_srli_epi64(v, 4), mask);
            let mut prod =
                _mm_xor_si128(_mm_shuffle_epi8(lo_tbl, lo), _mm_shuffle_epi8(hi_tbl, hi));
            if ACC {
                prod = _mm_xor_si128(prod, _mm_loadu_si128(dst.as_ptr().add(i).cast()));
            }
            _mm_storeu_si128(dst.as_mut_ptr().add(i).cast(), prod);
            i += 16;
        }
        mul_scalar::<ACC>(&mut dst[vec_len..], &src[vec_len..], c);
    }

    /// Split-table multiply / multiply-accumulate, 32 bytes per step.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX2 is available. Slices must have equal lengths;
    /// `c` must be neither 0 nor 1 (handled by the dispatcher).
    #[target_feature(enable = "avx2")]
    pub unsafe fn mul_avx2<const ACC: bool>(dst: &mut [u8], src: &[u8], c: u8) {
        let (lo_t, hi_t) = nibble_tables(c);
        let lo_tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo_t.as_ptr().cast()));
        let hi_tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi_t.as_ptr().cast()));
        let mask = _mm256_set1_epi8(0x0f);
        let len = dst.len();
        let vec_len = len - len % 32;
        let mut i = 0;
        while i < vec_len {
            let v = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let lo = _mm256_and_si256(v, mask);
            let hi = _mm256_and_si256(_mm256_srli_epi64(v, 4), mask);
            let mut prod = _mm256_xor_si256(
                _mm256_shuffle_epi8(lo_tbl, lo),
                _mm256_shuffle_epi8(hi_tbl, hi),
            );
            if ACC {
                prod = _mm256_xor_si256(prod, _mm256_loadu_si256(dst.as_ptr().add(i).cast()));
            }
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), prod);
            i += 32;
        }
        mul_scalar::<ACC>(&mut dst[vec_len..], &src[vec_len..], c);
    }
}

#[cfg(target_arch = "aarch64")]
#[allow(unsafe_code)]
mod neon {
    //! AArch64 split-table kernels (`tbl` is NEON's `pshufb`; out-of-range
    //! indices already yield 0, and our indices are masked to 0..16 anyway).

    use super::{mul_scalar, nibble_tables};
    use core::arch::aarch64::*;

    /// # Safety
    ///
    /// Caller must ensure NEON is available (mandatory on AArch64, still
    /// detected). Slices must have equal lengths.
    #[target_feature(enable = "neon")]
    pub unsafe fn xor_neon(dst: &mut [u8], src: &[u8]) {
        let len = dst.len();
        let vec_len = len - len % 16;
        let mut i = 0;
        while i < vec_len {
            let d = vld1q_u8(dst.as_ptr().add(i));
            let s = vld1q_u8(src.as_ptr().add(i));
            vst1q_u8(dst.as_mut_ptr().add(i), veorq_u8(d, s));
            i += 16;
        }
        for j in vec_len..len {
            dst[j] ^= src[j];
        }
    }

    /// Split-table multiply / multiply-accumulate, 16 bytes per step.
    ///
    /// # Safety
    ///
    /// Caller must ensure NEON is available. Slices must have equal lengths;
    /// `c` must be neither 0 nor 1 (handled by the dispatcher).
    #[target_feature(enable = "neon")]
    pub unsafe fn mul_neon<const ACC: bool>(dst: &mut [u8], src: &[u8], c: u8) {
        let (lo_t, hi_t) = nibble_tables(c);
        let lo_tbl = vld1q_u8(lo_t.as_ptr());
        let hi_tbl = vld1q_u8(hi_t.as_ptr());
        let mask = vdupq_n_u8(0x0f);
        let len = dst.len();
        let vec_len = len - len % 16;
        let mut i = 0;
        while i < vec_len {
            let v = vld1q_u8(src.as_ptr().add(i));
            let lo = vandq_u8(v, mask);
            let hi = vshrq_n_u8(v, 4);
            let mut prod = veorq_u8(vqtbl1q_u8(lo_tbl, lo), vqtbl1q_u8(hi_tbl, hi));
            if ACC {
                prod = veorq_u8(prod, vld1q_u8(dst.as_ptr().add(i)));
            }
            vst1q_u8(dst.as_mut_ptr().add(i), prod);
            i += 16;
        }
        mul_scalar::<ACC>(&mut dst[vec_len..], &src[vec_len..], c);
    }
}

/// Multiplies a dense `rows x cols` GF(2^8) matrix (row-major in `matrix`) by
/// `cols` equally sized data fragments, producing `rows` output fragments.
///
/// This is the common kernel behind Reed-Solomon encoding and IDA dispersal:
/// each output fragment `i` is `sum_j matrix[i][j] * inputs[j]`.
///
/// Allocates the output fragments; hot paths that own reusable buffers
/// should call [`matrix_apply_into`] instead.
///
/// # Panics
///
/// Panics if `matrix.len() != rows * cols`, if `inputs.len() != cols`, or if
/// the input fragments are not all the same length.
pub fn matrix_apply(matrix: &[u8], rows: usize, cols: usize, inputs: &[&[u8]]) -> Vec<Vec<u8>> {
    let frag_len = inputs.first().map_or(0, |f| f.len());
    let mut outputs = vec![vec![0u8; frag_len]; rows];
    let mut out_refs: Vec<&mut [u8]> = outputs.iter_mut().map(|o| o.as_mut_slice()).collect();
    matrix_apply_into(matrix, rows, cols, inputs, &mut out_refs);
    outputs
}

/// Like [`matrix_apply`], but writes the `rows` output fragments into
/// caller-provided buffers — the allocation-free kernel the decode windows of
/// streamed restores run on. Every output is fully overwritten.
///
/// # Panics
///
/// Panics if `matrix.len() != rows * cols`, if `inputs.len() != cols`, if
/// `outputs.len() != rows`, or if the input and output fragments are not all
/// the same length.
pub fn matrix_apply_into(
    matrix: &[u8],
    rows: usize,
    cols: usize,
    inputs: &[&[u8]],
    outputs: &mut [&mut [u8]],
) {
    assert_eq!(matrix.len(), rows * cols, "matrix shape mismatch");
    assert_eq!(inputs.len(), cols, "input fragment count mismatch");
    assert_eq!(outputs.len(), rows, "output fragment count mismatch");
    let frag_len = inputs
        .first()
        .map_or_else(|| outputs.first().map_or(0, |f| f.len()), |f| f.len());
    assert!(
        inputs.iter().all(|f| f.len() == frag_len),
        "input fragments must have equal length"
    );
    assert!(
        outputs.iter().all(|f| f.len() == frag_len),
        "output fragments must match the input length"
    );
    let backend = Backend::active();
    for (i, out) in outputs.iter_mut().enumerate() {
        // First column overwrites (saving a zeroing pass), the rest
        // accumulate.
        match inputs.first() {
            None => out.fill(0),
            Some(first) => backend.mul_into(out, first, matrix[i * cols]),
        }
        for (j, input) in inputs.iter().enumerate().skip(1) {
            backend.mul_acc(out, input, matrix[i * cols + j]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables;
    use proptest::prelude::*;

    #[test]
    fn xor_into_handles_unaligned_lengths() {
        for len in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000] {
            let a: Vec<u8> = (0..len).map(|i| (i * 7 + 13) as u8).collect();
            let b: Vec<u8> = (0..len).map(|i| (i * 31 + 5) as u8).collect();
            let mut d = a.clone();
            xor_into(&mut d, &b);
            for i in 0..len {
                assert_eq!(d[i], a[i] ^ b[i]);
            }
        }
    }

    #[test]
    fn xor_is_involutive() {
        let a: Vec<u8> = (0..257).map(|i| (i % 251) as u8).collect();
        let b: Vec<u8> = (0..257).map(|i| (i % 241) as u8).collect();
        let once = xor(&a, &b);
        let twice = xor(&once, &b);
        assert_eq!(twice, a);
    }

    #[test]
    fn mul_by_zero_and_one() {
        let src: Vec<u8> = (0..=255).collect();
        assert!(mul(&src, 0).iter().all(|&x| x == 0));
        assert_eq!(mul(&src, 1), src);
    }

    #[test]
    fn mul_into_matches_scalar_mul() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [2u8, 3, 0x1d, 0xff] {
            let out = mul(&src, c);
            for (i, &o) in out.iter().enumerate() {
                assert_eq!(o, tables::mul(src[i], c));
            }
        }
    }

    #[test]
    fn mul_acc_accumulates() {
        let src: Vec<u8> = (0..64).map(|i| i as u8).collect();
        let mut dst = vec![0xaau8; 64];
        let before = dst.clone();
        mul_acc(&mut dst, &src, 5);
        for i in 0..64 {
            assert_eq!(dst[i], before[i] ^ tables::mul(src[i], 5));
        }
    }

    #[test]
    #[should_panic(expected = "region length mismatch")]
    fn length_mismatch_panics() {
        let mut dst = vec![0u8; 4];
        xor_into(&mut dst, &[0u8; 5]);
    }

    #[test]
    fn scalar_backend_is_always_available() {
        let backends = Backend::available();
        assert_eq!(backends[0], Backend::Scalar);
        assert!(backends.contains(&Backend::active()));
    }

    #[test]
    fn every_backend_agrees_with_scalar_on_all_multipliers() {
        // Full multiplier sweep at lengths straddling every vector width,
        // per backend; the out-of-crate differential suite adds alignment
        // and proptest coverage on top.
        let src: Vec<u8> = (0..200u32).map(|i| (i * 37 + 11) as u8).collect();
        for backend in Backend::available() {
            for c in 0..=255u8 {
                for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65, 200] {
                    let mut got = vec![0x5cu8; len];
                    let mut expect = vec![0u8; len];
                    backend.mul_into(&mut got, &src[..len], c);
                    mul_scalar_ref(&mut expect, &src[..len], c, false);
                    assert_eq!(got, expect, "mul_into {} c={c} len={len}", backend.name());

                    let mut got_acc = vec![0x5cu8; len];
                    let mut expect_acc = vec![0x5cu8; len];
                    backend.mul_acc(&mut got_acc, &src[..len], c);
                    mul_scalar_ref(&mut expect_acc, &src[..len], c, true);
                    assert_eq!(
                        got_acc,
                        expect_acc,
                        "mul_acc {} c={c} len={len}",
                        backend.name()
                    );
                }
            }
        }
    }

    /// Independent reference: per-byte table multiply, no region kernels.
    fn mul_scalar_ref(dst: &mut [u8], src: &[u8], c: u8, acc: bool) {
        for (d, &s) in dst.iter_mut().zip(src) {
            let p = tables::mul(s, c);
            if acc {
                *d ^= p;
            } else {
                *d = p;
            }
        }
    }

    #[test]
    fn matrix_apply_identity() {
        // 2x2 identity matrix maps inputs to themselves.
        let m = [1u8, 0, 0, 1];
        let a = vec![1u8, 2, 3, 4];
        let b = vec![5u8, 6, 7, 8];
        let out = matrix_apply(&m, 2, 2, &[&a, &b]);
        assert_eq!(out[0], a);
        assert_eq!(out[1], b);
    }

    #[test]
    fn matrix_apply_small_known_case() {
        // [[1,1],[1,2]] * [a, b] = [a^b, a ^ 2*b]
        let m = [1u8, 1, 1, 2];
        let a = vec![0x10u8, 0x20];
        let b = vec![0x01u8, 0x80];
        let out = matrix_apply(&m, 2, 2, &[&a, &b]);
        assert_eq!(out[0], vec![0x11, 0xa0]);
        assert_eq!(
            out[1],
            vec![0x10 ^ tables::mul(0x01, 2), 0x20 ^ tables::mul(0x80, 2)]
        );
    }

    #[test]
    fn matrix_apply_into_matches_matrix_apply_and_overwrites() {
        let m = [3u8, 7, 0, 1, 2, 9];
        let a: Vec<u8> = (0..33).map(|i| (i * 5 + 1) as u8).collect();
        let b: Vec<u8> = (0..33).map(|i| (i * 11 + 2) as u8).collect();
        let c: Vec<u8> = (0..33).map(|i| (i * 17 + 3) as u8).collect();
        let expected = matrix_apply(&m, 2, 3, &[&a, &b, &c]);
        // Dirty output buffers must be fully overwritten, not accumulated.
        let mut o0 = vec![0xffu8; 33];
        let mut o1 = vec![0xeeu8; 33];
        matrix_apply_into(&m, 2, 3, &[&a, &b, &c], &mut [&mut o0, &mut o1]);
        assert_eq!(o0, expected[0]);
        assert_eq!(o1, expected[1]);
    }

    #[test]
    fn matrix_apply_into_zero_columns_zeroes_outputs() {
        let mut o0 = vec![0xffu8; 4];
        matrix_apply_into(&[], 1, 0, &[], &mut [&mut o0]);
        assert_eq!(o0, vec![0u8; 4]);
    }

    #[test]
    #[should_panic(expected = "output fragment count mismatch")]
    fn matrix_apply_into_wrong_output_count_panics() {
        let a = [1u8, 2];
        matrix_apply_into(&[1u8, 1], 2, 1, &[&a], &mut [&mut [0u8; 2][..]]);
    }

    proptest! {
        #[test]
        fn mul_acc_is_mul_then_xor(src in proptest::collection::vec(any::<u8>(), 0..256),
                                   dst in proptest::collection::vec(any::<u8>(), 0..256),
                                   c: u8) {
            let len = src.len().min(dst.len());
            let src = &src[..len];
            let mut d1 = dst[..len].to_vec();
            mul_acc(&mut d1, src, c);
            let mut d2 = dst[..len].to_vec();
            let prod = mul(src, c);
            xor_into(&mut d2, &prod);
            prop_assert_eq!(d1, d2);
        }

        #[test]
        fn mul_by_constant_is_invertible(src in proptest::collection::vec(any::<u8>(), 0..256),
                                         c in 1u8..=255) {
            let forward = mul(&src, c);
            let inv = tables::inverse(c).unwrap();
            let back = mul(&forward, inv);
            prop_assert_eq!(back, src);
        }

        #[test]
        fn matrix_apply_into_agrees_with_matrix_apply(
            frag_len in 0usize..100,
            rows in 1usize..5,
            cols in 1usize..5,
            seed: u64,
        ) {
            let mut x = seed | 1;
            let mut next = move || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            };
            let matrix: Vec<u8> = (0..rows * cols).map(|_| next()).collect();
            let inputs: Vec<Vec<u8>> = (0..cols)
                .map(|_| (0..frag_len).map(|_| next()).collect())
                .collect();
            let refs: Vec<&[u8]> = inputs.iter().map(|f| f.as_slice()).collect();
            let expected = matrix_apply(&matrix, rows, cols, &refs);
            let mut outputs: Vec<Vec<u8>> = (0..rows)
                .map(|_| (0..frag_len).map(|_| next()).collect())
                .collect();
            let mut out_refs: Vec<&mut [u8]> =
                outputs.iter_mut().map(|o| o.as_mut_slice()).collect();
            matrix_apply_into(&matrix, rows, cols, &refs, &mut out_refs);
            prop_assert_eq!(outputs, expected);
        }
    }
}
