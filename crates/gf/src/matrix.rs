//! Dense matrices over GF(2^8) with Gaussian-elimination inversion.
//!
//! Reed-Solomon coding and IDA both build an `n x k` dispersal matrix whose
//! every `k x k` submatrix is invertible; decoding inverts the submatrix
//! formed by the surviving rows. This module provides the small dense-matrix
//! toolkit those operations need.

use core::fmt;

use crate::field::Gf256;

/// Errors returned by matrix operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixError {
    /// The matrix is not square where a square matrix is required.
    NotSquare,
    /// The matrix (or the selected submatrix) is singular.
    Singular,
    /// Operand dimensions are incompatible.
    DimensionMismatch,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::NotSquare => write!(f, "matrix is not square"),
            MatrixError::Singular => write!(f, "matrix is singular"),
            MatrixError::DimensionMismatch => write!(f, "matrix dimension mismatch"),
        }
    }
}

impl std::error::Error for MatrixError {}

/// A dense row-major matrix over GF(2^8).
#[derive(Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:02x} ", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Creates a zero matrix of the given shape.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0u8; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    /// Creates a matrix from a row-major byte vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<u8>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data length mismatch");
        Matrix { rows, cols, data }
    }

    /// Creates a Vandermonde matrix where entry `(i, j) = (i+1)^j` over
    /// GF(2^8). Every square submatrix formed from distinct rows of a
    /// Vandermonde matrix with distinct evaluation points is invertible.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            let x = Gf256::new((i + 1) as u8);
            for j in 0..cols {
                m.set(i, j, x.pow(j as u32).value());
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> u8 {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: u8) {
        assert!(
            row < self.rows && col < self.cols,
            "matrix index out of bounds"
        );
        self.data[row * self.cols + col] = value;
    }

    /// Returns a view of one row.
    pub fn row(&self, row: usize) -> &[u8] {
        assert!(row < self.rows, "matrix row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Returns the underlying row-major data.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Builds a new matrix from the selected rows of this matrix.
    ///
    /// # Panics
    ///
    /// Panics if any row index is out of bounds.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut m = Matrix::zero(rows.len(), self.cols);
        for (i, &r) in rows.iter().enumerate() {
            assert!(r < self.rows, "matrix row out of bounds");
            m.data[i * self.cols..(i + 1) * self.cols]
                .copy_from_slice(&self.data[r * self.cols..(r + 1) * self.cols]);
        }
        m
    }

    /// Matrix multiplication over GF(2^8).
    pub fn multiply(&self, other: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != other.rows {
            return Err(MatrixError::DimensionMismatch);
        }
        let mut out = Matrix::zero(self.rows, other.cols);
        for i in 0..self.rows {
            for l in 0..self.cols {
                let a = Gf256::new(self.get(i, l));
                if a.is_zero() {
                    continue;
                }
                for j in 0..other.cols {
                    let cur = Gf256::new(out.get(i, j));
                    let add = a * Gf256::new(other.get(l, j));
                    out.set(i, j, (cur + add).value());
                }
            }
        }
        Ok(out)
    }

    /// Inverts a square matrix by Gauss-Jordan elimination.
    pub fn invert(&self) -> Result<Matrix, MatrixError> {
        if self.rows != self.cols {
            return Err(MatrixError::NotSquare);
        }
        let n = self.rows;
        let mut work = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find a pivot row.
            let pivot = (col..n)
                .find(|&r| work.get(r, col) != 0)
                .ok_or(MatrixError::Singular)?;
            if pivot != col {
                work.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Normalise the pivot row.
            let p = Gf256::new(work.get(col, col));
            let p_inv = p.inverse().ok_or(MatrixError::Singular)?;
            work.scale_row(col, p_inv);
            inv.scale_row(col, p_inv);
            // Eliminate the column from all other rows.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = Gf256::new(work.get(r, col));
                if factor.is_zero() {
                    continue;
                }
                work.add_scaled_row(r, col, factor);
                inv.add_scaled_row(r, col, factor);
            }
        }
        Ok(inv)
    }

    /// Converts the first `k x k` block into the identity by elementary row
    /// operations applied to the whole matrix, producing a *systematic*
    /// dispersal matrix (the first `k` rows pass data through unchanged).
    ///
    /// Returns an error if the leading `k x k` block is singular.
    pub fn systematize(&self, k: usize) -> Result<Matrix, MatrixError> {
        if k > self.rows || k != self.cols {
            return Err(MatrixError::DimensionMismatch);
        }
        let top = self.select_rows(&(0..k).collect::<Vec<_>>());
        let top_inv = top.invert()?;
        // Right-multiplying by the inverse of the top block makes the top
        // block the identity while preserving the MDS property.
        self.multiply(&top_inv)
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    fn scale_row(&mut self, row: usize, factor: Gf256) {
        for c in 0..self.cols {
            let v = Gf256::new(self.get(row, c)) * factor;
            self.set(row, c, v.value());
        }
    }

    /// `row_dst ^= factor * row_src`.
    fn add_scaled_row(&mut self, dst: usize, src: usize, factor: Gf256) {
        for c in 0..self.cols {
            let add = Gf256::new(self.get(src, c)) * factor;
            let cur = Gf256::new(self.get(dst, c));
            self.set(dst, c, (cur + add).value());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identity_is_multiplicative_identity() {
        let m = Matrix::vandermonde(3, 3);
        let id = Matrix::identity(3);
        assert_eq!(m.multiply(&id).unwrap(), m);
        assert_eq!(id.multiply(&m).unwrap(), m);
    }

    #[test]
    fn vandermonde_square_is_invertible() {
        for n in 1..=8 {
            let m = Matrix::vandermonde(n, n);
            let inv = m.invert().expect("vandermonde must be invertible");
            assert_eq!(m.multiply(&inv).unwrap(), Matrix::identity(n));
            assert_eq!(inv.multiply(&m).unwrap(), Matrix::identity(n));
        }
    }

    #[test]
    fn singular_matrix_is_rejected() {
        // Two identical rows.
        let m = Matrix::from_vec(2, 2, vec![1, 2, 1, 2]);
        assert_eq!(m.invert().unwrap_err(), MatrixError::Singular);
    }

    #[test]
    fn non_square_inversion_is_rejected() {
        let m = Matrix::zero(2, 3);
        assert_eq!(m.invert().unwrap_err(), MatrixError::NotSquare);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        assert_eq!(a.multiply(&b).unwrap_err(), MatrixError::DimensionMismatch);
    }

    #[test]
    fn systematized_vandermonde_has_identity_prefix() {
        let (n, k) = (6usize, 4usize);
        let m = Matrix::vandermonde(n, k).systematize(k).unwrap();
        for i in 0..k {
            for j in 0..k {
                let expected = if i == j { 1 } else { 0 };
                assert_eq!(m.get(i, j), expected, "({i},{j})");
            }
        }
        // Every k x k submatrix must remain invertible (MDS property) —
        // exhaustively check all row subsets for this small case.
        let rows: Vec<usize> = (0..n).collect();
        fn subsets(rows: &[usize], k: usize) -> Vec<Vec<usize>> {
            if k == 0 {
                return vec![vec![]];
            }
            if rows.len() < k {
                return vec![];
            }
            let mut out = Vec::new();
            for (i, &r) in rows.iter().enumerate() {
                for mut rest in subsets(&rows[i + 1..], k - 1) {
                    let mut s = vec![r];
                    s.append(&mut rest);
                    out.push(s);
                }
            }
            out
        }
        for subset in subsets(&rows, k) {
            let sub = m.select_rows(&subset);
            assert!(sub.invert().is_ok(), "subset {subset:?} must be invertible");
        }
    }

    #[test]
    fn select_rows_picks_expected_rows() {
        let m = Matrix::vandermonde(5, 3);
        let sel = m.select_rows(&[4, 0]);
        assert_eq!(sel.row(0), m.row(4));
        assert_eq!(sel.row(1), m.row(0));
    }

    proptest! {
        #[test]
        fn random_invertible_matrices_round_trip(seed: u64, n in 1usize..7) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            // Rejection-sample an invertible matrix.
            let mut found = None;
            for _ in 0..32 {
                let data: Vec<u8> = (0..n * n).map(|_| rng.gen()).collect();
                let m = Matrix::from_vec(n, n, data);
                if let Ok(inv) = m.invert() {
                    found = Some((m, inv));
                    break;
                }
            }
            prop_assume!(found.is_some());
            let (m, inv) = found.unwrap();
            prop_assert_eq!(m.multiply(&inv).unwrap(), Matrix::identity(n));
        }

        #[test]
        fn matrix_multiplication_is_associative(seed: u64, n in 1usize..5) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let rand_m = |rng: &mut rand::rngs::StdRng| {
                Matrix::from_vec(n, n, (0..n * n).map(|_| rng.gen()).collect())
            };
            let a = rand_m(&mut rng);
            let b = rand_m(&mut rng);
            let c = rand_m(&mut rng);
            let left = a.multiply(&b).unwrap().multiply(&c).unwrap();
            let right = a.multiply(&b.multiply(&c).unwrap()).unwrap();
            prop_assert_eq!(left, right);
        }
    }
}
