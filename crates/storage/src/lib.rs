//! Container management and storage backends for CDStore servers (§4.5).
//!
//! Each CDStore server packs globally unique shares into *share containers*
//! and file recipes into *recipe containers*, capped at 4 MB, and writes the
//! sealed containers to the cloud storage backend. Reads go through an LRU
//! container cache to limit backend I/O.
//!
//! * [`container`] — the container format and per-user open-container builders.
//! * [`backend`] — the storage-backend abstraction with in-memory and
//!   directory-based implementations.
//! * [`cache`] — a byte-bounded LRU cache of recently accessed containers.
//! * [`store`] — [`ContainerStore`], which ties the three together and is the
//!   component CDStore servers use to persist and fetch shares and recipes.
//! * [`journal`] — the durable metadata journal: a checksummed write-ahead
//!   log plus periodic checkpoints, persisted through the same backend, from
//!   which a server rebuilds its in-memory indices after a crash.
//! * [`fault`] — deterministic fault injection: a seeded, replayable
//!   [`FaultPlan`] and the [`FaultyBackend`] decorator the chaos harness and
//!   the cloud simulator share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod container;
pub mod fault;
pub mod journal;
pub mod store;

pub use backend::{DirBackend, MemoryBackend, StorageBackend, StorageError};
pub use cache::LruCache;
pub use container::{Container, ContainerBuilder, ContainerKind, CONTAINER_CAPACITY};
pub use fault::{
    FaultConfig, FaultEvent, FaultKind, FaultPlan, FaultyBackend, Shaping, SlowWindow, Window,
};
pub use journal::{Journal, LoadedJournal};
pub use store::{ContainerStore, ContainerUsage, ShareLocation, StoreStats, StoreUtilisation};
