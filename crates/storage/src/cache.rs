//! A byte-bounded least-recently-used (LRU) cache.
//!
//! CDStore servers "maintain a least-recently-used (LRU) disk cache to hold
//! the most recently accessed containers to reduce I/Os to the storage
//! backend" (§4.5). The same structure is reused for the block cache of the
//! disk-resident index store (see `cdstore_index`), which is why eviction
//! must not scan: a churning block cache evicts on almost every fill.
//!
//! Recency is tracked by a monotonically increasing tick. Each entry stores
//! its last-use tick, and a `BTreeMap` from tick to key mirrors the entries
//! in recency order, so the least-recently-used victim is the first tick in
//! the map — `O(log n)` per eviction instead of a full scan.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// An LRU cache bounded by the total byte size of its values.
pub struct LruCache<K, V> {
    capacity_bytes: usize,
    current_bytes: usize,
    peak_bytes: usize,
    /// key → (value, size, last-use tick)
    entries: HashMap<K, (V, usize, u64)>,
    /// last-use tick → key, mirroring `entries`; the first entry is the LRU
    /// victim. Ticks are unique (every touch consumes a fresh one), so this
    /// is a faithful recency ordering, not an approximation.
    recency: BTreeMap<u64, K>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity_bytes` of values.
    pub fn new(capacity_bytes: usize) -> Self {
        LruCache {
            capacity_bytes,
            current_bytes: 0,
            peak_bytes: 0,
            entries: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes currently cached.
    pub fn current_bytes(&self) -> usize {
        self.current_bytes
    }

    /// Largest value `current_bytes` ever reached. Never exceeds the
    /// capacity, which makes it a resident-memory proxy for callers using
    /// the cache as their only unbounded buffer (e.g. the index block
    /// cache).
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    /// The configured byte capacity.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hit ratio in `[0, 1]` (zero when no lookups happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some((value, _, last_use)) => {
                self.recency.remove(last_use);
                self.recency.insert(tick, key.clone());
                *last_use = tick;
                self.hits += 1;
                Some(&*value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether a key is cached (does not count as a hit or refresh recency).
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Inserts a value of the given byte size, evicting least-recently-used
    /// entries as needed. Values larger than the whole capacity are not
    /// cached at all.
    pub fn put(&mut self, key: K, value: V, size: usize) {
        if size > self.capacity_bytes {
            return;
        }
        self.tick += 1;
        if let Some((_, old_size, old_tick)) = self.entries.remove(&key) {
            self.current_bytes -= old_size;
            self.recency.remove(&old_tick);
        }
        while self.current_bytes + size > self.capacity_bytes {
            let Some((_, victim)) = self.recency.pop_first() else {
                break;
            };
            if let Some((_, victim_size, _)) = self.entries.remove(&victim) {
                self.current_bytes -= victim_size;
                self.evictions += 1;
            }
        }
        self.current_bytes += size;
        self.peak_bytes = self.peak_bytes.max(self.current_bytes);
        self.recency.insert(self.tick, key.clone());
        self.entries.insert(key, (value, size, self.tick));
    }

    /// Removes a key from the cache.
    pub fn remove(&mut self, key: &K) {
        if let Some((_, size, tick)) = self.entries.remove(key) {
            self.current_bytes -= size;
            self.recency.remove(&tick);
        }
    }

    /// Keeps only the entries whose key satisfies the predicate (used e.g.
    /// to drop blocks of index runs deleted by compaction).
    pub fn retain(&mut self, mut keep: impl FnMut(&K) -> bool) {
        let mut freed = 0usize;
        self.entries.retain(|key, (_, size, tick)| {
            if keep(key) {
                true
            } else {
                freed += *size;
                self.recency.remove(tick);
                false
            }
        });
        self.current_bytes -= freed;
    }

    /// Clears the cache (statistics are preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.recency.clear();
        self.current_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_get_put() {
        let mut cache: LruCache<u32, Vec<u8>> = LruCache::new(100);
        assert!(cache.get(&1).is_none());
        cache.put(1, vec![1; 10], 10);
        assert_eq!(cache.get(&1).map(|v| v.len()), Some(10));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut cache: LruCache<&str, u8> = LruCache::new(30);
        cache.put("a", 1, 10);
        cache.put("b", 2, 10);
        cache.put("c", 3, 10);
        // Touch "a" so "b" becomes the LRU entry.
        assert!(cache.get(&"a").is_some());
        cache.put("d", 4, 10);
        assert!(cache.contains(&"a"));
        assert!(!cache.contains(&"b"));
        assert!(cache.contains(&"c"));
        assert!(cache.contains(&"d"));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn respects_byte_budget_not_entry_count() {
        let mut cache: LruCache<u32, ()> = LruCache::new(100);
        cache.put(1, (), 60);
        cache.put(2, (), 60);
        // Entry 1 must have been evicted to fit entry 2.
        assert!(!cache.contains(&1));
        assert!(cache.contains(&2));
        assert_eq!(cache.current_bytes(), 60);
    }

    #[test]
    fn oversized_values_are_not_cached() {
        let mut cache: LruCache<u32, ()> = LruCache::new(100);
        cache.put(1, (), 1000);
        assert!(cache.is_empty());
    }

    #[test]
    fn overwriting_updates_size_accounting() {
        let mut cache: LruCache<u32, ()> = LruCache::new(100);
        cache.put(1, (), 80);
        cache.put(1, (), 10);
        assert_eq!(cache.current_bytes(), 10);
        cache.put(2, (), 90);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn remove_and_clear() {
        let mut cache: LruCache<u32, ()> = LruCache::new(100);
        cache.put(1, (), 10);
        cache.put(2, (), 10);
        cache.remove(&1);
        assert_eq!(cache.current_bytes(), 10);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.current_bytes(), 0);
    }

    #[test]
    fn peak_bytes_tracks_high_water_mark() {
        let mut cache: LruCache<u32, ()> = LruCache::new(100);
        cache.put(1, (), 40);
        cache.put(2, (), 50);
        assert_eq!(cache.peak_bytes(), 90);
        cache.remove(&1);
        cache.remove(&2);
        assert_eq!(cache.current_bytes(), 0);
        // The peak is sticky and never exceeds capacity.
        assert_eq!(cache.peak_bytes(), 90);
        cache.put(3, (), 100);
        assert_eq!(cache.peak_bytes(), 100);
        assert_eq!(cache.capacity_bytes(), 100);
    }

    #[test]
    fn retain_drops_matching_entries_and_accounting() {
        let mut cache: LruCache<(u64, u32), ()> = LruCache::new(100);
        cache.put((1, 0), (), 10);
        cache.put((1, 1), (), 10);
        cache.put((2, 0), (), 10);
        cache.retain(|&(run, _)| run != 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.current_bytes(), 10);
        assert!(cache.contains(&(2, 0)));
        // The recency index must stay consistent: filling the cache now
        // evicts only live entries.
        for i in 0..9 {
            cache.put((3, i), (), 10);
        }
        assert_eq!(cache.current_bytes(), 100);
        cache.put((4, 0), (), 10);
        assert!(!cache.contains(&(2, 0)));
        assert_eq!(cache.current_bytes(), 100);
    }

    /// Interleaved churn at a size where the old O(n²) eviction scan took
    /// minutes: 60k resident entries, 200k inserts, each insert evicting.
    /// With the tick-ordered recency index this completes in well under a
    /// second even in debug builds; the test is a timing canary rather than
    /// a strict asymptotic proof.
    #[test]
    fn eviction_cost_does_not_scale_with_resident_entries() {
        const ENTRY: usize = 1;
        const RESIDENT: usize = 60_000;
        const INSERTS: usize = 200_000;
        let mut cache: LruCache<u64, ()> = LruCache::new(RESIDENT * ENTRY);
        let start = std::time::Instant::now();
        for i in 0..INSERTS as u64 {
            cache.put(i, (), ENTRY);
        }
        let elapsed = start.elapsed();
        assert_eq!(cache.len(), RESIDENT);
        assert_eq!(cache.evictions(), (INSERTS - RESIDENT) as u64);
        // Generous bound: the quadratic implementation needs > 100s here.
        assert!(
            elapsed < std::time::Duration::from_secs(20),
            "LRU churn took {elapsed:?}; eviction is scaling with resident entries"
        );
        // The survivors must be exactly the most recent RESIDENT keys.
        assert!(cache.contains(&((INSERTS - 1) as u64)));
        assert!(!cache.contains(&((INSERTS - RESIDENT - 1) as u64)));
    }
}
