//! A byte-bounded least-recently-used (LRU) cache.
//!
//! CDStore servers "maintain a least-recently-used (LRU) disk cache to hold
//! the most recently accessed containers to reduce I/Os to the storage
//! backend" (§4.5). The same structure is reused for the block cache of the
//! index store.

use std::collections::HashMap;
use std::hash::Hash;

/// An LRU cache bounded by the total byte size of its values.
pub struct LruCache<K, V> {
    capacity_bytes: usize,
    current_bytes: usize,
    /// key → (value, size, last-use tick)
    entries: HashMap<K, (V, usize, u64)>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity_bytes` of values.
    pub fn new(capacity_bytes: usize) -> Self {
        LruCache {
            capacity_bytes,
            current_bytes: 0,
            entries: HashMap::new(),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes currently cached.
    pub fn current_bytes(&self) -> usize {
        self.current_bytes
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Hit ratio in `[0, 1]` (zero when no lookups happened).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(key) {
            Some((value, _, last_use)) => {
                *last_use = tick;
                self.hits += 1;
                Some(&*value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Whether a key is cached (does not count as a hit or refresh recency).
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Inserts a value of the given byte size, evicting least-recently-used
    /// entries as needed. Values larger than the whole capacity are not
    /// cached at all.
    pub fn put(&mut self, key: K, value: V, size: usize) {
        if size > self.capacity_bytes {
            return;
        }
        self.tick += 1;
        if let Some((_, old_size, _)) = self.entries.remove(&key) {
            self.current_bytes -= old_size;
        }
        while self.current_bytes + size > self.capacity_bytes {
            let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, _, last_use))| *last_use)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some((_, victim_size, _)) = self.entries.remove(&victim) {
                self.current_bytes -= victim_size;
                self.evictions += 1;
            }
        }
        self.current_bytes += size;
        self.entries.insert(key, (value, size, self.tick));
    }

    /// Removes a key from the cache.
    pub fn remove(&mut self, key: &K) {
        if let Some((_, size, _)) = self.entries.remove(key) {
            self.current_bytes -= size;
        }
    }

    /// Clears the cache (statistics are preserved).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.current_bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_get_put() {
        let mut cache: LruCache<u32, Vec<u8>> = LruCache::new(100);
        assert!(cache.get(&1).is_none());
        cache.put(1, vec![1; 10], 10);
        assert_eq!(cache.get(&1).map(|v| v.len()), Some(10));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut cache: LruCache<&str, u8> = LruCache::new(30);
        cache.put("a", 1, 10);
        cache.put("b", 2, 10);
        cache.put("c", 3, 10);
        // Touch "a" so "b" becomes the LRU entry.
        assert!(cache.get(&"a").is_some());
        cache.put("d", 4, 10);
        assert!(cache.contains(&"a"));
        assert!(!cache.contains(&"b"));
        assert!(cache.contains(&"c"));
        assert!(cache.contains(&"d"));
        assert_eq!(cache.evictions(), 1);
    }

    #[test]
    fn respects_byte_budget_not_entry_count() {
        let mut cache: LruCache<u32, ()> = LruCache::new(100);
        cache.put(1, (), 60);
        cache.put(2, (), 60);
        // Entry 1 must have been evicted to fit entry 2.
        assert!(!cache.contains(&1));
        assert!(cache.contains(&2));
        assert_eq!(cache.current_bytes(), 60);
    }

    #[test]
    fn oversized_values_are_not_cached() {
        let mut cache: LruCache<u32, ()> = LruCache::new(100);
        cache.put(1, (), 1000);
        assert!(cache.is_empty());
    }

    #[test]
    fn overwriting_updates_size_accounting() {
        let mut cache: LruCache<u32, ()> = LruCache::new(100);
        cache.put(1, (), 80);
        cache.put(1, (), 10);
        assert_eq!(cache.current_bytes(), 10);
        cache.put(2, (), 90);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn remove_and_clear() {
        let mut cache: LruCache<u32, ()> = LruCache::new(100);
        cache.put(1, (), 10);
        cache.put(2, (), 10);
        cache.remove(&1);
        assert_eq!(cache.current_bytes(), 10);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.current_bytes(), 0);
    }
}
