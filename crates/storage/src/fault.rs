//! Deterministic fault injection for storage backends.
//!
//! CDStore's value proposition is surviving cloud misbehaviour, so the test
//! battery must exercise *hostile* backends, not just loopback happy paths.
//! This module provides the one fault model shared by the whole workspace:
//!
//! * [`FaultPlan`] — a seeded, replayable schedule of faults. Every decision
//!   (inject or pass through, where to tear a write, how long to stall) is a
//!   pure function of `(seed, operation tick)`, so two runs issuing the same
//!   operation sequence observe byte-identical fault schedules — the property
//!   the chaos suite's determinism test pins down, and what makes a CI
//!   failure replayable locally from its logged schedule.
//! * [`FaultyBackend`] — a [`StorageBackend`] decorator applying a plan to
//!   any inner backend: transient typed-`Io` failures, torn `put`s/`append`s
//!   (a byte-prefix lands, then the call fails — exactly the crash shape the
//!   journal/run/container formats must detect), full-outage windows,
//!   slow-then-recover windows, and per-operation latency/bandwidth shaping
//!   (driven by the Table 2 cloud profiles via
//!   `cdstore_cloudsim::CloudProfile::shaping`).
//!
//! `cdstore_cloudsim::SimCloud` routes its WAN transfers through the same
//! plan type, so the simulator and the chaos harness cannot drift apart.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::backend::{StorageBackend, StorageError};

/// Bandwidth/latency shaping applied to every operation, mirroring the
/// fields of `cdstore_cloudsim::CloudProfile` (that crate sits above this
/// one, so the conversion lives there as `CloudProfile::shaping`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Shaping {
    /// Per-request round-trip latency in milliseconds.
    pub latency_ms: f64,
    /// Write (client → cloud) bandwidth in MB/s.
    pub upload_mbps: f64,
    /// Read (cloud → client) bandwidth in MB/s.
    pub download_mbps: f64,
}

impl Shaping {
    /// Simulated seconds one operation of `bytes` payload takes.
    fn delay_seconds(&self, bytes: u64, write: bool) -> f64 {
        let mbps = if write {
            self.upload_mbps
        } else {
            self.download_mbps
        };
        let mb = bytes as f64 / (1024.0 * 1024.0);
        self.latency_ms / 1000.0 + if mbps > 0.0 { mb / mbps } else { 0.0 }
    }
}

/// A half-open window `[start, end)` of operation ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// First tick inside the window.
    pub start: u64,
    /// First tick past the window.
    pub end: u64,
}

impl Window {
    /// Creates a window covering ticks `start..end`.
    pub fn new(start: u64, end: u64) -> Self {
        Window { start, end }
    }

    fn contains(&self, tick: u64) -> bool {
        (self.start..self.end).contains(&tick)
    }
}

/// A degraded (but not dead) period: operation delays inside the window are
/// multiplied by `factor` — the "slow, then recover" cloud behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowWindow {
    /// The tick window the slowdown covers.
    pub window: Window,
    /// Delay multiplier (applied to the shaped delay, or to a 1 ms baseline
    /// when the plan has no shaping configured).
    pub factor: f64,
}

/// Configuration of one [`FaultPlan`]. The default is a *clean* plan: no
/// errors, no tearing, no outages, no shaping — a `FaultyBackend` over it is
/// a transparent pass-through.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed every per-operation decision derives from.
    pub seed: u64,
    /// Probability (0.0–1.0) that an operation fails with a transient
    /// [`StorageError::Io`] before touching the inner backend.
    pub error_rate: f64,
    /// Probability (0.0–1.0) that a `put`/`append` writes only a byte-prefix
    /// of its payload and then fails — the torn-write crash shape.
    pub torn_write_rate: f64,
    /// Latency/bandwidth shaping applied to every operation (none by
    /// default). Use `CloudProfile::shaping` for the paper's Table 2 clouds.
    pub shaping: Option<Shaping>,
    /// Divide every injected delay by this factor, so tests can run Table 2
    /// bandwidths in compressed time (e.g. `1000.0` → milliseconds become
    /// microseconds). Must be positive.
    pub time_scale: f64,
    /// Full-outage windows: every operation whose tick falls inside fails.
    pub outages: Vec<Window>,
    /// Slowdown windows: delays inside are multiplied by the window factor.
    pub slow_windows: Vec<SlowWindow>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            error_rate: 0.0,
            torn_write_rate: 0.0,
            shaping: None,
            time_scale: 1.0,
            outages: Vec::new(),
            slow_windows: Vec::new(),
        }
    }
}

impl FaultConfig {
    /// A clean plan with the given seed (no faults until configured).
    pub fn clean(seed: u64) -> Self {
        FaultConfig {
            seed,
            ..Default::default()
        }
    }

    /// Sets the transient error probability.
    pub fn with_error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate;
        self
    }

    /// Sets the torn-write probability.
    pub fn with_torn_write_rate(mut self, rate: f64) -> Self {
        self.torn_write_rate = rate;
        self
    }

    /// Sets latency/bandwidth shaping.
    pub fn with_shaping(mut self, shaping: Shaping) -> Self {
        self.shaping = Some(shaping);
        self
    }

    /// Sets the time-compression factor for injected delays.
    pub fn with_time_scale(mut self, scale: f64) -> Self {
        self.time_scale = scale;
        self
    }

    /// Adds a full-outage tick window.
    pub fn with_outage(mut self, window: Window) -> Self {
        self.outages.push(window);
        self
    }

    /// Adds a slow-then-recover tick window.
    pub fn with_slow_window(mut self, window: Window, factor: f64) -> Self {
        self.slow_windows.push(SlowWindow { window, factor });
        self
    }
}

/// What a fault did to one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation failed with an injected transient I/O error.
    Transient,
    /// A write landed only a byte-prefix before failing.
    TornWrite {
        /// Bytes that reached the inner backend.
        written: usize,
        /// Bytes the caller asked to write.
        requested: usize,
    },
    /// The operation fell inside a scheduled outage window.
    Outage,
    /// The operation was rejected by a harness-forced outage
    /// ([`FaultPlan::set_outage`]).
    ForcedOutage,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Transient => write!(f, "transient"),
            FaultKind::TornWrite { written, requested } => {
                write!(f, "torn-write {written}/{requested}")
            }
            FaultKind::Outage => write!(f, "outage"),
            FaultKind::ForcedOutage => write!(f, "forced-outage"),
        }
    }
}

/// One injected fault, as recorded in the plan's schedule log.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// The operation tick the fault hit.
    pub tick: u64,
    /// The backend operation ("put", "get", "append", ...).
    pub op: &'static str,
    /// The object key the operation addressed.
    pub key: String,
    /// What was injected.
    pub kind: FaultKind,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tick={} op={} key={} fault={}",
            self.tick, self.op, self.key, self.kind
        )
    }
}

/// Cap on retained schedule events so a long churn run cannot grow the log
/// without bound; [`FaultPlan::events_dropped`] counts the overflow.
const MAX_LOGGED_EVENTS: usize = 100_000;

/// A seeded, replayable fault schedule shared by every operation of one
/// backend (or one simulated cloud).
///
/// The plan is driven by a global operation counter (the *tick*): every
/// backend call consumes one tick, and all fault decisions derive from
/// `splitmix64(seed, tick)`. A single-threaded workload therefore observes
/// exactly the same faults on every run — and the recorded schedule
/// ([`FaultPlan::schedule`] / [`FaultPlan::render_schedule`]) is all that is
/// needed to reproduce a CI failure locally.
pub struct FaultPlan {
    config: FaultConfig,
    tick: AtomicU64,
    forced_outage: AtomicBool,
    log: Mutex<Vec<FaultEvent>>,
    dropped: AtomicU64,
}

/// One round of splitmix64: a high-quality 64-bit mix of the input.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Maps a 64-bit draw onto `[0, 1)`.
fn unit(draw: u64) -> f64 {
    (draw >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// Creates a plan from its configuration.
    pub fn new(config: FaultConfig) -> Self {
        assert!(config.time_scale > 0.0, "time_scale must be positive");
        FaultPlan {
            config,
            tick: AtomicU64::new(0),
            forced_outage: AtomicBool::new(false),
            log: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// A clean pass-through plan (useful as the default inside `SimCloud`).
    pub fn clean(seed: u64) -> Self {
        Self::new(FaultConfig::clean(seed))
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Operations observed so far.
    pub fn ticks(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// Forces (or lifts) a full outage regardless of tick windows — the
    /// harness's lever for timed outages and "kill this cloud now" moments.
    pub fn set_outage(&self, outage: bool) {
        self.forced_outage.store(outage, Ordering::SeqCst);
    }

    /// Whether the plan currently rejects every operation: a forced outage,
    /// or the *next* tick falling inside a scheduled outage window.
    pub fn outage_active(&self) -> bool {
        self.forced_outage.load(Ordering::SeqCst)
            || self
                .config
                .outages
                .iter()
                .any(|w| w.contains(self.tick.load(Ordering::Relaxed)))
    }

    /// The injected faults recorded so far, in injection order.
    pub fn schedule(&self) -> Vec<FaultEvent> {
        self.log.lock().clone()
    }

    /// Events discarded after the log cap was reached.
    pub fn events_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Renders the schedule as one event per line, preceded by a header that
    /// names the seed — the artifact CI uploads on a chaos failure, and the
    /// input to "replay this locally" (see `docs/chaos.md`).
    pub fn render_schedule(&self) -> String {
        let log = self.log.lock();
        let mut out = String::with_capacity(64 + log.len() * 48);
        out.push_str(&format!(
            "# fault schedule: seed={} ticks={} events={} dropped={}\n",
            self.config.seed,
            self.ticks(),
            log.len(),
            self.events_dropped(),
        ));
        for event in log.iter() {
            out.push_str(&format!("{event}\n"));
        }
        out
    }

    fn record(&self, event: FaultEvent) {
        let mut log = self.log.lock();
        if log.len() < MAX_LOGGED_EVENTS {
            log.push(event);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn draw(&self, tick: u64, salt: u64) -> u64 {
        splitmix64(
            self.config
                .seed
                .wrapping_mul(0x2545_f491_4f6c_dd1d)
                .wrapping_add(splitmix64(tick))
                .wrapping_add(salt.wrapping_mul(0xd6e8_feb8_6659_fd93)),
        )
    }

    fn injected(key: &str) -> StorageError {
        StorageError::Io(std::io::Error::other(format!("injected fault on {key}")))
    }

    /// Runs the fault decision for one operation: consumes a tick, possibly
    /// fails, possibly stalls. On the torn-write path, `tear` receives the
    /// prefix length to land before the failure. Returns `Ok(())` when the
    /// operation should proceed against the inner backend.
    fn gate(
        &self,
        op: &'static str,
        key: &str,
        bytes: u64,
        write: bool,
        tear: Option<&mut dyn FnMut(usize) -> Result<(), StorageError>>,
    ) -> Result<(), StorageError> {
        let tick = self.tick.fetch_add(1, Ordering::SeqCst);
        if self.forced_outage.load(Ordering::SeqCst) {
            self.record(FaultEvent {
                tick,
                op,
                key: key.to_string(),
                kind: FaultKind::ForcedOutage,
            });
            return Err(Self::injected(key));
        }
        if self.config.outages.iter().any(|w| w.contains(tick)) {
            self.record(FaultEvent {
                tick,
                op,
                key: key.to_string(),
                kind: FaultKind::Outage,
            });
            return Err(Self::injected(key));
        }
        if self.config.error_rate > 0.0 && unit(self.draw(tick, 1)) < self.config.error_rate {
            self.record(FaultEvent {
                tick,
                op,
                key: key.to_string(),
                kind: FaultKind::Transient,
            });
            return Err(Self::injected(key));
        }
        if let Some(tear) = tear {
            if self.config.torn_write_rate > 0.0
                && bytes > 0
                && unit(self.draw(tick, 2)) < self.config.torn_write_rate
            {
                // Land a strict prefix, then fail — the crash shape every
                // CRC-framed on-backend format must detect and discard.
                let cut = (self.draw(tick, 3) % bytes) as usize;
                tear(cut)?;
                self.record(FaultEvent {
                    tick,
                    op,
                    key: key.to_string(),
                    kind: FaultKind::TornWrite {
                        written: cut,
                        requested: bytes as usize,
                    },
                });
                return Err(Self::injected(key));
            }
        }
        // Delay shaping last: failed operations return promptly (a dead
        // cloud answers with connection-refused, not a slow transfer).
        let mut delay = match &self.config.shaping {
            Some(shaping) => shaping.delay_seconds(bytes, write),
            None => 0.0,
        };
        for slow in &self.config.slow_windows {
            if slow.window.contains(tick) {
                // With no shaping configured, a slowdown still stalls the
                // operation: scale a 1 ms baseline instead of zero.
                delay = (delay.max(0.001)) * slow.factor;
            }
        }
        if delay > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(
                (delay / self.config.time_scale).min(5.0),
            ));
        }
        Ok(())
    }
}

/// A [`StorageBackend`] decorator injecting the faults of a [`FaultPlan`]
/// into every operation against the wrapped backend.
pub struct FaultyBackend {
    inner: Arc<dyn StorageBackend>,
    plan: Arc<FaultPlan>,
}

impl FaultyBackend {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: Arc<dyn StorageBackend>, plan: Arc<FaultPlan>) -> Self {
        FaultyBackend { inner, plan }
    }

    /// The fault plan driving this backend.
    pub fn plan(&self) -> Arc<FaultPlan> {
        self.plan.clone()
    }

    /// The wrapped backend (faults bypassed — what a co-located process or a
    /// state-inspection assertion reads).
    pub fn inner(&self) -> Arc<dyn StorageBackend> {
        self.inner.clone()
    }
}

impl StorageBackend for FaultyBackend {
    fn put(&self, key: &str, data: &[u8]) -> Result<(), StorageError> {
        let mut tear = |cut: usize| self.inner.put(key, &data[..cut]);
        self.plan
            .gate("put", key, data.len() as u64, true, Some(&mut tear))?;
        self.inner.put(key, data)
    }

    fn get(&self, key: &str) -> Result<Vec<u8>, StorageError> {
        let len = self.inner.object_size(key).unwrap_or(0);
        self.plan.gate("get", key, len, false, None)?;
        self.inner.get(key)
    }

    fn delete(&self, key: &str) -> Result<(), StorageError> {
        self.plan.gate("delete", key, 0, true, None)?;
        self.inner.delete(key)
    }

    fn exists(&self, key: &str) -> Result<bool, StorageError> {
        self.plan.gate("exists", key, 0, false, None)?;
        self.inner.exists(key)
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        self.plan.gate("list", "*", 0, false, None)?;
        self.inner.list()
    }

    fn append(&self, key: &str, data: &[u8]) -> Result<(), StorageError> {
        let mut tear = |cut: usize| self.inner.append(key, &data[..cut]);
        self.plan
            .gate("append", key, data.len() as u64, true, Some(&mut tear))?;
        self.inner.append(key, data)
    }

    fn object_size(&self, key: &str) -> Result<u64, StorageError> {
        self.plan.gate("object_size", key, 0, false, None)?;
        self.inner.object_size(key)
    }

    fn read_range(&self, key: &str, offset: u64, len: usize) -> Result<Vec<u8>, StorageError> {
        self.plan.gate("read_range", key, len as u64, false, None)?;
        self.inner.read_range(key, offset, len)
    }

    fn total_bytes(&self) -> Result<u64, StorageError> {
        self.plan.gate("total_bytes", "*", 0, false, None)?;
        self.inner.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;

    fn faulty(config: FaultConfig) -> (FaultyBackend, Arc<FaultPlan>) {
        let plan = Arc::new(FaultPlan::new(config));
        (
            FaultyBackend::new(Arc::new(MemoryBackend::new()), plan.clone()),
            plan,
        )
    }

    #[test]
    fn clean_plan_is_a_transparent_pass_through() {
        let (backend, plan) = faulty(FaultConfig::clean(7));
        backend.put("a", b"alpha").unwrap();
        backend.append("a", b"!").unwrap();
        assert_eq!(backend.get("a").unwrap(), b"alpha!");
        assert_eq!(backend.read_range("a", 0, 5).unwrap(), b"alpha");
        assert!(backend.exists("a").unwrap());
        assert_eq!(backend.list().unwrap(), vec!["a".to_string()]);
        assert_eq!(backend.object_size("a").unwrap(), 6);
        assert_eq!(backend.total_bytes().unwrap(), 6);
        backend.delete("a").unwrap();
        assert!(plan.schedule().is_empty());
        assert!(plan.ticks() >= 8);
    }

    #[test]
    fn error_rate_injects_typed_io_failures_at_roughly_the_configured_rate() {
        let (backend, plan) = faulty(FaultConfig::clean(11).with_error_rate(0.25));
        let mut failures = 0;
        for i in 0..400 {
            if backend.put(&format!("k{i}"), b"data").is_err() {
                failures += 1;
            }
        }
        assert!(
            (50..=150).contains(&failures),
            "expected ~100 failures, got {failures}"
        );
        assert_eq!(plan.schedule().len(), failures);
        assert!(plan
            .schedule()
            .iter()
            .all(|e| e.kind == FaultKind::Transient));
    }

    #[test]
    fn torn_writes_land_a_strict_prefix_then_fail() {
        let (backend, plan) = faulty(FaultConfig::clean(3).with_torn_write_rate(1.0));
        let payload = vec![0xabu8; 1000];
        assert!(matches!(
            backend.put("torn", &payload),
            Err(StorageError::Io(_))
        ));
        let schedule = plan.schedule();
        assert_eq!(schedule.len(), 1);
        let FaultKind::TornWrite { written, requested } = schedule[0].kind else {
            panic!("expected a torn write, got {:?}", schedule[0].kind);
        };
        assert_eq!(requested, 1000);
        assert!(written < 1000);
        // The prefix really landed on the inner backend.
        let inner = backend.inner();
        if written > 0 {
            assert_eq!(inner.get("torn").unwrap(), payload[..written].to_vec());
        } else {
            assert!(matches!(inner.get("torn"), Err(StorageError::NotFound(_))));
        }
        // A clean retry (here: fault exhausted by rate draw on the next
        // tick) overwrites the prefix — mirrored by the seal-retry path.
        backend.inner().put("torn", &payload).unwrap();
        assert_eq!(inner.get("torn").unwrap(), payload);
    }

    #[test]
    fn outage_windows_and_forced_outages_block_every_operation() {
        let (backend, plan) = faulty(FaultConfig::clean(5).with_outage(Window::new(2, 4)));
        backend.put("a", b"1").unwrap(); // tick 0
        backend.put("b", b"2").unwrap(); // tick 1
        assert!(backend.put("c", b"3").is_err()); // tick 2: outage
        assert!(backend.get("a").is_err()); // tick 3: outage
        assert_eq!(backend.get("a").unwrap(), b"1"); // tick 4: recovered
        assert_eq!(plan.schedule().len(), 2);

        plan.set_outage(true);
        assert!(plan.outage_active());
        assert!(backend.get("a").is_err());
        plan.set_outage(false);
        assert!(!plan.outage_active());
        assert_eq!(backend.get("a").unwrap(), b"1");
        let kinds: Vec<_> = plan.schedule().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&FaultKind::ForcedOutage));
    }

    #[test]
    fn same_seed_and_op_sequence_reproduce_the_same_schedule() {
        let run = |seed: u64| {
            let (backend, plan) = faulty(
                FaultConfig::clean(seed)
                    .with_error_rate(0.2)
                    .with_torn_write_rate(0.2),
            );
            for i in 0..200 {
                let _ = backend.put(&format!("k{}", i % 17), &vec![i as u8; 64 + i]);
                let _ = backend.get(&format!("k{}", i % 17));
            }
            (plan.schedule(), backend.inner().list().unwrap())
        };
        let (schedule_a, state_a) = run(42);
        let (schedule_b, state_b) = run(42);
        assert!(!schedule_a.is_empty());
        assert_eq!(schedule_a, schedule_b);
        assert_eq!(state_a, state_b);
        let (schedule_c, _) = run(43);
        assert_ne!(schedule_a, schedule_c, "different seeds must differ");
    }

    #[test]
    fn shaping_and_slow_windows_stall_operations() {
        let shaping = Shaping {
            latency_ms: 5.0,
            upload_mbps: 1.0,
            download_mbps: 1.0,
        };
        let (backend, _) = faulty(
            FaultConfig::clean(9)
                .with_shaping(shaping)
                .with_time_scale(1.0),
        );
        let start = std::time::Instant::now();
        backend.put("s", &[0u8; 1024]).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(4));

        // A slow window multiplies the delay; time_scale compresses it.
        let (slowed, _) = faulty(
            FaultConfig::clean(9)
                .with_slow_window(Window::new(0, 1), 50.0)
                .with_time_scale(10.0),
        );
        let start = std::time::Instant::now();
        slowed.put("s", &[0u8; 16]).unwrap(); // tick 0: (1ms * 50) / 10
        let slow_elapsed = start.elapsed();
        assert!(slow_elapsed >= Duration::from_millis(4));
        let start = std::time::Instant::now();
        slowed.put("s", &[0u8; 16]).unwrap(); // tick 1: outside the window
        assert!(start.elapsed() < slow_elapsed);
    }

    #[test]
    fn schedule_renders_with_seed_header() {
        let (backend, plan) = faulty(FaultConfig::clean(77).with_error_rate(1.0));
        let _ = backend.put("x", b"y");
        let rendered = plan.render_schedule();
        assert!(rendered.starts_with("# fault schedule: seed=77"));
        assert!(rendered.contains("op=put key=x fault=transient"));
        assert_eq!(plan.events_dropped(), 0);
    }
}
