//! The durable metadata journal: a write-ahead log plus periodic
//! checkpoints, persisted through the [`StorageBackend`] trait.
//!
//! A CDStore server keeps its share index, file index, and ownership
//! mappings in memory for speed; this module is what makes them survive a
//! process crash. Every index mutation appends one length-prefixed,
//! CRC-checksummed record to the journal *before* the operation is
//! acknowledged, and a periodic checkpoint persists a full snapshot of the
//! state so recovery replays only the journal suffix written since.
//!
//! # On-backend layout
//!
//! The journal lives next to the containers in the server's backend, under
//! two reserved key families (container keys start with `container-`, so the
//! families never collide):
//!
//! * `meta-ckpt-{epoch}` — one checkpoint object per epoch: a framed,
//!   checksummed snapshot blob supplied by the caller.
//! * `meta-wal-{epoch}-{segment}` — the write-ahead log of the epoch, split
//!   into bounded segments so a single object never grows without limit.
//!
//! Committing checkpoint `e+1` atomically supersedes epoch `e`: recovery
//! always starts from the *newest checkpoint that passes its checksum* and
//! replays only `meta-wal-{e+1}-*`. Stale epochs are deleted after the new
//! checkpoint is durable; leftovers from a crash inside `commit_checkpoint`
//! are ignored by recovery and swept by the next checkpoint.
//!
//! # Record framing and torn tails
//!
//! Each record is framed as `len: u32 LE | crc32(payload): u32 LE | payload`.
//! A host crash can tear the final append (a partial frame at the end of the
//! last segment); [`Journal::load`] detects this via the length/checksum,
//! discards the rest of that *segment*, and reports `torn = true`. Anything
//! before the torn frame was fsynced in order (see
//! [`StorageBackend::append`]), so the replayed records reflect states the
//! server actually passed through. Segments decode independently: when an
//! append *error* leaves a partial frame mid-history, the writer rotates to
//! a fresh segment, so the records acknowledged after the failure still
//! replay rather than being poisoned by the torn bytes before them.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::backend::{StorageBackend, StorageError};

/// Key prefix of checkpoint objects.
pub const CHECKPOINT_PREFIX: &str = "meta-ckpt-";
/// Key prefix of write-ahead-log segment objects.
pub const WAL_PREFIX: &str = "meta-wal-";

/// Target size of one WAL segment. Appends that would grow the active
/// segment past this bound rotate to a fresh segment object first.
pub const SEGMENT_TARGET_BYTES: usize = 256 * 1024;

/// Magic tag opening a framed checkpoint blob.
const CHECKPOINT_MAGIC: &[u8; 4] = b"CDCK";

/// CRC-32 (IEEE 802.3, reflected) over a byte slice. Self-contained so the
/// journal needs no external dependency; the polynomial table is built on
/// first use.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xedb8_8320
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    });
    let mut crc = 0xffff_ffffu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xff) as usize];
    }
    !crc
}

/// The key of the checkpoint object for an epoch.
pub fn checkpoint_key(epoch: u64) -> String {
    format!("{CHECKPOINT_PREFIX}{epoch:016x}")
}

/// The key of one WAL segment object.
pub fn segment_key(epoch: u64, segment: u64) -> String {
    format!("{WAL_PREFIX}{epoch:016x}-{segment:08x}")
}

fn parse_hex(s: &str) -> Option<u64> {
    u64::from_str_radix(s, 16).ok()
}

fn parse_checkpoint_key(key: &str) -> Option<u64> {
    parse_hex(key.strip_prefix(CHECKPOINT_PREFIX)?)
}

fn parse_segment_key(key: &str) -> Option<(u64, u64)> {
    let rest = key.strip_prefix(WAL_PREFIX)?;
    let (epoch, segment) = rest.split_once('-')?;
    Some((parse_hex(epoch)?, parse_hex(segment)?))
}

/// Frames one record for appending: `len | crc | payload`.
fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes a concatenated stream of framed records. Returns the records that
/// decode cleanly plus whether the stream ended in a torn (truncated or
/// checksum-failing) frame. Everything after the first bad frame is
/// discarded: appends are ordered, so nothing beyond a torn frame can be
/// trusted.
pub fn decode_records(mut bytes: &[u8]) -> (Vec<Vec<u8>>, bool) {
    let mut records = Vec::new();
    while !bytes.is_empty() {
        if bytes.len() < 8 {
            return (records, true);
        }
        let len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if bytes.len() < 8 + len {
            return (records, true);
        }
        let payload = &bytes[8..8 + len];
        if crc32(payload) != crc {
            return (records, true);
        }
        records.push(payload.to_vec());
        bytes = &bytes[8 + len..];
    }
    (records, false)
}

/// Frames a checkpoint snapshot: `magic | len | crc | payload`.
fn frame_checkpoint(snapshot: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + snapshot.len());
    out.extend_from_slice(CHECKPOINT_MAGIC);
    out.extend_from_slice(&(snapshot.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(snapshot).to_le_bytes());
    out.extend_from_slice(snapshot);
    out
}

/// Unframes a checkpoint object, `None` if it is malformed or fails its
/// checksum (e.g. a checkpoint write torn by a crash).
fn unframe_checkpoint(bytes: &[u8]) -> Option<Vec<u8>> {
    if bytes.len() < 16 || &bytes[0..4] != CHECKPOINT_MAGIC {
        return None;
    }
    let len = u64::from_le_bytes(bytes[4..12].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(bytes[12..16].try_into().ok()?);
    let payload = bytes.get(16..)?;
    if payload.len() != len || crc32(payload) != crc {
        return None;
    }
    Some(payload.to_vec())
}

/// Everything [`Journal::load`] recovered from a backend: the newest valid
/// checkpoint snapshot (if any), the decoded journal suffix written since,
/// and whether the suffix ended in a torn record.
#[derive(Debug)]
pub struct LoadedJournal {
    /// The epoch the journal was in (0 if no checkpoint was ever committed).
    pub epoch: u64,
    /// The snapshot blob of the newest checkpoint that passed its checksum.
    pub checkpoint: Option<Vec<u8>>,
    /// The journal records of the epoch, in append order.
    pub records: Vec<Vec<u8>>,
    /// Whether the journal ended in a torn (truncated/corrupt) record that
    /// was discarded along with everything after it.
    pub torn: bool,
    /// The first unused segment index of the epoch (where a resumed writer
    /// continues, leaving any torn tail untouched).
    pub next_segment: u64,
}

struct WriterState {
    epoch: u64,
    /// Index of the active segment within the epoch.
    segment: u64,
    /// Bytes already appended to the active segment.
    segment_bytes: usize,
    /// Records appended since the last committed checkpoint (drives the
    /// caller's checkpoint cadence).
    records_since_checkpoint: u64,
    /// A freshly constructed journal clears any stale journal state left on
    /// the backend before its first append, so `Journal::fresh` stays
    /// infallible and cheap for the common empty-backend case.
    reset_pending: bool,
}

/// The write side of the metadata journal.
///
/// `append` is cheap and safe to call under fine-grained locks (it takes one
/// internal mutex and performs one backend append); `commit_checkpoint` is
/// the heavyweight operation that supersedes the journal with a snapshot.
pub struct Journal {
    backend: Arc<dyn StorageBackend>,
    state: Mutex<WriterState>,
}

impl Journal {
    /// A journal for a brand-new server. Any journal state a previous
    /// incarnation left on the backend is cleared on the first append.
    /// (To *recover* that state instead, use [`Journal::load`] followed by
    /// [`Journal::resume`].)
    pub fn fresh(backend: Arc<dyn StorageBackend>) -> Self {
        Journal {
            backend,
            state: Mutex::new(WriterState {
                epoch: 0,
                segment: 0,
                segment_bytes: 0,
                records_since_checkpoint: 0,
                reset_pending: true,
            }),
        }
    }

    /// A journal continuing the epoch a [`LoadedJournal`] was recovered
    /// from. The caller is expected to commit a checkpoint of the recovered
    /// state promptly (opening a new epoch); until then, appends continue
    /// the loaded epoch after its last intact record — note that a torn tail
    /// would corrupt such appends, so recovery always checkpoints first.
    pub fn resume(backend: Arc<dyn StorageBackend>, loaded: &LoadedJournal) -> Self {
        Journal {
            backend,
            state: Mutex::new(WriterState {
                epoch: loaded.epoch,
                // Open a fresh segment rather than appending after a
                // possibly-torn tail of the last one.
                segment: loaded.next_segment,
                segment_bytes: 0,
                records_since_checkpoint: loaded.records.len() as u64,
                reset_pending: false,
            }),
        }
    }

    /// Reads the newest valid checkpoint and the journal suffix written
    /// since from a backend.
    pub fn load(backend: &dyn StorageBackend) -> Result<LoadedJournal, StorageError> {
        let keys = backend.list()?;
        // Newest checkpoint that passes its checksum wins; a torn newest
        // checkpoint falls back to the previous epoch (whose WAL is still
        // present, because stale epochs are only deleted *after* the next
        // checkpoint is durable).
        let mut checkpoint_epochs: Vec<u64> = keys
            .iter()
            .filter_map(|k| parse_checkpoint_key(k))
            .collect();
        checkpoint_epochs.sort_unstable();
        let mut epoch = 0u64;
        let mut checkpoint = None;
        for &candidate in checkpoint_epochs.iter().rev() {
            if let Some(snapshot) = unframe_checkpoint(&backend.get(&checkpoint_key(candidate))?) {
                epoch = candidate;
                checkpoint = Some(snapshot);
                break;
            }
        }
        // Replay the epoch's segments in order, decoding each segment
        // independently: a torn frame discards the rest of *its own*
        // segment only. In the common crash case the tear sits at the end
        // of the highest-numbered segment, so nothing follows it anyway;
        // after a failed append mid-history, the writer rotated to a fresh
        // segment (see [`Journal::append`]), so the records acknowledged
        // after the failure still replay instead of being poisoned by the
        // partial frame before them.
        let mut segments: Vec<u64> = keys
            .iter()
            .filter_map(|k| parse_segment_key(k))
            .filter(|&(e, _)| e == epoch)
            .map(|(_, s)| s)
            .collect();
        segments.sort_unstable();
        let next_segment = segments.last().map(|&s| s + 1).unwrap_or(0);
        let mut records = Vec::new();
        let mut torn = false;
        for segment in segments {
            let bytes = backend.get(&segment_key(epoch, segment))?;
            let (mut segment_records, segment_torn) = decode_records(&bytes);
            records.append(&mut segment_records);
            torn |= segment_torn;
        }
        Ok(LoadedJournal {
            epoch,
            checkpoint,
            records,
            torn,
            next_segment,
        })
    }

    /// Deletes every journal object (checkpoints and WAL segments) except,
    /// optionally, the checkpoint of `keep_epoch`.
    fn sweep(&self, keep_epoch: Option<u64>) -> Result<(), StorageError> {
        for key in self.backend.list()? {
            let stale = match (parse_checkpoint_key(&key), parse_segment_key(&key)) {
                (Some(epoch), _) => Some(epoch) != keep_epoch,
                (_, Some(_)) => true,
                _ => false,
            };
            if stale {
                self.backend.delete(&key)?;
            }
        }
        Ok(())
    }

    /// Appends one record to the write-ahead log. The record is durable (to
    /// the extent the backend's `append` is) before this returns. On error
    /// nothing was (reliably) appended; the caller decides whether to fail
    /// its operation or to count the lapse and re-baseline with a prompt
    /// checkpoint (the CDStore server does the latter — see its
    /// `journal_record`).
    pub fn append(&self, payload: &[u8]) -> Result<(), StorageError> {
        let framed = frame_record(payload);
        let mut state = self.state.lock();
        if state.reset_pending {
            self.sweep(None)?;
            state.reset_pending = false;
        }
        if state.segment_bytes >= SEGMENT_TARGET_BYTES {
            state.segment += 1;
            state.segment_bytes = 0;
        }
        if let Err(e) = self
            .backend
            .append(&segment_key(state.epoch, state.segment), &framed)
        {
            // The failed append may have left a partial frame at the
            // segment tail. Never write after it: rotate to a fresh
            // segment, so replay loses at most this one record instead of
            // discarding every later (successfully acknowledged) append
            // behind the torn bytes.
            state.segment += 1;
            state.segment_bytes = 0;
            return Err(e);
        }
        state.segment_bytes += framed.len();
        state.records_since_checkpoint += 1;
        Ok(())
    }

    /// Records appended since the last committed checkpoint.
    pub fn records_since_checkpoint(&self) -> u64 {
        self.state.lock().records_since_checkpoint
    }

    /// Commits a checkpoint: persists the snapshot under the next epoch,
    /// then deletes the superseded epoch's checkpoint and WAL segments so
    /// recovery time stays bounded by the checkpoint cadence.
    ///
    /// Crash-ordering: the new checkpoint object is durable *before* any old
    /// state is deleted, so recovery always finds either the old epoch
    /// intact or the new one (or both, in which case the newer wins).
    pub fn commit_checkpoint(&self, snapshot: &[u8]) -> Result<(), StorageError> {
        let mut state = self.state.lock();
        if state.reset_pending {
            self.sweep(None)?;
            state.reset_pending = false;
        }
        let next_epoch = state.epoch + 1;
        self.backend
            .put(&checkpoint_key(next_epoch), &frame_checkpoint(snapshot))?;
        state.epoch = next_epoch;
        state.segment = 0;
        state.segment_bytes = 0;
        state.records_since_checkpoint = 0;
        self.sweep(Some(next_epoch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;

    fn new_journal() -> (Journal, Arc<MemoryBackend>) {
        let backend = Arc::new(MemoryBackend::new());
        (Journal::fresh(backend.clone()), backend)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn records_round_trip_through_the_backend() {
        let (journal, backend) = new_journal();
        for i in 0..100u32 {
            journal.append(format!("record-{i}").as_bytes()).unwrap();
        }
        assert_eq!(journal.records_since_checkpoint(), 100);
        let loaded = Journal::load(&*backend).unwrap();
        assert_eq!(loaded.epoch, 0);
        assert!(loaded.checkpoint.is_none());
        assert!(!loaded.torn);
        assert_eq!(loaded.records.len(), 100);
        assert_eq!(loaded.records[7], b"record-7");
    }

    #[test]
    fn large_journals_rotate_segments() {
        let (journal, backend) = new_journal();
        let big = vec![0xabu8; 64 * 1024];
        for _ in 0..10 {
            journal.append(&big).unwrap();
        }
        let segments = backend
            .list()
            .unwrap()
            .iter()
            .filter(|k| k.starts_with(WAL_PREFIX))
            .count();
        assert!(segments > 1, "640 KB of records must span segments");
        let loaded = Journal::load(&*backend).unwrap();
        assert_eq!(loaded.records.len(), 10);
        assert!(loaded.records.iter().all(|r| r == &big));
    }

    #[test]
    fn torn_tail_is_detected_and_discarded() {
        let (journal, backend) = new_journal();
        journal.append(b"intact-one").unwrap();
        journal.append(b"intact-two").unwrap();
        journal.append(b"doomed").unwrap();
        // Tear the final record by truncating the single segment.
        let key = segment_key(0, 0);
        let mut bytes = backend.get(&key).unwrap();
        bytes.truncate(bytes.len() - 3);
        backend.put(&key, &bytes).unwrap();
        let loaded = Journal::load(&*backend).unwrap();
        assert!(loaded.torn);
        assert_eq!(
            loaded.records,
            vec![b"intact-one".to_vec(), b"intact-two".to_vec()]
        );

        // A flipped byte inside a record is equally fatal for the tail.
        let mut bytes = backend.get(&key).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        backend.put(&key, &bytes).unwrap();
        let loaded = Journal::load(&*backend).unwrap();
        assert!(loaded.torn);
        assert!(loaded.records.len() < 2);
    }

    #[test]
    fn torn_middle_segment_does_not_poison_later_segments() {
        let (journal, backend) = new_journal();
        // Three segments' worth of records.
        let big = vec![0x5au8; SEGMENT_TARGET_BYTES];
        journal.append(&big).unwrap();
        journal.append(b"segment-1-record").unwrap();
        journal.append(&big).unwrap();
        journal.append(b"segment-2-record").unwrap();
        let segment_count = backend
            .list()
            .unwrap()
            .iter()
            .filter(|k| k.starts_with(WAL_PREFIX))
            .count();
        assert!(segment_count >= 3);
        // Tear a *middle* segment (as a failed append would): only that
        // segment's records are lost; later segments still replay.
        let key = segment_key(0, 1);
        let mut bytes = backend.get(&key).unwrap();
        bytes.truncate(5);
        backend.put(&key, &bytes).unwrap();
        let loaded = Journal::load(&*backend).unwrap();
        assert!(loaded.torn);
        assert!(loaded.records.contains(&b"segment-2-record".to_vec()));
        assert!(!loaded.records.contains(&b"segment-1-record".to_vec()));
    }

    #[test]
    fn checkpoints_truncate_the_journal() {
        let (journal, backend) = new_journal();
        journal.append(b"before").unwrap();
        journal.commit_checkpoint(b"snapshot-state").unwrap();
        assert_eq!(journal.records_since_checkpoint(), 0);
        journal.append(b"after-1").unwrap();
        journal.append(b"after-2").unwrap();

        let loaded = Journal::load(&*backend).unwrap();
        assert_eq!(loaded.epoch, 1);
        assert_eq!(
            loaded.checkpoint.as_deref(),
            Some(b"snapshot-state".as_slice())
        );
        assert_eq!(
            loaded.records,
            vec![b"after-1".to_vec(), b"after-2".to_vec()]
        );
        assert!(!loaded.torn);

        // The superseded epoch's WAL was deleted.
        assert!(backend
            .list()
            .unwrap()
            .iter()
            .filter_map(|k| parse_segment_key(k))
            .all(|(epoch, _)| epoch == 1));
    }

    #[test]
    fn corrupt_checkpoint_falls_back_to_the_previous_epoch() {
        let (journal, backend) = new_journal();
        journal.append(b"epoch0").unwrap();
        journal.commit_checkpoint(b"ckpt-1").unwrap();
        journal.append(b"epoch1").unwrap();
        // A later checkpoint lands torn (simulated: written then corrupted
        // before the old epoch was swept — sweep order protects the rest).
        backend
            .put(&checkpoint_key(2), b"CDCKgarbage-that-fails-the-crc")
            .unwrap();
        let loaded = Journal::load(&*backend).unwrap();
        assert_eq!(loaded.epoch, 1);
        assert_eq!(loaded.checkpoint.as_deref(), Some(b"ckpt-1".as_slice()));
        assert_eq!(loaded.records, vec![b"epoch1".to_vec()]);
    }

    #[test]
    fn resume_continues_the_loaded_epoch_without_touching_its_tail() {
        let (journal, backend) = new_journal();
        journal.commit_checkpoint(b"base").unwrap();
        journal.append(b"old-1").unwrap();
        drop(journal);

        let loaded = Journal::load(&*backend).unwrap();
        let resumed = Journal::resume(backend.clone(), &loaded);
        assert_eq!(resumed.records_since_checkpoint(), 1);
        resumed.append(b"new-1").unwrap();
        let reloaded = Journal::load(&*backend).unwrap();
        assert_eq!(reloaded.records, vec![b"old-1".to_vec(), b"new-1".to_vec()]);

        // Checkpointing from the resumed journal opens epoch 2 and sweeps
        // everything older.
        resumed.commit_checkpoint(b"recovered").unwrap();
        let latest = Journal::load(&*backend).unwrap();
        assert_eq!(latest.epoch, 2);
        assert_eq!(latest.checkpoint.as_deref(), Some(b"recovered".as_slice()));
        assert!(latest.records.is_empty());
    }

    #[test]
    fn fresh_journals_clear_stale_state() {
        let (journal, backend) = new_journal();
        journal.append(b"stale").unwrap();
        journal.commit_checkpoint(b"stale-ckpt").unwrap();
        drop(journal);

        let fresh = Journal::fresh(backend.clone());
        fresh.append(b"new-life").unwrap();
        let loaded = Journal::load(&*backend).unwrap();
        assert_eq!(loaded.epoch, 0);
        assert!(loaded.checkpoint.is_none());
        assert_eq!(loaded.records, vec![b"new-life".to_vec()]);
    }

    #[test]
    fn decode_records_handles_every_prefix_without_panicking() {
        let mut stream = Vec::new();
        for i in 0..20u32 {
            stream.extend_from_slice(&frame_record(&i.to_be_bytes()));
        }
        let full = decode_records(&stream).0.len();
        assert_eq!(full, 20);
        for cut in 0..stream.len() {
            let (records, torn) = decode_records(&stream[..cut]);
            assert!(records.len() <= full);
            // A prefix is torn exactly when it does not end on a frame
            // boundary (every frame here is 12 bytes).
            assert_eq!(torn, cut % 12 != 0, "cut at {cut}");
        }
    }
}
