//! Storage backend abstraction: where sealed containers are persisted.
//!
//! In a real deployment each CDStore server writes containers to its cloud's
//! object store (S3, Azure Blob, ...) through the internal network. The
//! simulation uses [`MemoryBackend`] (fast, for tests and benchmarks) or
//! [`DirBackend`] (a directory on local disk, mirroring the LAN testbed's
//! SATA-disk backend in §5.1).

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::{Read, Write};
use std::path::PathBuf;

use parking_lot::RwLock;

/// Errors returned by storage backends.
#[derive(Debug)]
pub enum StorageError {
    /// The requested object does not exist.
    NotFound(String),
    /// An underlying I/O error.
    Io(std::io::Error),
    /// The object exists but its content is not a valid container.
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NotFound(key) => write!(f, "object not found: {key}"),
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Corrupt(key) => write!(f, "corrupt object: {key}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// A flat object store keyed by string names.
pub trait StorageBackend: Send + Sync {
    /// Writes (or overwrites) an object.
    fn put(&self, key: &str, data: &[u8]) -> Result<(), StorageError>;

    /// Reads an object.
    fn get(&self, key: &str) -> Result<Vec<u8>, StorageError>;

    /// Deletes an object (no error if absent).
    fn delete(&self, key: &str) -> Result<(), StorageError>;

    /// Whether an object exists.
    fn exists(&self, key: &str) -> Result<bool, StorageError>;

    /// Lists all object keys (sorted).
    fn list(&self) -> Result<Vec<String>, StorageError>;

    /// Appends bytes to an object, creating it if absent. The durability
    /// primitive behind the metadata journal ([`crate::journal`]): backends
    /// with a native append (local files, in-memory buffers) override this;
    /// pure put/get object stores fall back to read-modify-write.
    fn append(&self, key: &str, data: &[u8]) -> Result<(), StorageError> {
        let mut existing = match self.get(key) {
            Ok(bytes) => bytes,
            Err(StorageError::NotFound(_)) => Vec::new(),
            Err(e) => return Err(e),
        };
        existing.extend_from_slice(data);
        self.put(key, &existing)
    }

    /// Size of one object in bytes.
    fn object_size(&self, key: &str) -> Result<u64, StorageError> {
        Ok(self.get(key)?.len() as u64)
    }

    /// Reads `len` bytes starting at `offset` within an object — the random
    /// read primitive behind the disk-resident index's block fetches. The
    /// default reads the whole object and slices; backends with positioned
    /// reads (local files, in-memory buffers) override it. A range reaching
    /// past the end of the object is a [`StorageError::Corrupt`] error, not
    /// a short read: callers always know the exact extent they framed.
    fn read_range(&self, key: &str, offset: u64, len: usize) -> Result<Vec<u8>, StorageError> {
        let data = self.get(key)?;
        range_of(&data, key, offset, len)
    }

    /// Total bytes stored across all objects.
    fn total_bytes(&self) -> Result<u64, StorageError> {
        let mut total = 0u64;
        for key in self.list()? {
            total += self.object_size(&key)?;
        }
        Ok(total)
    }
}

/// Slices `data[offset..offset + len]`, mapping out-of-bounds ranges to
/// [`StorageError::Corrupt`].
fn range_of(data: &[u8], key: &str, offset: u64, len: usize) -> Result<Vec<u8>, StorageError> {
    let start = usize::try_from(offset).map_err(|_| StorageError::Corrupt(key.to_string()))?;
    let end = start
        .checked_add(len)
        .ok_or_else(|| StorageError::Corrupt(key.to_string()))?;
    data.get(start..end)
        .map(|s| s.to_vec())
        .ok_or_else(|| StorageError::Corrupt(key.to_string()))
}

/// An in-memory backend for tests, benchmarks, and the cloud simulator.
#[derive(Default)]
pub struct MemoryBackend {
    objects: RwLock<BTreeMap<String, Vec<u8>>>,
}

impl MemoryBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored objects.
    pub fn object_count(&self) -> usize {
        self.objects.read().len()
    }

    /// Corrupts an object by flipping a byte (failure-injection helper for
    /// integrity tests).
    pub fn corrupt(&self, key: &str, byte_index: usize) -> Result<(), StorageError> {
        let mut objects = self.objects.write();
        let data = objects
            .get_mut(key)
            .ok_or_else(|| StorageError::NotFound(key.to_string()))?;
        if let Some(b) = data.get_mut(byte_index) {
            *b ^= 0xff;
        }
        Ok(())
    }
}

impl StorageBackend for MemoryBackend {
    fn put(&self, key: &str, data: &[u8]) -> Result<(), StorageError> {
        self.objects.write().insert(key.to_string(), data.to_vec());
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Vec<u8>, StorageError> {
        self.objects
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(key.to_string()))
    }

    fn delete(&self, key: &str) -> Result<(), StorageError> {
        self.objects.write().remove(key);
        Ok(())
    }

    fn exists(&self, key: &str) -> Result<bool, StorageError> {
        Ok(self.objects.read().contains_key(key))
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        Ok(self.objects.read().keys().cloned().collect())
    }

    fn append(&self, key: &str, data: &[u8]) -> Result<(), StorageError> {
        self.objects
            .write()
            .entry(key.to_string())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn object_size(&self, key: &str) -> Result<u64, StorageError> {
        self.objects
            .read()
            .get(key)
            .map(|v| v.len() as u64)
            .ok_or_else(|| StorageError::NotFound(key.to_string()))
    }

    fn read_range(&self, key: &str, offset: u64, len: usize) -> Result<Vec<u8>, StorageError> {
        let objects = self.objects.read();
        let data = objects
            .get(key)
            .ok_or_else(|| StorageError::NotFound(key.to_string()))?;
        range_of(data, key, offset, len)
    }

    fn total_bytes(&self) -> Result<u64, StorageError> {
        Ok(self.objects.read().values().map(|v| v.len() as u64).sum())
    }
}

/// A backend storing each object as a file in a directory.
pub struct DirBackend {
    root: PathBuf,
}

impl DirBackend {
    /// Creates (if needed) and opens a directory-backed store.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, StorageError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(DirBackend { root })
    }

    fn path_for(&self, key: &str) -> PathBuf {
        // Keys are sanitised to a flat, filesystem-safe name.
        let safe: String = key
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.root.join(safe)
    }

    /// Best-effort fsync of the backing directory, making renames and file
    /// creations durable against a host crash. Errors are swallowed: some
    /// filesystems (and platforms) reject directory fsync, and the data
    /// itself was already synced.
    fn sync_root(&self) {
        if let Ok(dir) = fs::File::open(&self.root) {
            let _ = dir.sync_all();
        }
    }
}

impl StorageBackend for DirBackend {
    fn put(&self, key: &str, data: &[u8]) -> Result<(), StorageError> {
        let path = self.path_for(key);
        let tmp = path.with_extension("tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(data)?;
            // The temp file's content must be on disk *before* the rename:
            // otherwise a crash can leave the final name pointing at an
            // empty (or partial) container even though the rename itself
            // was atomic.
            file.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        // ...and the rename must be durable too, which requires syncing the
        // parent directory's entries.
        self.sync_root();
        Ok(())
    }

    fn get(&self, key: &str) -> Result<Vec<u8>, StorageError> {
        let path = self.path_for(key);
        let mut file =
            fs::File::open(&path).map_err(|_| StorageError::NotFound(key.to_string()))?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        Ok(data)
    }

    fn delete(&self, key: &str) -> Result<(), StorageError> {
        let path = self.path_for(key);
        match fs::remove_file(path) {
            Ok(()) => {
                self.sync_root();
                Ok(())
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn append(&self, key: &str, data: &[u8]) -> Result<(), StorageError> {
        let path = self.path_for(key);
        let created = !path.exists();
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(data)?;
        // Journal appends are write-ahead durability points: fsync every
        // append so a crash can tear at most the final record, never
        // reorder them.
        file.sync_all()?;
        if created {
            self.sync_root();
        }
        Ok(())
    }

    fn object_size(&self, key: &str) -> Result<u64, StorageError> {
        let path = self.path_for(key);
        match fs::metadata(&path) {
            Ok(meta) => Ok(meta.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StorageError::NotFound(key.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn read_range(&self, key: &str, offset: u64, len: usize) -> Result<Vec<u8>, StorageError> {
        use std::io::{Seek, SeekFrom};
        let path = self.path_for(key);
        let mut file =
            fs::File::open(&path).map_err(|_| StorageError::NotFound(key.to_string()))?;
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        file.read_exact(&mut buf)
            .map_err(|_| StorageError::Corrupt(key.to_string()))?;
        Ok(buf)
    }

    fn exists(&self, key: &str) -> Result<bool, StorageError> {
        Ok(self.path_for(key).exists())
    }

    fn list(&self) -> Result<Vec<String>, StorageError> {
        let mut keys = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            if entry
                .path()
                .extension()
                .map(|e| e == "tmp")
                .unwrap_or(false)
            {
                continue;
            }
            if let Some(name) = entry.file_name().to_str() {
                keys.push(name.to_string());
            }
        }
        keys.sort();
        Ok(keys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_backend(backend: &dyn StorageBackend) {
        assert!(!backend.exists("a").unwrap());
        backend.put("a", b"alpha").unwrap();
        backend.put("b", b"beta").unwrap();
        assert!(backend.exists("a").unwrap());
        assert_eq!(backend.get("a").unwrap(), b"alpha");
        assert_eq!(
            backend.list().unwrap(),
            vec!["a".to_string(), "b".to_string()]
        );
        assert_eq!(backend.total_bytes().unwrap(), 9);
        backend.put("a", b"alpha2").unwrap();
        assert_eq!(backend.get("a").unwrap(), b"alpha2");
        backend.delete("a").unwrap();
        assert!(!backend.exists("a").unwrap());
        assert!(matches!(backend.get("a"), Err(StorageError::NotFound(_))));
        backend.delete("never-existed").unwrap();
    }

    #[test]
    fn memory_backend_semantics() {
        let backend = MemoryBackend::new();
        exercise_backend(&backend);
        assert_eq!(backend.object_count(), 1);
    }

    #[test]
    fn dir_backend_semantics() {
        let dir = std::env::temp_dir().join(format!("cdstore-backend-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let backend = DirBackend::new(&dir).unwrap();
        exercise_backend(&backend);
        // Data survives re-opening the directory.
        let reopened = DirBackend::new(&dir).unwrap();
        assert_eq!(reopened.get("b").unwrap(), b"beta");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_backend_sanitises_keys() {
        let dir =
            std::env::temp_dir().join(format!("cdstore-backend-sanitise-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let backend = DirBackend::new(&dir).unwrap();
        backend.put("shares/container:1", b"x").unwrap();
        assert_eq!(backend.get("shares/container:1").unwrap(), b"x");
        let _ = fs::remove_dir_all(&dir);
    }

    fn exercise_append(backend: &dyn StorageBackend) {
        // Appending to a missing object creates it.
        backend.append("log", b"one").unwrap();
        backend.append("log", b"-two").unwrap();
        assert_eq!(backend.get("log").unwrap(), b"one-two");
        assert_eq!(backend.object_size("log").unwrap(), 7);
        // Appending to an object written with put extends it.
        backend.put("log", b"reset").unwrap();
        backend.append("log", b"!").unwrap();
        assert_eq!(backend.get("log").unwrap(), b"reset!");
        assert!(matches!(
            backend.object_size("missing"),
            Err(StorageError::NotFound(_))
        ));
    }

    fn exercise_read_range(backend: &dyn StorageBackend) {
        backend.put("obj", b"0123456789").unwrap();
        assert_eq!(backend.read_range("obj", 0, 4).unwrap(), b"0123");
        assert_eq!(backend.read_range("obj", 6, 4).unwrap(), b"6789");
        assert_eq!(backend.read_range("obj", 3, 0).unwrap(), b"");
        // Ranges past the end are corruption, not short reads.
        assert!(matches!(
            backend.read_range("obj", 8, 4),
            Err(StorageError::Corrupt(_))
        ));
        assert!(matches!(
            backend.read_range("obj", 11, 1),
            Err(StorageError::Corrupt(_))
        ));
        assert!(matches!(
            backend.read_range("missing", 0, 1),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn memory_backend_read_range_semantics() {
        exercise_read_range(&MemoryBackend::new());
    }

    #[test]
    fn dir_backend_read_range_semantics() {
        let dir =
            std::env::temp_dir().join(format!("cdstore-backend-range-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let backend = DirBackend::new(&dir).unwrap();
        exercise_read_range(&backend);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_backend_append_semantics() {
        exercise_append(&MemoryBackend::new());
    }

    #[test]
    fn dir_backend_append_semantics() {
        let dir =
            std::env::temp_dir().join(format!("cdstore-backend-append-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let backend = DirBackend::new(&dir).unwrap();
        exercise_append(&backend);
        // Appended data survives re-opening the directory.
        let reopened = DirBackend::new(&dir).unwrap();
        assert_eq!(reopened.get("log").unwrap(), b"reset!");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn memory_backend_corruption_helper() {
        let backend = MemoryBackend::new();
        backend.put("c", &[1, 2, 3]).unwrap();
        backend.corrupt("c", 1).unwrap();
        assert_eq!(backend.get("c").unwrap(), vec![1, 2 ^ 0xff, 3]);
        assert!(matches!(
            backend.corrupt("missing", 0),
            Err(StorageError::NotFound(_))
        ));
    }
}
