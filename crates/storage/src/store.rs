//! [`ContainerStore`]: the server-side component that buffers shares and
//! recipes into containers, writes sealed containers to the backend, and
//! serves reads through an LRU container cache.
//!
//! The store is designed for concurrent clients: containers are single-user
//! (§4.5), so each user's open containers sit behind their own append lock,
//! container ids come from an atomic counter, the read cache has its own
//! mutex, and the I/O counters are atomics. Two users appending shares at the
//! same time never contend on a common lock.
//!
//! The store also keeps a *liveness ledger* ([`ContainerUsage`]) per
//! container: every appended blob starts live, and [`ContainerStore::release`]
//! moves its bytes to the dead column when the last reference to the blob is
//! dropped. The ledger is what the garbage collector consults to decide which
//! sealed containers can be deleted outright (no live bytes left) and which
//! are worth compacting (dead ratio above a threshold).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cdstore_crypto::Fingerprint;
use parking_lot::{Mutex, RwLock};

use crate::backend::{StorageBackend, StorageError};
use crate::cache::LruCache;
use crate::container::{Container, ContainerBuilder, ContainerKind};

/// Where a share is physically stored at the cloud backend.
///
/// Defined here, next to the container store that mints locations; the index
/// crate re-exports it (`cdstore_index::ShareLocation`) for the entries that
/// embed one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShareLocation {
    /// Identifier of the container holding the share.
    pub container_id: u64,
    /// Byte offset of the share inside the container.
    pub offset: u32,
    /// Size of the share in bytes.
    pub size: u32,
}

/// Default size of the container read cache (64 MB, i.e. sixteen 4 MB
/// containers).
pub const DEFAULT_CACHE_BYTES: usize = 64 * 1024 * 1024;

/// Key prefix of container objects on the backend. Containers share their
/// backend with the metadata journal ([`crate::journal`]); the prefix is
/// what separates the two key families.
pub const CONTAINER_KEY_PREFIX: &str = "container-";

/// The backend object key of a container.
pub fn container_key(container_id: u64) -> String {
    format!("{CONTAINER_KEY_PREFIX}{container_id:016x}")
}

/// Parses a backend object key back into a container id (`None` for
/// non-container objects, e.g. journal segments).
pub fn parse_container_key(key: &str) -> Option<u64> {
    u64::from_str_radix(key.strip_prefix(CONTAINER_KEY_PREFIX)?, 16).ok()
}

/// Counters describing the I/O behaviour of a container store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Sealed containers written to the backend.
    pub containers_written: u64,
    /// Total payload bytes written to the backend.
    pub bytes_written: u64,
    /// Container reads served from the open (unsealed) buffers.
    pub open_buffer_reads: u64,
    /// Container reads served from the LRU cache.
    pub cache_reads: u64,
    /// Container reads that had to touch the backend.
    pub backend_reads: u64,
}

/// Lock-free counterpart of [`StoreStats`].
#[derive(Default)]
struct AtomicStoreStats {
    containers_written: AtomicU64,
    bytes_written: AtomicU64,
    open_buffer_reads: AtomicU64,
    cache_reads: AtomicU64,
    backend_reads: AtomicU64,
}

impl AtomicStoreStats {
    fn snapshot(&self) -> StoreStats {
        StoreStats {
            containers_written: self.containers_written.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            open_buffer_reads: self.open_buffer_reads.load(Ordering::Relaxed),
            cache_reads: self.cache_reads.load(Ordering::Relaxed),
            backend_reads: self.backend_reads.load(Ordering::Relaxed),
        }
    }
}

/// Liveness accounting for one container: how many of its payload bytes are
/// still referenced (live) and how many have been released (dead).
///
/// Live bytes are added when blobs are appended; [`ContainerStore::release`]
/// moves a blob's bytes from live to dead when its last reference goes. Only
/// *sealed* containers are eligible for reclamation: a fully dead sealed
/// container can be deleted outright, and a sealed share container whose
/// [`ContainerUsage::dead_ratio`] crosses the compaction threshold can have
/// its live blobs rewritten into fresh containers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContainerUsage {
    /// Whether this is a share or a recipe container.
    pub kind: ContainerKind,
    /// Payload bytes still referenced.
    pub live_bytes: u64,
    /// Payload bytes whose last reference has been released.
    pub dead_bytes: u64,
    /// Whether the container has been sealed and written to the backend.
    pub sealed: bool,
}

impl ContainerUsage {
    fn new(kind: ContainerKind) -> Self {
        ContainerUsage {
            kind,
            live_bytes: 0,
            dead_bytes: 0,
            sealed: false,
        }
    }

    /// Total payload bytes the ledger has accounted for this container.
    pub fn payload_bytes(&self) -> u64 {
        self.live_bytes + self.dead_bytes
    }

    /// Fraction of the payload that is dead (0.0 for an empty container).
    pub fn dead_ratio(&self) -> f64 {
        let total = self.payload_bytes();
        if total == 0 {
            0.0
        } else {
            self.dead_bytes as f64 / total as f64
        }
    }
}

/// Aggregate liveness across every container the ledger tracks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreUtilisation {
    /// Live payload bytes across all containers.
    pub live_bytes: u64,
    /// Dead payload bytes across all containers.
    pub dead_bytes: u64,
    /// Number of containers tracked (open and sealed).
    pub containers: u64,
}

/// One user's open (unsealed) containers: at most one share container and
/// one recipe container at a time (§4.5).
#[derive(Default)]
struct OpenContainers {
    share: Option<ContainerBuilder>,
    recipe: Option<ContainerBuilder>,
}

impl OpenContainers {
    fn slot(&mut self, kind: ContainerKind) -> &mut Option<ContainerBuilder> {
        match kind {
            ContainerKind::Share => &mut self.share,
            ContainerKind::Recipe => &mut self.recipe,
        }
    }

    fn builders(&self) -> impl Iterator<Item = &ContainerBuilder> {
        self.share.iter().chain(self.recipe.iter())
    }
}

/// Manages share and recipe containers on top of a storage backend.
///
/// All methods take `&self`; the store is `Send + Sync` and safe to share
/// across server worker threads.
pub struct ContainerStore {
    backend: Arc<dyn StorageBackend>,
    next_container_id: AtomicU64,
    /// Per-user append locks over the open containers. The outer `RwLock`
    /// only guards the map shape (inserting a new user's entry); appends
    /// take the inner per-user mutex. Idle entries are pruned on `flush`.
    open: RwLock<HashMap<u64, Arc<Mutex<OpenContainers>>>>,
    /// Container id → owning user's entry, for every currently *open*
    /// container, so reads resolve open containers in O(1) instead of
    /// scanning all users. Maintained on builder creation and sealing.
    open_by_id: Mutex<HashMap<u64, Arc<Mutex<OpenContainers>>>>,
    cache: Mutex<LruCache<u64, Container>>,
    /// Per-container liveness accounting (see [`ContainerUsage`]). Entries
    /// are created on the first append, flipped to `sealed` when the
    /// container is written out, and removed when it is deleted.
    ledger: Mutex<HashMap<u64, ContainerUsage>>,
    stats: AtomicStoreStats,
}

impl ContainerStore {
    /// Creates a container store over the given backend with the default
    /// cache size.
    pub fn new(backend: Arc<dyn StorageBackend>) -> Self {
        Self::with_cache_bytes(backend, DEFAULT_CACHE_BYTES)
    }

    /// Creates a container store with an explicit cache budget.
    pub fn with_cache_bytes(backend: Arc<dyn StorageBackend>, cache_bytes: usize) -> Self {
        ContainerStore {
            backend,
            next_container_id: AtomicU64::new(1),
            open: RwLock::new(HashMap::new()),
            open_by_id: Mutex::new(HashMap::new()),
            cache: Mutex::new(LruCache::new(cache_bytes)),
            ledger: Mutex::new(HashMap::new()),
            stats: AtomicStoreStats::default(),
        }
    }

    fn object_key(container_id: u64) -> String {
        container_key(container_id)
    }

    /// Returns the user's open-container entry, creating it if needed.
    fn user_entry(&self, user: u64) -> Arc<Mutex<OpenContainers>> {
        if let Some(entry) = self.open.read().get(&user) {
            return entry.clone();
        }
        self.open.write().entry(user).or_default().clone()
    }

    /// Appends a share to the user's open share container, returning where it
    /// will live. The open container is sealed and written out when it
    /// reaches the 4 MB cap.
    pub fn store_share(
        &self,
        user: u64,
        fingerprint: Fingerprint,
        data: &[u8],
    ) -> Result<ShareLocation, StorageError> {
        self.store_blob(user, fingerprint, data, ContainerKind::Share)
    }

    /// Appends a file recipe to the user's open recipe container, returning
    /// its location.
    pub fn store_recipe(
        &self,
        user: u64,
        fingerprint: Fingerprint,
        data: &[u8],
    ) -> Result<ShareLocation, StorageError> {
        self.store_blob(user, fingerprint, data, ContainerKind::Recipe)
    }

    fn store_blob(
        &self,
        user: u64,
        fingerprint: Fingerprint,
        data: &[u8],
        kind: ContainerKind,
    ) -> Result<ShareLocation, StorageError> {
        let entry = self.user_entry(user);
        let mut open = entry.lock();
        let slot = open.slot(kind);
        // Seal the open container first if this blob would overflow it.
        if slot
            .as_ref()
            .map(|b| b.would_overflow(data.len()))
            .unwrap_or(false)
        {
            self.seal_slot(slot)?;
        }
        let builder = open.slot(kind).get_or_insert_with(|| {
            let id = self.next_container_id.fetch_add(1, Ordering::Relaxed);
            self.open_by_id.lock().insert(id, entry.clone());
            ContainerBuilder::new(id, user, kind)
        });
        let offset = builder.append(fingerprint, data);
        let id = builder.id();
        self.ledger
            .lock()
            .entry(id)
            .or_insert_with(|| ContainerUsage::new(kind))
            .live_bytes += data.len() as u64;
        Ok(ShareLocation {
            container_id: id,
            offset,
            size: data.len() as u32,
        })
    }

    /// Seals the builder in `slot` (if any) and writes it to the backend and
    /// the read cache. On success the slot is left empty; if the backend
    /// write fails the builder is put back, so blobs whose locations were
    /// already handed out stay readable from the open buffer and the next
    /// seal attempt (overflow or flush) retries the write.
    fn seal_slot(&self, slot: &mut Option<ContainerBuilder>) -> Result<(), StorageError> {
        let Some(builder) = slot.take() else {
            return Ok(());
        };
        let id = builder.id();
        if builder.is_empty() {
            self.open_by_id.lock().remove(&id);
            self.ledger.lock().remove(&id);
            return Ok(());
        }
        let container = builder.seal();
        let bytes = container.to_bytes();
        if let Err(e) = self.backend.put(&Self::object_key(id), &bytes) {
            *slot = Some(container.reopen());
            return Err(e);
        }
        self.stats
            .containers_written
            .fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let size = container.payload_size();
        self.cache.lock().put(id, container, size);
        if let Some(usage) = self.ledger.lock().get_mut(&id) {
            usage.sealed = true;
        }
        // Deregister only after the write landed: a reader racing the seal
        // still resolves the id through `open_by_id`, blocks on the user's
        // entry lock, misses the builder, and falls through to the cache
        // populated above — never to a backend miss.
        self.open_by_id.lock().remove(&id);
        Ok(())
    }

    /// Seals and writes every open container (share and recipe) of every
    /// user, then prunes idle per-user entries so a long-lived server does
    /// not accumulate one entry per user ever seen.
    pub fn flush(&self) -> Result<(), StorageError> {
        // Seal in user order, not HashMap order: a seeded fault-injection
        // replay must see the identical backend op sequence on every run.
        let mut entries: Vec<(u64, Arc<Mutex<OpenContainers>>)> = self
            .open
            .read()
            .iter()
            .map(|(user, entry)| (*user, Arc::clone(entry)))
            .collect();
        entries.sort_by_key(|(user, _)| *user);
        for (_, entry) in entries {
            let mut open = entry.lock();
            self.seal_slot(&mut open.share)?;
            self.seal_slot(&mut open.recipe)?;
        }
        // Keep only entries some thread still holds (an appender racing past
        // the seal loop above — its builder registration also keeps a clone
        // in `open_by_id`) or that still buffer data.
        self.open
            .write()
            .retain(|_, entry| Arc::strong_count(entry) > 1 || entry.lock().builders().count() > 0);
        Ok(())
    }

    /// Seals only the open containers that already carry *dead* bytes — the
    /// ones a garbage-collection pass could go on to reclaim. Unlike
    /// [`ContainerStore::flush`], this leaves other users' in-progress
    /// containers open, so periodic vacuums do not fragment active backup
    /// streams into under-filled containers.
    pub fn flush_dead(&self) -> Result<(), StorageError> {
        let mut entries: Vec<(u64, Arc<Mutex<OpenContainers>>)> = self
            .open
            .read()
            .iter()
            .map(|(user, entry)| (*user, Arc::clone(entry)))
            .collect();
        entries.sort_by_key(|(user, _)| *user);
        for (_, entry) in entries {
            let mut open = entry.lock();
            for kind in [ContainerKind::Share, ContainerKind::Recipe] {
                let slot = open.slot(kind);
                let Some(builder) = slot.as_ref() else {
                    continue;
                };
                let id = builder.id();
                let Some(usage) = self.ledger.lock().get(&id).copied() else {
                    continue;
                };
                if usage.dead_bytes == 0 {
                    continue;
                }
                if usage.live_bytes == 0 {
                    // Every blob is already dead: discard the buffer without
                    // ever writing it to the backend (nothing references it).
                    self.open_by_id.lock().remove(&id);
                    self.ledger.lock().remove(&id);
                    *slot = None;
                } else {
                    self.seal_slot(slot)?;
                }
            }
        }
        Ok(())
    }

    /// Seals the open container with the given id, if it is still open (a
    /// no-op otherwise). Used by compaction to make the fresh containers it
    /// rewrote live shares into durable without disturbing unrelated users'
    /// open containers.
    pub fn seal_open_container(&self, container_id: u64) -> Result<(), StorageError> {
        let Some(entry) = self.open_by_id.lock().get(&container_id).cloned() else {
            return Ok(());
        };
        let mut open = entry.lock();
        for kind in [ContainerKind::Share, ContainerKind::Recipe] {
            let slot = open.slot(kind);
            if slot
                .as_ref()
                .map(|b| b.id() == container_id)
                .unwrap_or(false)
            {
                return self.seal_slot(slot);
            }
        }
        Ok(())
    }

    /// Runs `read` against the open container with the given id, if it is
    /// still open. O(1): resolved through the container-id index rather than
    /// a scan over all users; the builder is read in place under the owning
    /// user's entry lock, never cloned.
    fn with_open_container<R>(
        &self,
        container_id: u64,
        read: impl FnOnce(&ContainerBuilder) -> R,
    ) -> Option<R> {
        // Clone the entry out of the id index before locking it, so this
        // read path never holds both locks at once.
        let entry = self.open_by_id.lock().get(&container_id).cloned()?;
        let open = entry.lock();
        // The builder may have been sealed between the two locks; the caller
        // then falls through to the cache/backend, where the seal landed it.
        let found = open.builders().find(|b| b.id() == container_id).map(read);
        found
    }

    /// Reads the blob at a share location (from the open buffers, the cache,
    /// or the backend — in that order).
    pub fn fetch(&self, location: &ShareLocation) -> Result<Vec<u8>, StorageError> {
        let corrupt =
            || StorageError::Corrupt(format!("container {} misses offset", location.container_id));
        // 1. Open (unsealed) containers: copy out just the one blob.
        if let Some(blob) = self.with_open_container(location.container_id, |builder| {
            builder
                .get_at(location.offset, location.size)
                .map(|s| s.to_vec())
        }) {
            self.stats.open_buffer_reads.fetch_add(1, Ordering::Relaxed);
            return blob.ok_or_else(corrupt);
        }
        // 2. The LRU cache.
        if let Some(container) = self.cache.lock().get(&location.container_id) {
            self.stats.cache_reads.fetch_add(1, Ordering::Relaxed);
            return container
                .get_at(location.offset, location.size)
                .map(|s| s.to_vec())
                .ok_or_else(corrupt);
        }
        // 3. The backend.
        let key = Self::object_key(location.container_id);
        let bytes = self.backend.get(&key)?;
        self.stats.backend_reads.fetch_add(1, Ordering::Relaxed);
        let container =
            Container::from_bytes(&bytes).ok_or_else(|| StorageError::Corrupt(key.clone()))?;
        let blob = container
            .get_at(location.offset, location.size)
            .map(|s| s.to_vec());
        let size = container.payload_size();
        self.cache
            .lock()
            .put(location.container_id, container, size);
        blob.ok_or(StorageError::Corrupt(key))
    }

    /// Reads a whole container by id (used by repair and garbage collection).
    pub fn fetch_container(&self, container_id: u64) -> Result<Container, StorageError> {
        // Whole-container reads (repair/GC) are the one case that really
        // needs a sealed snapshot of the open buffer.
        if let Some(container) = self.with_open_container(container_id, |b| b.clone().seal()) {
            self.stats.open_buffer_reads.fetch_add(1, Ordering::Relaxed);
            return Ok(container);
        }
        if let Some(container) = self.cache.lock().get(&container_id) {
            self.stats.cache_reads.fetch_add(1, Ordering::Relaxed);
            return Ok(container.clone());
        }
        let key = Self::object_key(container_id);
        let bytes = self.backend.get(&key)?;
        self.stats.backend_reads.fetch_add(1, Ordering::Relaxed);
        Container::from_bytes(&bytes).ok_or(StorageError::Corrupt(key))
    }

    /// Deletes a sealed container from the backend (garbage collection) and
    /// drops its ledger entry.
    pub fn delete_container(&self, container_id: u64) -> Result<(), StorageError> {
        self.cache.lock().remove(&container_id);
        self.ledger.lock().remove(&container_id);
        self.backend.delete(&Self::object_key(container_id))
    }

    /// Marks the blob at `location` dead: its last reference was dropped, so
    /// its bytes move from the container's live column to its dead column.
    /// Tolerant of unknown container ids (the container may already have been
    /// reclaimed by a concurrent vacuum).
    pub fn release(&self, location: &ShareLocation) {
        if let Some(usage) = self.ledger.lock().get_mut(&location.container_id) {
            let bytes = location.size as u64;
            usage.live_bytes = usage.live_bytes.saturating_sub(bytes);
            usage.dead_bytes += bytes;
        }
    }

    /// The liveness ledger entry of one container, if tracked.
    pub fn container_usage(&self, container_id: u64) -> Option<ContainerUsage> {
        self.ledger.lock().get(&container_id).copied()
    }

    /// Snapshot of every *sealed* container's liveness accounting — the
    /// candidate set a garbage-collection pass works from.
    pub fn sealed_usages(&self) -> Vec<(u64, ContainerUsage)> {
        self.ledger
            .lock()
            .iter()
            .filter(|(_, usage)| usage.sealed)
            .map(|(&id, &usage)| (id, usage))
            .collect()
    }

    /// Aggregate live/dead byte counts across all tracked containers.
    pub fn utilisation(&self) -> StoreUtilisation {
        let ledger = self.ledger.lock();
        let mut total = StoreUtilisation::default();
        for usage in ledger.values() {
            total.live_bytes += usage.live_bytes;
            total.dead_bytes += usage.dead_bytes;
            total.containers += 1;
        }
        total
    }

    /// Returns the I/O counters.
    pub fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    /// Container bytes currently stored at the backend. Journal objects
    /// (checkpoints, WAL segments) share the backend but are bookkeeping,
    /// not payload, so they are excluded here.
    pub fn backend_bytes(&self) -> Result<u64, StorageError> {
        let mut total = 0u64;
        for key in self.backend.list()? {
            if parse_container_key(&key).is_some() {
                total += self.backend.object_size(&key)?;
            }
        }
        Ok(total)
    }

    /// The storage backend this store writes to (shared with the metadata
    /// journal, and the handle recovery re-opens a server from).
    pub fn backend(&self) -> Arc<dyn StorageBackend> {
        self.backend.clone()
    }

    /// Size in bytes of a sealed container's backend object (header framing
    /// included). Recovery's ledger rebuild uses it to bound a container's
    /// dead bytes without downloading its payload.
    pub fn backend_container_size(&self, container_id: u64) -> Result<u64, StorageError> {
        self.backend.object_size(&Self::object_key(container_id))
    }

    /// The ids of every container object present on the backend — the
    /// starting point of the recovery container scan. All of them are
    /// sealed: open containers live only in memory.
    pub fn backend_container_ids(&self) -> Result<Vec<u64>, StorageError> {
        Ok(self
            .backend
            .list()?
            .iter()
            .filter_map(|k| parse_container_key(k))
            .collect())
    }

    /// Replaces the liveness ledger with recovered accounting (used by
    /// server recovery after it has cross-checked the rebuilt indices
    /// against the sealed container headers).
    pub fn restore_ledger(&self, entries: impl IntoIterator<Item = (u64, ContainerUsage)>) {
        let mut ledger = self.ledger.lock();
        ledger.clear();
        ledger.extend(entries);
    }

    /// Raises the container-id allocator to at least `floor`, so containers
    /// created after a recovery never collide with ids already present on
    /// the backend or referenced by the recovered indices.
    pub fn bump_next_container_id(&self, floor: u64) {
        self.next_container_id.fetch_max(floor, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;
    use crate::container::CONTAINER_CAPACITY;

    fn fp(i: u32) -> Fingerprint {
        Fingerprint::of(&i.to_be_bytes())
    }

    fn new_store() -> (ContainerStore, Arc<MemoryBackend>) {
        let backend = Arc::new(MemoryBackend::new());
        (ContainerStore::new(backend.clone()), backend)
    }

    #[test]
    fn store_and_fetch_from_open_buffer() {
        let (store, backend) = new_store();
        let loc = store.store_share(1, fp(1), b"buffered share").unwrap();
        // Not yet written to the backend.
        assert_eq!(backend.object_count(), 0);
        assert_eq!(store.fetch(&loc).unwrap(), b"buffered share");
        assert_eq!(store.stats().open_buffer_reads, 1);
    }

    #[test]
    fn flush_writes_containers_and_fetch_uses_cache_then_backend() {
        let (store, backend) = new_store();
        let loc = store.store_share(1, fp(1), b"first").unwrap();
        let loc2 = store.store_share(1, fp(2), b"second").unwrap();
        assert_eq!(loc.container_id, loc2.container_id);
        store.flush().unwrap();
        assert_eq!(backend.object_count(), 1);
        // First fetch after flush hits the cache (the seal populated it).
        assert_eq!(store.fetch(&loc).unwrap(), b"first");
        assert_eq!(store.stats().cache_reads, 1);
        // A store with an empty cache goes to the backend.
        let cold = ContainerStore::with_cache_bytes(backend.clone(), 1024 * 1024);
        assert_eq!(cold.fetch(&loc2).unwrap(), b"second");
        assert_eq!(cold.stats().backend_reads, 1);
        // And the second read of the same container is a cache hit.
        assert_eq!(cold.fetch(&loc).unwrap(), b"first");
        assert_eq!(cold.stats().cache_reads, 1);
    }

    #[test]
    fn containers_seal_automatically_at_capacity() {
        let (store, backend) = new_store();
        let blob = vec![0xaau8; 1024 * 1024]; // 1 MB
        let mut container_ids = std::collections::HashSet::new();
        for i in 0..9u32 {
            let loc = store.store_share(1, fp(i), &blob).unwrap();
            container_ids.insert(loc.container_id);
        }
        // 9 MB of shares at a 4 MB cap: at least three containers, at least
        // two of which were sealed and written out automatically.
        assert!(container_ids.len() >= 3);
        assert!(backend.object_count() >= 2);
        assert!(store.stats().bytes_written >= 2 * CONTAINER_CAPACITY as u64);
    }

    #[test]
    fn containers_are_per_user() {
        let (store, _) = new_store();
        let loc_a = store.store_share(1, fp(1), b"user1 data").unwrap();
        let loc_b = store.store_share(2, fp(2), b"user2 data").unwrap();
        assert_ne!(loc_a.container_id, loc_b.container_id);
    }

    #[test]
    fn recipes_and_shares_use_separate_containers() {
        let (store, _) = new_store();
        let share_loc = store.store_share(1, fp(1), b"share").unwrap();
        let recipe_loc = store.store_recipe(1, fp(2), b"recipe").unwrap();
        assert_ne!(share_loc.container_id, recipe_loc.container_id);
        assert_eq!(store.fetch(&recipe_loc).unwrap(), b"recipe");
    }

    #[test]
    fn fetch_missing_container_fails() {
        let (store, _) = new_store();
        let bogus = ShareLocation {
            container_id: 999,
            offset: 0,
            size: 4,
        };
        assert!(matches!(
            store.fetch(&bogus),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn delete_container_removes_backend_object() {
        let (store, backend) = new_store();
        let loc = store.store_share(1, fp(1), b"to be deleted").unwrap();
        store.flush().unwrap();
        assert_eq!(backend.object_count(), 1);
        store.delete_container(loc.container_id).unwrap();
        assert_eq!(backend.object_count(), 0);
        assert!(store.fetch(&loc).is_err());
    }

    #[test]
    fn fetch_container_returns_all_entries() {
        let (store, _) = new_store();
        let loc = store.store_share(3, fp(1), b"a").unwrap();
        store.store_share(3, fp(2), b"bb").unwrap();
        store.flush().unwrap();
        let container = store.fetch_container(loc.container_id).unwrap();
        assert_eq!(container.entry_count(), 2);
        assert_eq!(container.get(&fp(2)).unwrap(), b"bb");
    }

    /// A backend whose writes can be made to fail on demand.
    struct FlakyBackend {
        inner: MemoryBackend,
        fail_puts: std::sync::atomic::AtomicBool,
    }

    impl FlakyBackend {
        fn set_failing(&self, failing: bool) {
            self.fail_puts
                .store(failing, std::sync::atomic::Ordering::SeqCst);
        }
    }

    impl crate::backend::StorageBackend for FlakyBackend {
        fn put(&self, key: &str, data: &[u8]) -> Result<(), StorageError> {
            if self.fail_puts.load(std::sync::atomic::Ordering::SeqCst) {
                return Err(StorageError::Io(std::io::Error::other("disk full")));
            }
            self.inner.put(key, data)
        }

        fn get(&self, key: &str) -> Result<Vec<u8>, StorageError> {
            self.inner.get(key)
        }

        fn delete(&self, key: &str) -> Result<(), StorageError> {
            self.inner.delete(key)
        }

        fn exists(&self, key: &str) -> Result<bool, StorageError> {
            self.inner.exists(key)
        }

        fn list(&self) -> Result<Vec<String>, StorageError> {
            self.inner.list()
        }
    }

    #[test]
    fn failed_seal_keeps_buffered_blobs_readable_and_retries() {
        let backend = Arc::new(FlakyBackend {
            inner: MemoryBackend::new(),
            fail_puts: std::sync::atomic::AtomicBool::new(false),
        });
        let store = ContainerStore::new(backend.clone());
        let loc = store.store_share(1, fp(1), b"already indexed").unwrap();

        // The backend starts failing; an overflowing append cannot seal.
        backend.set_failing(true);
        let big = vec![0u8; CONTAINER_CAPACITY];
        assert!(store.store_share(1, fp(2), &big).is_err());
        assert!(store.flush().is_err());
        // The previously returned location still reads from the open buffer:
        // a failed seal must not drop blobs the share index already points at.
        assert_eq!(store.fetch(&loc).unwrap(), b"already indexed");

        // Once the backend recovers, the seal retries and everything lands.
        backend.set_failing(false);
        store.flush().unwrap();
        assert_eq!(store.fetch(&loc).unwrap(), b"already indexed");
        assert!(backend.inner.object_count() >= 1);
    }

    #[test]
    fn flush_prunes_idle_user_entries() {
        let (store, _) = new_store();
        store.store_share(1, fp(1), b"x").unwrap();
        store.store_share(2, fp(2), b"y").unwrap();
        assert_eq!(store.open.read().len(), 2);
        assert_eq!(store.open_by_id.lock().len(), 2);
        store.flush().unwrap();
        assert_eq!(store.open.read().len(), 0, "idle user entries are pruned");
        assert!(store.open_by_id.lock().is_empty());
        // The store keeps working after pruning.
        let loc = store.store_share(1, fp(3), b"z").unwrap();
        assert_eq!(store.fetch(&loc).unwrap(), b"z");
        assert_eq!(store.open_by_id.lock().len(), 1);
    }

    #[test]
    fn concurrent_appenders_get_disjoint_locations() {
        let (store, _) = new_store();
        let users = 4u64;
        let per_user = 200u32;
        let locations = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..users)
                .map(|user| {
                    let store = &store;
                    scope.spawn(move || {
                        (0..per_user)
                            .map(|i| {
                                let data = vec![user as u8; 1000 + i as usize];
                                let loc = store
                                    .store_share(user, fp(user as u32 * 1000 + i), &data)
                                    .unwrap();
                                (loc, data)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        // Every blob reads back exactly, before and after flush.
        for (loc, data) in &locations {
            assert_eq!(&store.fetch(loc).unwrap(), data);
        }
        store.flush().unwrap();
        for (loc, data) in &locations {
            assert_eq!(&store.fetch(loc).unwrap(), data);
        }
        // Container ids are unique per (container, offset) location.
        let mut seen = std::collections::HashSet::new();
        for (loc, _) in &locations {
            assert!(seen.insert((loc.container_id, loc.offset)));
        }
    }

    #[test]
    fn ledger_tracks_live_dead_and_sealed_state() {
        let (store, _) = new_store();
        let loc_a = store.store_share(1, fp(1), &vec![1u8; 600]).unwrap();
        let loc_b = store.store_share(1, fp(2), &vec![2u8; 400]).unwrap();
        assert_eq!(loc_a.container_id, loc_b.container_id);
        let usage = store.container_usage(loc_a.container_id).unwrap();
        assert_eq!(usage.kind, ContainerKind::Share);
        assert_eq!(usage.live_bytes, 1000);
        assert_eq!(usage.dead_bytes, 0);
        assert!(!usage.sealed);
        // Not sealed yet, so not a reclamation candidate.
        assert!(store.sealed_usages().is_empty());

        store.flush().unwrap();
        let usage = store.container_usage(loc_a.container_id).unwrap();
        assert!(usage.sealed);
        assert_eq!(store.sealed_usages(), vec![(loc_a.container_id, usage)]);

        // Releasing one blob moves its bytes to the dead column.
        store.release(&loc_a);
        let usage = store.container_usage(loc_a.container_id).unwrap();
        assert_eq!(usage.live_bytes, 400);
        assert_eq!(usage.dead_bytes, 600);
        assert!((usage.dead_ratio() - 0.6).abs() < 1e-9);

        // Releasing the rest makes it fully dead.
        store.release(&loc_b);
        let usage = store.container_usage(loc_a.container_id).unwrap();
        assert_eq!(usage.live_bytes, 0);
        assert!((usage.dead_ratio() - 1.0).abs() < 1e-9);

        // Deleting the container drops the ledger entry; further releases on
        // the dead id are no-ops.
        store.delete_container(loc_a.container_id).unwrap();
        assert!(store.container_usage(loc_a.container_id).is_none());
        store.release(&loc_a);
        assert_eq!(store.utilisation(), StoreUtilisation::default());
    }

    #[test]
    fn ledger_separates_share_and_recipe_containers() {
        let (store, _) = new_store();
        let share = store.store_share(1, fp(1), &[0u8; 100]).unwrap();
        let recipe = store.store_recipe(1, fp(2), &[0u8; 50]).unwrap();
        assert_eq!(
            store.container_usage(share.container_id).unwrap().kind,
            ContainerKind::Share
        );
        assert_eq!(
            store.container_usage(recipe.container_id).unwrap().kind,
            ContainerKind::Recipe
        );
        let total = store.utilisation();
        assert_eq!(total.live_bytes, 150);
        assert_eq!(total.dead_bytes, 0);
        assert_eq!(total.containers, 2);
    }

    #[test]
    fn flush_dead_seals_only_containers_with_dead_bytes() {
        let (store, backend) = new_store();
        let dying = store.store_share(1, fp(1), &[1u8; 100]).unwrap();
        let surviving = store.store_share(1, fp(2), &[2u8; 50]).unwrap();
        assert_eq!(dying.container_id, surviving.container_id);
        let clean = store.store_share(2, fp(3), &[3u8; 70]).unwrap();
        store.release(&dying);

        store.flush_dead().unwrap();
        // User 1's container carried dead bytes (and a live blob): sealed.
        assert!(store.container_usage(dying.container_id).unwrap().sealed);
        assert_eq!(store.fetch(&surviving).unwrap(), vec![2u8; 50]);
        // User 2's clean in-progress container stayed open and unwritten.
        assert!(!store.container_usage(clean.container_id).unwrap().sealed);
        assert_eq!(backend.object_count(), 1);

        // A fully dead open container is discarded without a backend write.
        let doomed = store.store_share(3, fp(4), &[4u8; 40]).unwrap();
        store.release(&doomed);
        store.flush_dead().unwrap();
        assert!(store.container_usage(doomed.container_id).is_none());
        assert_eq!(backend.object_count(), 1);
        assert!(store.fetch(&doomed).is_err());

        // seal_open_container seals exactly the requested container.
        store.seal_open_container(clean.container_id).unwrap();
        assert!(store.container_usage(clean.container_id).unwrap().sealed);
        assert_eq!(store.fetch(&clean).unwrap(), vec![3u8; 70]);
        // Sealing an id that is no longer open is a no-op.
        store.seal_open_container(clean.container_id).unwrap();
        store.seal_open_container(9999).unwrap();
    }

    #[test]
    fn discarded_empty_builders_leave_no_ledger_entry() {
        let (store, _) = new_store();
        store.store_share(1, fp(1), b"x").unwrap();
        store.flush().unwrap();
        // Flush again: no open builders, ledger must not grow.
        store.flush().unwrap();
        assert_eq!(store.utilisation().containers, 1);
    }

    #[test]
    fn corrupt_backend_object_is_reported() {
        let (store, backend) = new_store();
        let loc = store.store_share(1, fp(1), b"soon corrupt").unwrap();
        store.flush().unwrap();
        backend
            .corrupt(&ContainerStore::object_key(loc.container_id), 0)
            .unwrap();
        let cold = ContainerStore::new(backend);
        assert!(matches!(cold.fetch(&loc), Err(StorageError::Corrupt(_))));
    }
}
