//! [`ContainerStore`]: the server-side component that buffers shares and
//! recipes into containers, writes sealed containers to the backend, and
//! serves reads through an LRU container cache.
//!
//! The store is designed for concurrent clients: containers are single-user
//! (§4.5), so each user's open containers sit behind their own append lock,
//! container ids come from an atomic counter, the read cache has its own
//! mutex, and the I/O counters are atomics. Two users appending shares at the
//! same time never contend on a common lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cdstore_crypto::Fingerprint;
use cdstore_index::ShareLocation;
use parking_lot::{Mutex, RwLock};

use crate::backend::{StorageBackend, StorageError};
use crate::cache::LruCache;
use crate::container::{Container, ContainerBuilder, ContainerKind};

/// Default size of the container read cache (64 MB, i.e. sixteen 4 MB
/// containers).
pub const DEFAULT_CACHE_BYTES: usize = 64 * 1024 * 1024;

/// Counters describing the I/O behaviour of a container store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Sealed containers written to the backend.
    pub containers_written: u64,
    /// Total payload bytes written to the backend.
    pub bytes_written: u64,
    /// Container reads served from the open (unsealed) buffers.
    pub open_buffer_reads: u64,
    /// Container reads served from the LRU cache.
    pub cache_reads: u64,
    /// Container reads that had to touch the backend.
    pub backend_reads: u64,
}

/// Lock-free counterpart of [`StoreStats`].
#[derive(Default)]
struct AtomicStoreStats {
    containers_written: AtomicU64,
    bytes_written: AtomicU64,
    open_buffer_reads: AtomicU64,
    cache_reads: AtomicU64,
    backend_reads: AtomicU64,
}

impl AtomicStoreStats {
    fn snapshot(&self) -> StoreStats {
        StoreStats {
            containers_written: self.containers_written.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            open_buffer_reads: self.open_buffer_reads.load(Ordering::Relaxed),
            cache_reads: self.cache_reads.load(Ordering::Relaxed),
            backend_reads: self.backend_reads.load(Ordering::Relaxed),
        }
    }
}

/// One user's open (unsealed) containers: at most one share container and
/// one recipe container at a time (§4.5).
#[derive(Default)]
struct OpenContainers {
    share: Option<ContainerBuilder>,
    recipe: Option<ContainerBuilder>,
}

impl OpenContainers {
    fn slot(&mut self, kind: ContainerKind) -> &mut Option<ContainerBuilder> {
        match kind {
            ContainerKind::Share => &mut self.share,
            ContainerKind::Recipe => &mut self.recipe,
        }
    }

    fn builders(&self) -> impl Iterator<Item = &ContainerBuilder> {
        self.share.iter().chain(self.recipe.iter())
    }
}

/// Manages share and recipe containers on top of a storage backend.
///
/// All methods take `&self`; the store is `Send + Sync` and safe to share
/// across server worker threads.
pub struct ContainerStore {
    backend: Arc<dyn StorageBackend>,
    next_container_id: AtomicU64,
    /// Per-user append locks over the open containers. The outer `RwLock`
    /// only guards the map shape (inserting a new user's entry); appends
    /// take the inner per-user mutex. Idle entries are pruned on `flush`.
    open: RwLock<HashMap<u64, Arc<Mutex<OpenContainers>>>>,
    /// Container id → owning user's entry, for every currently *open*
    /// container, so reads resolve open containers in O(1) instead of
    /// scanning all users. Maintained on builder creation and sealing.
    open_by_id: Mutex<HashMap<u64, Arc<Mutex<OpenContainers>>>>,
    cache: Mutex<LruCache<u64, Container>>,
    stats: AtomicStoreStats,
}

impl ContainerStore {
    /// Creates a container store over the given backend with the default
    /// cache size.
    pub fn new(backend: Arc<dyn StorageBackend>) -> Self {
        Self::with_cache_bytes(backend, DEFAULT_CACHE_BYTES)
    }

    /// Creates a container store with an explicit cache budget.
    pub fn with_cache_bytes(backend: Arc<dyn StorageBackend>, cache_bytes: usize) -> Self {
        ContainerStore {
            backend,
            next_container_id: AtomicU64::new(1),
            open: RwLock::new(HashMap::new()),
            open_by_id: Mutex::new(HashMap::new()),
            cache: Mutex::new(LruCache::new(cache_bytes)),
            stats: AtomicStoreStats::default(),
        }
    }

    fn object_key(container_id: u64) -> String {
        format!("container-{container_id:016x}")
    }

    /// Returns the user's open-container entry, creating it if needed.
    fn user_entry(&self, user: u64) -> Arc<Mutex<OpenContainers>> {
        if let Some(entry) = self.open.read().get(&user) {
            return entry.clone();
        }
        self.open.write().entry(user).or_default().clone()
    }

    /// Appends a share to the user's open share container, returning where it
    /// will live. The open container is sealed and written out when it
    /// reaches the 4 MB cap.
    pub fn store_share(
        &self,
        user: u64,
        fingerprint: Fingerprint,
        data: &[u8],
    ) -> Result<ShareLocation, StorageError> {
        self.store_blob(user, fingerprint, data, ContainerKind::Share)
    }

    /// Appends a file recipe to the user's open recipe container, returning
    /// its location.
    pub fn store_recipe(
        &self,
        user: u64,
        fingerprint: Fingerprint,
        data: &[u8],
    ) -> Result<ShareLocation, StorageError> {
        self.store_blob(user, fingerprint, data, ContainerKind::Recipe)
    }

    fn store_blob(
        &self,
        user: u64,
        fingerprint: Fingerprint,
        data: &[u8],
        kind: ContainerKind,
    ) -> Result<ShareLocation, StorageError> {
        let entry = self.user_entry(user);
        let mut open = entry.lock();
        let slot = open.slot(kind);
        // Seal the open container first if this blob would overflow it.
        if slot
            .as_ref()
            .map(|b| b.would_overflow(data.len()))
            .unwrap_or(false)
        {
            self.seal_slot(slot)?;
        }
        let builder = open.slot(kind).get_or_insert_with(|| {
            let id = self.next_container_id.fetch_add(1, Ordering::Relaxed);
            self.open_by_id.lock().insert(id, entry.clone());
            ContainerBuilder::new(id, user, kind)
        });
        let offset = builder.append(fingerprint, data);
        Ok(ShareLocation {
            container_id: builder.id(),
            offset,
            size: data.len() as u32,
        })
    }

    /// Seals the builder in `slot` (if any) and writes it to the backend and
    /// the read cache. On success the slot is left empty; if the backend
    /// write fails the builder is put back, so blobs whose locations were
    /// already handed out stay readable from the open buffer and the next
    /// seal attempt (overflow or flush) retries the write.
    fn seal_slot(&self, slot: &mut Option<ContainerBuilder>) -> Result<(), StorageError> {
        let Some(builder) = slot.take() else {
            return Ok(());
        };
        let id = builder.id();
        if builder.is_empty() {
            self.open_by_id.lock().remove(&id);
            return Ok(());
        }
        let container = builder.seal();
        let bytes = container.to_bytes();
        if let Err(e) = self.backend.put(&Self::object_key(id), &bytes) {
            *slot = Some(container.reopen());
            return Err(e);
        }
        self.stats
            .containers_written
            .fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes_written
            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        let size = container.payload_size();
        self.cache.lock().put(id, container, size);
        // Deregister only after the write landed: a reader racing the seal
        // still resolves the id through `open_by_id`, blocks on the user's
        // entry lock, misses the builder, and falls through to the cache
        // populated above — never to a backend miss.
        self.open_by_id.lock().remove(&id);
        Ok(())
    }

    /// Seals and writes every open container (share and recipe) of every
    /// user, then prunes idle per-user entries so a long-lived server does
    /// not accumulate one entry per user ever seen.
    pub fn flush(&self) -> Result<(), StorageError> {
        let entries: Vec<Arc<Mutex<OpenContainers>>> = self.open.read().values().cloned().collect();
        for entry in entries {
            let mut open = entry.lock();
            self.seal_slot(&mut open.share)?;
            self.seal_slot(&mut open.recipe)?;
        }
        // Keep only entries some thread still holds (an appender racing past
        // the seal loop above — its builder registration also keeps a clone
        // in `open_by_id`) or that still buffer data.
        self.open
            .write()
            .retain(|_, entry| Arc::strong_count(entry) > 1 || entry.lock().builders().count() > 0);
        Ok(())
    }

    /// Runs `read` against the open container with the given id, if it is
    /// still open. O(1): resolved through the container-id index rather than
    /// a scan over all users; the builder is read in place under the owning
    /// user's entry lock, never cloned.
    fn with_open_container<R>(
        &self,
        container_id: u64,
        read: impl FnOnce(&ContainerBuilder) -> R,
    ) -> Option<R> {
        // Clone the entry out of the id index before locking it, so this
        // read path never holds both locks at once.
        let entry = self.open_by_id.lock().get(&container_id).cloned()?;
        let open = entry.lock();
        // The builder may have been sealed between the two locks; the caller
        // then falls through to the cache/backend, where the seal landed it.
        let found = open.builders().find(|b| b.id() == container_id).map(read);
        found
    }

    /// Reads the blob at a share location (from the open buffers, the cache,
    /// or the backend — in that order).
    pub fn fetch(&self, location: &ShareLocation) -> Result<Vec<u8>, StorageError> {
        let corrupt =
            || StorageError::Corrupt(format!("container {} misses offset", location.container_id));
        // 1. Open (unsealed) containers: copy out just the one blob.
        if let Some(blob) = self.with_open_container(location.container_id, |builder| {
            builder
                .get_at(location.offset, location.size)
                .map(|s| s.to_vec())
        }) {
            self.stats.open_buffer_reads.fetch_add(1, Ordering::Relaxed);
            return blob.ok_or_else(corrupt);
        }
        // 2. The LRU cache.
        if let Some(container) = self.cache.lock().get(&location.container_id) {
            self.stats.cache_reads.fetch_add(1, Ordering::Relaxed);
            return container
                .get_at(location.offset, location.size)
                .map(|s| s.to_vec())
                .ok_or_else(corrupt);
        }
        // 3. The backend.
        let key = Self::object_key(location.container_id);
        let bytes = self.backend.get(&key)?;
        self.stats.backend_reads.fetch_add(1, Ordering::Relaxed);
        let container =
            Container::from_bytes(&bytes).ok_or_else(|| StorageError::Corrupt(key.clone()))?;
        let blob = container
            .get_at(location.offset, location.size)
            .map(|s| s.to_vec());
        let size = container.payload_size();
        self.cache
            .lock()
            .put(location.container_id, container, size);
        blob.ok_or(StorageError::Corrupt(key))
    }

    /// Reads a whole container by id (used by repair and garbage collection).
    pub fn fetch_container(&self, container_id: u64) -> Result<Container, StorageError> {
        // Whole-container reads (repair/GC) are the one case that really
        // needs a sealed snapshot of the open buffer.
        if let Some(container) = self.with_open_container(container_id, |b| b.clone().seal()) {
            self.stats.open_buffer_reads.fetch_add(1, Ordering::Relaxed);
            return Ok(container);
        }
        if let Some(container) = self.cache.lock().get(&container_id) {
            self.stats.cache_reads.fetch_add(1, Ordering::Relaxed);
            return Ok(container.clone());
        }
        let key = Self::object_key(container_id);
        let bytes = self.backend.get(&key)?;
        self.stats.backend_reads.fetch_add(1, Ordering::Relaxed);
        Container::from_bytes(&bytes).ok_or(StorageError::Corrupt(key))
    }

    /// Deletes a sealed container from the backend (garbage collection).
    pub fn delete_container(&self, container_id: u64) -> Result<(), StorageError> {
        self.cache.lock().remove(&container_id);
        self.backend.delete(&Self::object_key(container_id))
    }

    /// Returns the I/O counters.
    pub fn stats(&self) -> StoreStats {
        self.stats.snapshot()
    }

    /// Total bytes currently stored at the backend.
    pub fn backend_bytes(&self) -> Result<u64, StorageError> {
        self.backend.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;
    use crate::container::CONTAINER_CAPACITY;

    fn fp(i: u32) -> Fingerprint {
        Fingerprint::of(&i.to_be_bytes())
    }

    fn new_store() -> (ContainerStore, Arc<MemoryBackend>) {
        let backend = Arc::new(MemoryBackend::new());
        (ContainerStore::new(backend.clone()), backend)
    }

    #[test]
    fn store_and_fetch_from_open_buffer() {
        let (store, backend) = new_store();
        let loc = store.store_share(1, fp(1), b"buffered share").unwrap();
        // Not yet written to the backend.
        assert_eq!(backend.object_count(), 0);
        assert_eq!(store.fetch(&loc).unwrap(), b"buffered share");
        assert_eq!(store.stats().open_buffer_reads, 1);
    }

    #[test]
    fn flush_writes_containers_and_fetch_uses_cache_then_backend() {
        let (store, backend) = new_store();
        let loc = store.store_share(1, fp(1), b"first").unwrap();
        let loc2 = store.store_share(1, fp(2), b"second").unwrap();
        assert_eq!(loc.container_id, loc2.container_id);
        store.flush().unwrap();
        assert_eq!(backend.object_count(), 1);
        // First fetch after flush hits the cache (the seal populated it).
        assert_eq!(store.fetch(&loc).unwrap(), b"first");
        assert_eq!(store.stats().cache_reads, 1);
        // A store with an empty cache goes to the backend.
        let cold = ContainerStore::with_cache_bytes(backend.clone(), 1024 * 1024);
        assert_eq!(cold.fetch(&loc2).unwrap(), b"second");
        assert_eq!(cold.stats().backend_reads, 1);
        // And the second read of the same container is a cache hit.
        assert_eq!(cold.fetch(&loc).unwrap(), b"first");
        assert_eq!(cold.stats().cache_reads, 1);
    }

    #[test]
    fn containers_seal_automatically_at_capacity() {
        let (store, backend) = new_store();
        let blob = vec![0xaau8; 1024 * 1024]; // 1 MB
        let mut container_ids = std::collections::HashSet::new();
        for i in 0..9u32 {
            let loc = store.store_share(1, fp(i), &blob).unwrap();
            container_ids.insert(loc.container_id);
        }
        // 9 MB of shares at a 4 MB cap: at least three containers, at least
        // two of which were sealed and written out automatically.
        assert!(container_ids.len() >= 3);
        assert!(backend.object_count() >= 2);
        assert!(store.stats().bytes_written >= 2 * CONTAINER_CAPACITY as u64);
    }

    #[test]
    fn containers_are_per_user() {
        let (store, _) = new_store();
        let loc_a = store.store_share(1, fp(1), b"user1 data").unwrap();
        let loc_b = store.store_share(2, fp(2), b"user2 data").unwrap();
        assert_ne!(loc_a.container_id, loc_b.container_id);
    }

    #[test]
    fn recipes_and_shares_use_separate_containers() {
        let (store, _) = new_store();
        let share_loc = store.store_share(1, fp(1), b"share").unwrap();
        let recipe_loc = store.store_recipe(1, fp(2), b"recipe").unwrap();
        assert_ne!(share_loc.container_id, recipe_loc.container_id);
        assert_eq!(store.fetch(&recipe_loc).unwrap(), b"recipe");
    }

    #[test]
    fn fetch_missing_container_fails() {
        let (store, _) = new_store();
        let bogus = ShareLocation {
            container_id: 999,
            offset: 0,
            size: 4,
        };
        assert!(matches!(
            store.fetch(&bogus),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn delete_container_removes_backend_object() {
        let (store, backend) = new_store();
        let loc = store.store_share(1, fp(1), b"to be deleted").unwrap();
        store.flush().unwrap();
        assert_eq!(backend.object_count(), 1);
        store.delete_container(loc.container_id).unwrap();
        assert_eq!(backend.object_count(), 0);
        assert!(store.fetch(&loc).is_err());
    }

    #[test]
    fn fetch_container_returns_all_entries() {
        let (store, _) = new_store();
        let loc = store.store_share(3, fp(1), b"a").unwrap();
        store.store_share(3, fp(2), b"bb").unwrap();
        store.flush().unwrap();
        let container = store.fetch_container(loc.container_id).unwrap();
        assert_eq!(container.entry_count(), 2);
        assert_eq!(container.get(&fp(2)).unwrap(), b"bb");
    }

    /// A backend whose writes can be made to fail on demand.
    struct FlakyBackend {
        inner: MemoryBackend,
        fail_puts: std::sync::atomic::AtomicBool,
    }

    impl FlakyBackend {
        fn set_failing(&self, failing: bool) {
            self.fail_puts
                .store(failing, std::sync::atomic::Ordering::SeqCst);
        }
    }

    impl crate::backend::StorageBackend for FlakyBackend {
        fn put(&self, key: &str, data: &[u8]) -> Result<(), StorageError> {
            if self.fail_puts.load(std::sync::atomic::Ordering::SeqCst) {
                return Err(StorageError::Io(std::io::Error::other("disk full")));
            }
            self.inner.put(key, data)
        }

        fn get(&self, key: &str) -> Result<Vec<u8>, StorageError> {
            self.inner.get(key)
        }

        fn delete(&self, key: &str) -> Result<(), StorageError> {
            self.inner.delete(key)
        }

        fn exists(&self, key: &str) -> Result<bool, StorageError> {
            self.inner.exists(key)
        }

        fn list(&self) -> Result<Vec<String>, StorageError> {
            self.inner.list()
        }
    }

    #[test]
    fn failed_seal_keeps_buffered_blobs_readable_and_retries() {
        let backend = Arc::new(FlakyBackend {
            inner: MemoryBackend::new(),
            fail_puts: std::sync::atomic::AtomicBool::new(false),
        });
        let store = ContainerStore::new(backend.clone());
        let loc = store.store_share(1, fp(1), b"already indexed").unwrap();

        // The backend starts failing; an overflowing append cannot seal.
        backend.set_failing(true);
        let big = vec![0u8; CONTAINER_CAPACITY];
        assert!(store.store_share(1, fp(2), &big).is_err());
        assert!(store.flush().is_err());
        // The previously returned location still reads from the open buffer:
        // a failed seal must not drop blobs the share index already points at.
        assert_eq!(store.fetch(&loc).unwrap(), b"already indexed");

        // Once the backend recovers, the seal retries and everything lands.
        backend.set_failing(false);
        store.flush().unwrap();
        assert_eq!(store.fetch(&loc).unwrap(), b"already indexed");
        assert!(backend.inner.object_count() >= 1);
    }

    #[test]
    fn flush_prunes_idle_user_entries() {
        let (store, _) = new_store();
        store.store_share(1, fp(1), b"x").unwrap();
        store.store_share(2, fp(2), b"y").unwrap();
        assert_eq!(store.open.read().len(), 2);
        assert_eq!(store.open_by_id.lock().len(), 2);
        store.flush().unwrap();
        assert_eq!(store.open.read().len(), 0, "idle user entries are pruned");
        assert!(store.open_by_id.lock().is_empty());
        // The store keeps working after pruning.
        let loc = store.store_share(1, fp(3), b"z").unwrap();
        assert_eq!(store.fetch(&loc).unwrap(), b"z");
        assert_eq!(store.open_by_id.lock().len(), 1);
    }

    #[test]
    fn concurrent_appenders_get_disjoint_locations() {
        let (store, _) = new_store();
        let users = 4u64;
        let per_user = 200u32;
        let locations = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..users)
                .map(|user| {
                    let store = &store;
                    scope.spawn(move || {
                        (0..per_user)
                            .map(|i| {
                                let data = vec![user as u8; 1000 + i as usize];
                                let loc = store
                                    .store_share(user, fp(user as u32 * 1000 + i), &data)
                                    .unwrap();
                                (loc, data)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        // Every blob reads back exactly, before and after flush.
        for (loc, data) in &locations {
            assert_eq!(&store.fetch(loc).unwrap(), data);
        }
        store.flush().unwrap();
        for (loc, data) in &locations {
            assert_eq!(&store.fetch(loc).unwrap(), data);
        }
        // Container ids are unique per (container, offset) location.
        let mut seen = std::collections::HashSet::new();
        for (loc, _) in &locations {
            assert!(seen.insert((loc.container_id, loc.offset)));
        }
    }

    #[test]
    fn corrupt_backend_object_is_reported() {
        let (store, backend) = new_store();
        let loc = store.store_share(1, fp(1), b"soon corrupt").unwrap();
        store.flush().unwrap();
        backend
            .corrupt(&ContainerStore::object_key(loc.container_id), 0)
            .unwrap();
        let cold = ContainerStore::new(backend);
        assert!(matches!(cold.fetch(&loc), Err(StorageError::Corrupt(_))));
    }
}
