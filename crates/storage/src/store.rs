//! [`ContainerStore`]: the server-side component that buffers shares and
//! recipes into containers, writes sealed containers to the backend, and
//! serves reads through an LRU container cache.

use std::collections::HashMap;
use std::sync::Arc;

use cdstore_crypto::Fingerprint;
use cdstore_index::ShareLocation;
use parking_lot::Mutex;

use crate::backend::{StorageBackend, StorageError};
use crate::cache::LruCache;
use crate::container::{Container, ContainerBuilder, ContainerKind};

/// Default size of the container read cache (64 MB, i.e. sixteen 4 MB
/// containers).
pub const DEFAULT_CACHE_BYTES: usize = 64 * 1024 * 1024;

/// Counters describing the I/O behaviour of a container store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Sealed containers written to the backend.
    pub containers_written: u64,
    /// Total payload bytes written to the backend.
    pub bytes_written: u64,
    /// Container reads served from the open (unsealed) buffers.
    pub open_buffer_reads: u64,
    /// Container reads served from the LRU cache.
    pub cache_reads: u64,
    /// Container reads that had to touch the backend.
    pub backend_reads: u64,
}

struct Inner {
    backend: Arc<dyn StorageBackend>,
    next_container_id: u64,
    /// Open share containers, one per user (§4.5: containers are single-user).
    open_shares: HashMap<u64, ContainerBuilder>,
    /// Open recipe containers, one per user.
    open_recipes: HashMap<u64, ContainerBuilder>,
    cache: LruCache<u64, Container>,
    stats: StoreStats,
}

/// Manages share and recipe containers on top of a storage backend.
pub struct ContainerStore {
    inner: Mutex<Inner>,
}

impl ContainerStore {
    /// Creates a container store over the given backend with the default
    /// cache size.
    pub fn new(backend: Arc<dyn StorageBackend>) -> Self {
        Self::with_cache_bytes(backend, DEFAULT_CACHE_BYTES)
    }

    /// Creates a container store with an explicit cache budget.
    pub fn with_cache_bytes(backend: Arc<dyn StorageBackend>, cache_bytes: usize) -> Self {
        ContainerStore {
            inner: Mutex::new(Inner {
                backend,
                next_container_id: 1,
                open_shares: HashMap::new(),
                open_recipes: HashMap::new(),
                cache: LruCache::new(cache_bytes),
                stats: StoreStats::default(),
            }),
        }
    }

    fn object_key(container_id: u64) -> String {
        format!("container-{container_id:016x}")
    }

    /// Appends a share to the user's open share container, returning where it
    /// will live. The open container is sealed and written out when it
    /// reaches the 4 MB cap.
    pub fn store_share(
        &self,
        user: u64,
        fingerprint: Fingerprint,
        data: &[u8],
    ) -> Result<ShareLocation, StorageError> {
        let mut inner = self.inner.lock();
        self.store_blob(&mut inner, user, fingerprint, data, ContainerKind::Share)
    }

    /// Appends a file recipe to the user's open recipe container, returning
    /// its location.
    pub fn store_recipe(
        &self,
        user: u64,
        fingerprint: Fingerprint,
        data: &[u8],
    ) -> Result<ShareLocation, StorageError> {
        let mut inner = self.inner.lock();
        self.store_blob(&mut inner, user, fingerprint, data, ContainerKind::Recipe)
    }

    fn store_blob(
        &self,
        inner: &mut Inner,
        user: u64,
        fingerprint: Fingerprint,
        data: &[u8],
        kind: ContainerKind,
    ) -> Result<ShareLocation, StorageError> {
        // Seal the open container first if this blob would overflow it.
        let needs_seal = {
            let open = Self::open_map(inner, kind).get(&user);
            open.map(|b| b.would_overflow(data.len())).unwrap_or(false)
        };
        if needs_seal {
            self.seal_user(inner, user, kind)?;
        }
        let next_id = &mut inner.next_container_id;
        let builder = match kind {
            ContainerKind::Share => &mut inner.open_shares,
            ContainerKind::Recipe => &mut inner.open_recipes,
        }
        .entry(user)
        .or_insert_with(|| {
            let id = *next_id;
            *next_id += 1;
            ContainerBuilder::new(id, user, kind)
        });
        let offset = builder.append(fingerprint, data);
        Ok(ShareLocation {
            container_id: builder.id(),
            offset,
            size: data.len() as u32,
        })
    }

    fn open_map(inner: &mut Inner, kind: ContainerKind) -> &mut HashMap<u64, ContainerBuilder> {
        match kind {
            ContainerKind::Share => &mut inner.open_shares,
            ContainerKind::Recipe => &mut inner.open_recipes,
        }
    }

    fn seal_user(
        &self,
        inner: &mut Inner,
        user: u64,
        kind: ContainerKind,
    ) -> Result<(), StorageError> {
        let Some(builder) = Self::open_map(inner, kind).remove(&user) else {
            return Ok(());
        };
        if builder.is_empty() {
            return Ok(());
        }
        let container = builder.seal();
        let bytes = container.to_bytes();
        inner.backend.put(&Self::object_key(container.id), &bytes)?;
        inner.stats.containers_written += 1;
        inner.stats.bytes_written += bytes.len() as u64;
        let size = container.payload_size();
        inner.cache.put(container.id, container, size);
        Ok(())
    }

    /// Seals and writes every open container (share and recipe) of every user.
    pub fn flush(&self) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        let users: Vec<u64> = inner
            .open_shares
            .keys()
            .chain(inner.open_recipes.keys())
            .copied()
            .collect();
        for user in users {
            self.seal_user(&mut inner, user, ContainerKind::Share)?;
            self.seal_user(&mut inner, user, ContainerKind::Recipe)?;
        }
        Ok(())
    }

    /// Reads the blob at a share location (from the open buffers, the cache,
    /// or the backend — in that order).
    pub fn fetch(&self, location: &ShareLocation) -> Result<Vec<u8>, StorageError> {
        let mut inner = self.inner.lock();
        // 1. Open (unsealed) containers.
        let open_hit = inner
            .open_shares
            .values()
            .chain(inner.open_recipes.values())
            .find(|b| b.id() == location.container_id)
            .map(|b| b.clone().seal());
        if let Some(container) = open_hit {
            inner.stats.open_buffer_reads += 1;
            return container
                .get_at(location.offset, location.size)
                .map(|s| s.to_vec())
                .ok_or_else(|| {
                    StorageError::Corrupt(format!(
                        "container {} misses offset",
                        location.container_id
                    ))
                });
        }
        // 2. The LRU cache.
        if let Some(container) = inner.cache.get(&location.container_id) {
            let blob = container
                .get_at(location.offset, location.size)
                .map(|s| s.to_vec());
            inner.stats.cache_reads += 1;
            return blob.ok_or_else(|| {
                StorageError::Corrupt(format!("container {} misses offset", location.container_id))
            });
        }
        // 3. The backend.
        let key = Self::object_key(location.container_id);
        let bytes = inner.backend.get(&key)?;
        inner.stats.backend_reads += 1;
        let container =
            Container::from_bytes(&bytes).ok_or_else(|| StorageError::Corrupt(key.clone()))?;
        let blob = container
            .get_at(location.offset, location.size)
            .map(|s| s.to_vec());
        let size = container.payload_size();
        inner.cache.put(location.container_id, container, size);
        blob.ok_or(StorageError::Corrupt(key))
    }

    /// Reads a whole container by id (used by repair and garbage collection).
    pub fn fetch_container(&self, container_id: u64) -> Result<Container, StorageError> {
        let mut inner = self.inner.lock();
        let open_hit = inner
            .open_shares
            .values()
            .chain(inner.open_recipes.values())
            .find(|b| b.id() == container_id)
            .cloned();
        if let Some(container) = open_hit {
            inner.stats.open_buffer_reads += 1;
            return Ok(container.seal());
        }
        if let Some(container) = inner.cache.get(&container_id) {
            let c = container.clone();
            inner.stats.cache_reads += 1;
            return Ok(c);
        }
        let key = Self::object_key(container_id);
        let bytes = inner.backend.get(&key)?;
        inner.stats.backend_reads += 1;
        Container::from_bytes(&bytes).ok_or(StorageError::Corrupt(key))
    }

    /// Deletes a sealed container from the backend (garbage collection).
    pub fn delete_container(&self, container_id: u64) -> Result<(), StorageError> {
        let mut inner = self.inner.lock();
        inner.cache.remove(&container_id);
        inner.backend.delete(&Self::object_key(container_id))
    }

    /// Returns the I/O counters.
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().stats
    }

    /// Total bytes currently stored at the backend.
    pub fn backend_bytes(&self) -> Result<u64, StorageError> {
        self.inner.lock().backend.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;
    use crate::container::CONTAINER_CAPACITY;

    fn fp(i: u32) -> Fingerprint {
        Fingerprint::of(&i.to_be_bytes())
    }

    fn new_store() -> (ContainerStore, Arc<MemoryBackend>) {
        let backend = Arc::new(MemoryBackend::new());
        (ContainerStore::new(backend.clone()), backend)
    }

    #[test]
    fn store_and_fetch_from_open_buffer() {
        let (store, backend) = new_store();
        let loc = store.store_share(1, fp(1), b"buffered share").unwrap();
        // Not yet written to the backend.
        assert_eq!(backend.object_count(), 0);
        assert_eq!(store.fetch(&loc).unwrap(), b"buffered share");
        assert_eq!(store.stats().open_buffer_reads, 1);
    }

    #[test]
    fn flush_writes_containers_and_fetch_uses_cache_then_backend() {
        let (store, backend) = new_store();
        let loc = store.store_share(1, fp(1), b"first").unwrap();
        let loc2 = store.store_share(1, fp(2), b"second").unwrap();
        assert_eq!(loc.container_id, loc2.container_id);
        store.flush().unwrap();
        assert_eq!(backend.object_count(), 1);
        // First fetch after flush hits the cache (the seal populated it).
        assert_eq!(store.fetch(&loc).unwrap(), b"first");
        assert_eq!(store.stats().cache_reads, 1);
        // A store with an empty cache goes to the backend.
        let cold = ContainerStore::with_cache_bytes(backend.clone(), 1024 * 1024);
        assert_eq!(cold.fetch(&loc2).unwrap(), b"second");
        assert_eq!(cold.stats().backend_reads, 1);
        // And the second read of the same container is a cache hit.
        assert_eq!(cold.fetch(&loc).unwrap(), b"first");
        assert_eq!(cold.stats().cache_reads, 1);
    }

    #[test]
    fn containers_seal_automatically_at_capacity() {
        let (store, backend) = new_store();
        let blob = vec![0xaau8; 1024 * 1024]; // 1 MB
        let mut container_ids = std::collections::HashSet::new();
        for i in 0..9u32 {
            let loc = store.store_share(1, fp(i), &blob).unwrap();
            container_ids.insert(loc.container_id);
        }
        // 9 MB of shares at a 4 MB cap: at least three containers, at least
        // two of which were sealed and written out automatically.
        assert!(container_ids.len() >= 3);
        assert!(backend.object_count() >= 2);
        assert!(store.stats().bytes_written >= 2 * CONTAINER_CAPACITY as u64);
    }

    #[test]
    fn containers_are_per_user() {
        let (store, _) = new_store();
        let loc_a = store.store_share(1, fp(1), b"user1 data").unwrap();
        let loc_b = store.store_share(2, fp(2), b"user2 data").unwrap();
        assert_ne!(loc_a.container_id, loc_b.container_id);
    }

    #[test]
    fn recipes_and_shares_use_separate_containers() {
        let (store, _) = new_store();
        let share_loc = store.store_share(1, fp(1), b"share").unwrap();
        let recipe_loc = store.store_recipe(1, fp(2), b"recipe").unwrap();
        assert_ne!(share_loc.container_id, recipe_loc.container_id);
        assert_eq!(store.fetch(&recipe_loc).unwrap(), b"recipe");
    }

    #[test]
    fn fetch_missing_container_fails() {
        let (store, _) = new_store();
        let bogus = ShareLocation {
            container_id: 999,
            offset: 0,
            size: 4,
        };
        assert!(matches!(
            store.fetch(&bogus),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn delete_container_removes_backend_object() {
        let (store, backend) = new_store();
        let loc = store.store_share(1, fp(1), b"to be deleted").unwrap();
        store.flush().unwrap();
        assert_eq!(backend.object_count(), 1);
        store.delete_container(loc.container_id).unwrap();
        assert_eq!(backend.object_count(), 0);
        assert!(store.fetch(&loc).is_err());
    }

    #[test]
    fn fetch_container_returns_all_entries() {
        let (store, _) = new_store();
        let loc = store.store_share(3, fp(1), b"a").unwrap();
        store.store_share(3, fp(2), b"bb").unwrap();
        store.flush().unwrap();
        let container = store.fetch_container(loc.container_id).unwrap();
        assert_eq!(container.entry_count(), 2);
        assert_eq!(container.get(&fp(2)).unwrap(), b"bb");
    }

    #[test]
    fn corrupt_backend_object_is_reported() {
        let (store, backend) = new_store();
        let loc = store.store_share(1, fp(1), b"soon corrupt").unwrap();
        store.flush().unwrap();
        backend
            .corrupt(&ContainerStore::object_key(loc.container_id), 0)
            .unwrap();
        let cold = ContainerStore::new(backend);
        assert!(matches!(cold.fetch(&loc), Err(StorageError::Corrupt(_))));
    }
}
