//! The container format: 4 MB units of shares or file recipes.
//!
//! "The container module maintains two types of containers in the storage
//! backend: share containers, which hold the globally unique shares, and
//! recipe containers, which hold the file recipes of different files. We cap
//! the container size at 4MB, except that if a file recipe is very large ...
//! we keep the file recipe in a single container and allow the container to
//! go beyond 4MB." (§4.5)
//!
//! Containers are organised per user so each container contains only the
//! data of a single user, retaining the spatial locality of backup streams.

use cdstore_crypto::Fingerprint;

/// Cap on the size of a sealed container's payload in bytes (4 MB).
pub const CONTAINER_CAPACITY: usize = 4 * 1024 * 1024;

/// What a container holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ContainerKind {
    /// Globally unique shares after inter-user deduplication.
    Share,
    /// File recipes (per-file lists of share fingerprints and secret sizes).
    Recipe,
}

/// One entry inside a container: a share or recipe blob and its identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContainerEntry {
    /// Fingerprint identifying the blob (share fingerprint, or the file-key
    /// hash for recipes).
    pub fingerprint: Fingerprint,
    /// Offset of the blob within the container payload.
    pub offset: u32,
    /// Length of the blob in bytes.
    pub length: u32,
}

/// A sealed (immutable) container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Container {
    /// Unique container identifier (assigned by the container store).
    pub id: u64,
    /// Owning user: containers are single-user to preserve locality (§4.5).
    pub user: u64,
    /// Whether this is a share container or a recipe container.
    pub kind: ContainerKind,
    /// Index of contained blobs.
    pub entries: Vec<ContainerEntry>,
    /// Concatenated blob payload.
    pub payload: Vec<u8>,
}

impl Container {
    /// Total payload size in bytes.
    pub fn payload_size(&self) -> usize {
        self.payload.len()
    }

    /// Number of blobs in the container.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Returns the blob with the given fingerprint, if present.
    pub fn get(&self, fingerprint: &Fingerprint) -> Option<&[u8]> {
        self.entries
            .iter()
            .find(|e| &e.fingerprint == fingerprint)
            .map(|e| &self.payload[e.offset as usize..(e.offset + e.length) as usize])
    }

    /// Returns the blob at a known offset/length (avoids the entry scan when
    /// the caller has a [`crate::store::ShareLocation`]).
    pub fn get_at(&self, offset: u32, length: u32) -> Option<&[u8]> {
        let end = offset.checked_add(length)? as usize;
        self.payload.get(offset as usize..end)
    }

    /// Serialises the container to a flat byte buffer (the object written to
    /// the cloud backend).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 64 + self.entries.len() * 40);
        out.extend_from_slice(b"CDCT");
        out.extend_from_slice(&self.id.to_be_bytes());
        out.extend_from_slice(&self.user.to_be_bytes());
        out.push(match self.kind {
            ContainerKind::Share => 0,
            ContainerKind::Recipe => 1,
        });
        out.extend_from_slice(&(self.entries.len() as u32).to_be_bytes());
        for entry in &self.entries {
            out.extend_from_slice(entry.fingerprint.as_bytes());
            out.extend_from_slice(&entry.offset.to_be_bytes());
            out.extend_from_slice(&entry.length.to_be_bytes());
        }
        out.extend_from_slice(&(self.payload.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Reopens the sealed container as a builder with identical id, user,
    /// entries, and payload — the inverse of [`ContainerBuilder::seal`].
    /// Used to restore an open buffer after a failed backend write.
    pub fn reopen(self) -> ContainerBuilder {
        ContainerBuilder {
            id: self.id,
            user: self.user,
            kind: self.kind,
            entries: self.entries,
            payload: self.payload,
        }
    }

    /// Parses a container serialised by [`Container::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Container> {
        if bytes.len() < 25 || &bytes[..4] != b"CDCT" {
            return None;
        }
        let id = u64::from_be_bytes(bytes[4..12].try_into().ok()?);
        let user = u64::from_be_bytes(bytes[12..20].try_into().ok()?);
        let kind = match bytes[20] {
            0 => ContainerKind::Share,
            1 => ContainerKind::Recipe,
            _ => return None,
        };
        let entry_count = u32::from_be_bytes(bytes[21..25].try_into().ok()?) as usize;
        let mut offset = 25usize;
        let mut entries = Vec::with_capacity(entry_count);
        for _ in 0..entry_count {
            if bytes.len() < offset + 40 {
                return None;
            }
            let fp_bytes: [u8; 32] = bytes[offset..offset + 32].try_into().ok()?;
            let entry_offset = u32::from_be_bytes(bytes[offset + 32..offset + 36].try_into().ok()?);
            let length = u32::from_be_bytes(bytes[offset + 36..offset + 40].try_into().ok()?);
            entries.push(ContainerEntry {
                fingerprint: Fingerprint::from_bytes(fp_bytes),
                offset: entry_offset,
                length,
            });
            offset += 40;
        }
        if bytes.len() < offset + 8 {
            return None;
        }
        let payload_len = u64::from_be_bytes(bytes[offset..offset + 8].try_into().ok()?) as usize;
        offset += 8;
        if bytes.len() != offset + payload_len {
            return None;
        }
        let payload = bytes[offset..].to_vec();
        // Sanity-check the entry ranges.
        for entry in &entries {
            if (entry.offset as usize) + (entry.length as usize) > payload.len() {
                return None;
            }
        }
        Some(Container {
            id,
            user,
            kind,
            entries,
            payload,
        })
    }
}

/// An open (mutable) container accumulating blobs until it reaches capacity.
#[derive(Debug, Clone)]
pub struct ContainerBuilder {
    id: u64,
    user: u64,
    kind: ContainerKind,
    entries: Vec<ContainerEntry>,
    payload: Vec<u8>,
}

impl ContainerBuilder {
    /// Starts a new open container.
    pub fn new(id: u64, user: u64, kind: ContainerKind) -> Self {
        ContainerBuilder {
            id,
            user,
            kind,
            entries: Vec::new(),
            payload: Vec::new(),
        }
    }

    /// Identifier that the sealed container will carry.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Returns the blob at a known offset/length from the live payload —
    /// the open-buffer counterpart of [`Container::get_at`], so readers can
    /// serve a single share without cloning the whole builder.
    pub fn get_at(&self, offset: u32, length: u32) -> Option<&[u8]> {
        let end = offset.checked_add(length)? as usize;
        self.payload.get(offset as usize..end)
    }

    /// Current payload size.
    pub fn payload_size(&self) -> usize {
        self.payload.len()
    }

    /// Whether the container has no blobs yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether adding `len` more bytes would exceed the 4 MB cap.
    ///
    /// An empty container always accepts a blob, even one larger than the
    /// cap — this mirrors the paper's rule of keeping an oversized file
    /// recipe in a single container.
    pub fn would_overflow(&self, len: usize) -> bool {
        !self.is_empty() && self.payload.len() + len > CONTAINER_CAPACITY
    }

    /// Appends a blob, returning its offset within the container.
    ///
    /// # Panics
    ///
    /// Panics if the blob would overflow the container (callers must check
    /// [`ContainerBuilder::would_overflow`] first and seal the container).
    pub fn append(&mut self, fingerprint: Fingerprint, data: &[u8]) -> u32 {
        assert!(
            !self.would_overflow(data.len()),
            "blob of {} bytes overflows the open container",
            data.len()
        );
        let offset = self.payload.len() as u32;
        self.payload.extend_from_slice(data);
        self.entries.push(ContainerEntry {
            fingerprint,
            offset,
            length: data.len() as u32,
        });
        offset
    }

    /// Seals the container, making it immutable.
    pub fn seal(self) -> Container {
        Container {
            id: self.id,
            user: self.user,
            kind: self.kind,
            entries: self.entries,
            payload: self.payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fp(i: u32) -> Fingerprint {
        Fingerprint::of(&i.to_be_bytes())
    }

    #[test]
    fn builder_appends_and_seals() {
        let mut builder = ContainerBuilder::new(1, 42, ContainerKind::Share);
        assert!(builder.is_empty());
        let off_a = builder.append(fp(1), b"first share");
        let off_b = builder.append(fp(2), b"second");
        assert_eq!(off_a, 0);
        assert_eq!(off_b, 11);
        let container = builder.seal();
        assert_eq!(container.entry_count(), 2);
        assert_eq!(container.get(&fp(1)), Some(b"first share".as_slice()));
        assert_eq!(container.get(&fp(2)), Some(b"second".as_slice()));
        assert_eq!(container.get(&fp(3)), None);
        assert_eq!(container.get_at(11, 6), Some(b"second".as_slice()));
        assert_eq!(container.get_at(11, 600), None);
    }

    #[test]
    fn overflow_detection_honours_the_cap() {
        let mut builder = ContainerBuilder::new(1, 1, ContainerKind::Share);
        assert!(
            !builder.would_overflow(CONTAINER_CAPACITY + 1),
            "empty container accepts oversized blobs"
        );
        builder.append(fp(0), &vec![0u8; CONTAINER_CAPACITY - 100]);
        assert!(!builder.would_overflow(100));
        assert!(builder.would_overflow(101));
    }

    #[test]
    #[should_panic(expected = "overflows the open container")]
    fn append_past_capacity_panics() {
        let mut builder = ContainerBuilder::new(1, 1, ContainerKind::Share);
        builder.append(fp(0), &vec![0u8; CONTAINER_CAPACITY]);
        builder.append(fp(1), &[0u8; 1]);
    }

    #[test]
    fn oversized_recipe_is_allowed_in_an_empty_container() {
        let mut builder = ContainerBuilder::new(9, 1, ContainerKind::Recipe);
        let big = vec![7u8; CONTAINER_CAPACITY + 4096];
        builder.append(fp(1), &big);
        let container = builder.seal();
        assert_eq!(container.payload_size(), big.len());
        assert_eq!(container.get(&fp(1)).unwrap(), big.as_slice());
    }

    #[test]
    fn reopen_restores_an_appendable_builder() {
        let mut builder = ContainerBuilder::new(7, 3, ContainerKind::Share);
        builder.append(fp(1), b"first");
        let sealed = builder.seal();
        let mut reopened = sealed.clone().reopen();
        assert_eq!(reopened.id(), 7);
        assert_eq!(reopened.payload_size(), sealed.payload_size());
        reopened.append(fp(2), b"second");
        let resealed = reopened.seal();
        assert_eq!(resealed.get(&fp(1)), Some(b"first".as_slice()));
        assert_eq!(resealed.get(&fp(2)), Some(b"second".as_slice()));
    }

    #[test]
    fn serialisation_round_trips() {
        let mut builder = ContainerBuilder::new(0xabcdef, 7, ContainerKind::Recipe);
        builder.append(fp(10), b"recipe one");
        builder.append(fp(11), b"recipe two, a bit longer");
        let container = builder.seal();
        let bytes = container.to_bytes();
        assert_eq!(Container::from_bytes(&bytes), Some(container));
    }

    #[test]
    fn malformed_bytes_are_rejected() {
        assert_eq!(Container::from_bytes(b""), None);
        assert_eq!(Container::from_bytes(b"XXXX123456789012345678901"), None);
        // Corrupt a valid container's magic.
        let mut builder = ContainerBuilder::new(1, 1, ContainerKind::Share);
        builder.append(fp(1), b"data");
        let mut bytes = builder.seal().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Container::from_bytes(&bytes), None);
        // Truncation is rejected.
        let mut builder = ContainerBuilder::new(1, 1, ContainerKind::Share);
        builder.append(fp(1), b"data");
        let bytes = builder.seal().to_bytes();
        assert_eq!(Container::from_bytes(&bytes[..bytes.len() - 1]), None);
    }

    proptest! {
        #[test]
        fn round_trips_for_arbitrary_blobs(blobs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 0..20)) {
            let mut builder = ContainerBuilder::new(5, 3, ContainerKind::Share);
            for (i, blob) in blobs.iter().enumerate() {
                builder.append(fp(i as u32), blob);
            }
            let container = builder.seal();
            let decoded = Container::from_bytes(&container.to_bytes()).unwrap();
            prop_assert_eq!(&decoded, &container);
            for (i, blob) in blobs.iter().enumerate() {
                prop_assert_eq!(decoded.get(&fp(i as u32)).unwrap(), blob.as_slice());
            }
        }
    }
}
