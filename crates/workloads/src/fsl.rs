//! The FSL-like workload: weekly home-directory backups of a few users.
//!
//! Published characteristics reproduced here (§5.2, §5.4, Figure 6):
//! * nine users, 16 weekly backups, variable-size chunks of ~8 KB;
//! * intra-user dedup saving of at least 94.2% for every backup after the
//!   first week (users modify or add only a small portion of data);
//! * inter-user dedup saving of no more than 12.9% (home directories share
//!   little content across users);
//! * after 16 weeks the physical shares are ~6.3% of the logical data.

use cdstore_crypto::sha256;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{ChunkSpec, Snapshot};
use crate::Workload;

/// Configuration of the FSL-like generator.
#[derive(Debug, Clone, Copy)]
pub struct FslConfig {
    /// Number of users (the paper's filtered dataset has 9).
    pub users: usize,
    /// Number of weekly backups (16 in the paper).
    pub weeks: usize,
    /// Number of chunks in each user's first backup.
    pub initial_chunks_per_user: usize,
    /// Fraction of a user's chunks drawn from a small cross-user shared pool.
    pub shared_fraction: f64,
    /// Fraction of chunks replaced by new content each week.
    pub weekly_modify_rate: f64,
    /// Fraction of new chunks appended each week (dataset growth).
    pub weekly_growth_rate: f64,
    /// Mean chunk size in bytes (variable-size chunking, 8 KB average).
    pub mean_chunk_size: u32,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for FslConfig {
    fn default() -> Self {
        FslConfig {
            users: 9,
            weeks: 16,
            initial_chunks_per_user: 400,
            shared_fraction: 0.10,
            weekly_modify_rate: 0.03,
            weekly_growth_rate: 0.005,
            mean_chunk_size: 8 * 1024,
            seed: 0xf51,
        }
    }
}

impl FslConfig {
    /// A reduced configuration for quick tests.
    pub fn small() -> Self {
        FslConfig {
            users: 4,
            weeks: 6,
            initial_chunks_per_user: 80,
            ..Default::default()
        }
    }
}

/// The FSL-like workload generator.
#[derive(Debug, Clone)]
pub struct FslWorkload {
    config: FslConfig,
}

impl FslWorkload {
    /// Creates a generator.
    pub fn new(config: FslConfig) -> Self {
        FslWorkload { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> FslConfig {
        self.config
    }

    fn content_id(namespace: &str, a: u64, b: u64) -> u64 {
        let digest =
            sha256::hash_parts(&[namespace.as_bytes(), &a.to_be_bytes(), &b.to_be_bytes()]);
        u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"))
    }

    fn chunk_size(rng: &mut StdRng, mean: u32) -> u32 {
        // Variable-size chunking yields sizes between min (mean/4) and max
        // (2 * mean); sample uniformly, which preserves the mean.
        rng.gen_range(mean / 4..=mean * 2 - mean / 4)
    }
}

impl Workload for FslWorkload {
    fn name(&self) -> &'static str {
        "FSL"
    }

    fn weeks(&self) -> usize {
        self.config.weeks
    }

    fn users(&self) -> usize {
        self.config.users
    }

    fn snapshots(&self) -> Vec<Vec<Snapshot>> {
        let cfg = self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Current state of each user's home directory.
        let mut state: Vec<Vec<ChunkSpec>> = Vec::with_capacity(cfg.users);
        // A small shared pool (e.g. common project files) used by every user.
        let shared_pool: Vec<ChunkSpec> = (0..cfg.initial_chunks_per_user)
            .map(|i| {
                ChunkSpec::new(
                    Self::content_id("fsl-shared", 0, i as u64),
                    Self::chunk_size(&mut rng, cfg.mean_chunk_size),
                )
            })
            .collect();
        for user in 0..cfg.users {
            let mut chunks = Vec::with_capacity(cfg.initial_chunks_per_user);
            for i in 0..cfg.initial_chunks_per_user {
                if rng.gen_bool(cfg.shared_fraction) {
                    chunks.push(shared_pool[rng.gen_range(0..shared_pool.len())]);
                } else {
                    chunks.push(ChunkSpec::new(
                        Self::content_id("fsl-user", user as u64, i as u64),
                        Self::chunk_size(&mut rng, cfg.mean_chunk_size),
                    ));
                }
            }
            state.push(chunks);
        }

        let mut out = Vec::with_capacity(cfg.weeks);
        let mut next_id: u64 = 1 << 32;
        for week in 0..cfg.weeks {
            let mut this_week = Vec::with_capacity(cfg.users);
            for (user, chunks) in state.iter_mut().enumerate() {
                if week > 0 {
                    // Modify a small fraction of existing chunks.
                    let len = chunks.len();
                    for chunk in chunks.iter_mut() {
                        if rng.gen_bool(cfg.weekly_modify_rate) {
                            next_id += 1;
                            *chunk = ChunkSpec::new(
                                Self::content_id("fsl-mod", user as u64, next_id),
                                Self::chunk_size(&mut rng, cfg.mean_chunk_size),
                            );
                        }
                    }
                    // Append some new chunks (growth).
                    let growth = ((len as f64) * cfg.weekly_growth_rate).ceil() as usize;
                    for _ in 0..growth {
                        next_id += 1;
                        chunks.push(ChunkSpec::new(
                            Self::content_id("fsl-new", user as u64, next_id),
                            Self::chunk_size(&mut rng, cfg.mean_chunk_size),
                        ));
                    }
                }
                this_week.push(Snapshot {
                    user: user as u64,
                    week,
                    chunks: chunks.clone(),
                });
            }
            out.push(this_week);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::weekly_dedup;

    #[test]
    fn generates_the_configured_shape() {
        let workload = FslWorkload::new(FslConfig::small());
        let snapshots = workload.snapshots();
        assert_eq!(snapshots.len(), workload.weeks());
        assert!(snapshots.iter().all(|w| w.len() == workload.users()));
        assert_eq!(snapshots[0][0].week, 0);
        assert_eq!(snapshots[2][3].user, 3);
        assert!(snapshots[0][0].logical_bytes() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FslWorkload::new(FslConfig::small()).snapshots();
        let b = FslWorkload::new(FslConfig::small()).snapshots();
        assert_eq!(a, b);
    }

    #[test]
    fn intra_user_savings_are_high_after_week_one() {
        let workload = FslWorkload::new(FslConfig {
            users: 4,
            weeks: 5,
            initial_chunks_per_user: 300,
            ..Default::default()
        });
        let weekly = weekly_dedup(&workload.snapshots(), 4, 3);
        for week in weekly.iter().skip(1) {
            assert!(
                week.stats.intra_user_saving() > 0.90,
                "week {} intra-user saving {}",
                week.week,
                week.stats.intra_user_saving()
            );
        }
    }

    #[test]
    fn inter_user_savings_are_low() {
        let workload = FslWorkload::new(FslConfig {
            users: 5,
            weeks: 4,
            initial_chunks_per_user: 300,
            ..Default::default()
        });
        let weekly = weekly_dedup(&workload.snapshots(), 4, 3);
        for week in &weekly {
            assert!(
                week.stats.inter_user_saving() < 0.2,
                "week {} inter-user saving {}",
                week.week,
                week.stats.inter_user_saving()
            );
        }
    }

    #[test]
    fn dataset_grows_slowly_over_weeks() {
        let workload = FslWorkload::new(FslConfig::small());
        let snapshots = workload.snapshots();
        let first: u64 = snapshots[0].iter().map(|s| s.logical_bytes()).sum();
        let last: u64 = snapshots
            .last()
            .unwrap()
            .iter()
            .map(|s| s.logical_bytes())
            .sum();
        assert!(last > first);
        assert!(last < first * 2);
    }
}
