//! Fast deduplication analysis over chunk specifications.
//!
//! Figure 6 reports deduplication savings over 8–24 TB datasets; replaying
//! those through the full CDStore pipeline is unnecessary for the
//! *accounting*, because convergent dispersal maps each unique chunk to a
//! fixed set of `n` unique shares deterministically. This module performs
//! exactly the bookkeeping the two deduplication stages would perform —
//! per-user and global unique-share tracking — directly on [`ChunkSpec`](crate::spec::ChunkSpec)s,
//! which lets the experiment harness analyse arbitrarily large synthetic
//! workloads in memory.
//!
//! The per-chunk share size model matches CAONT-RS: each of the `n` shares
//! of a chunk of `s` bytes has `ceil((s + 32) / k)` bytes (the 32-byte tail
//! is the embedded hash).

use std::collections::HashSet;

use crate::spec::Snapshot;

/// Byte counters identical in meaning to `cdstore_core::DedupStats`,
/// duplicated here so the workload crate stays independent of the core crate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupCounters {
    /// Original user data bytes.
    pub logical_bytes: u64,
    /// All-share bytes before deduplication.
    pub logical_share_bytes: u64,
    /// Share bytes uploaded after intra-user deduplication.
    pub transferred_share_bytes: u64,
    /// Share bytes stored after inter-user deduplication.
    pub physical_share_bytes: u64,
}

impl DedupCounters {
    /// Intra-user deduplication saving (Figure 6(a), top).
    pub fn intra_user_saving(&self) -> f64 {
        one_minus(self.transferred_share_bytes, self.logical_share_bytes)
    }

    /// Inter-user deduplication saving (Figure 6(a), bottom).
    pub fn inter_user_saving(&self) -> f64 {
        one_minus(self.physical_share_bytes, self.transferred_share_bytes)
    }

    /// Physical-to-logical ratio (Figure 6(b)).
    pub fn physical_to_logical(&self) -> f64 {
        if self.logical_bytes == 0 {
            0.0
        } else {
            self.physical_share_bytes as f64 / self.logical_bytes as f64
        }
    }

    /// Deduplication ratio: logical shares / physical shares.
    pub fn dedup_ratio(&self) -> f64 {
        if self.physical_share_bytes == 0 {
            1.0
        } else {
            self.logical_share_bytes as f64 / self.physical_share_bytes as f64
        }
    }

    fn add(&mut self, other: &DedupCounters) {
        self.logical_bytes += other.logical_bytes;
        self.logical_share_bytes += other.logical_share_bytes;
        self.transferred_share_bytes += other.transferred_share_bytes;
        self.physical_share_bytes += other.physical_share_bytes;
    }
}

fn one_minus(after: u64, before: u64) -> f64 {
    if before == 0 {
        0.0
    } else {
        1.0 - after as f64 / before as f64
    }
}

/// One week's deduplication outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeeklyDedup {
    /// Week number.
    pub week: usize,
    /// Counters for this week's backups only.
    pub stats: DedupCounters,
    /// Counters accumulated from week 0 through this week (Figure 6(b)).
    pub cumulative: DedupCounters,
}

/// Size of one CAONT-RS share of a chunk of `size` bytes under `(n, k)`.
pub fn share_size(size: u64, k: usize) -> u64 {
    (size + 32).div_ceil(k as u64)
}

/// Replays the two-stage deduplication bookkeeping over a weekly workload.
///
/// `snapshots[week][user]` is the layout produced by
/// [`crate::Workload::snapshots`].
pub fn weekly_dedup(snapshots: &[Vec<Snapshot>], n: usize, k: usize) -> Vec<WeeklyDedup> {
    // Per-user sets of already-uploaded chunk identities (intra-user stage),
    // and the global set of stored identities (inter-user stage). Because
    // convergent dispersal maps a chunk to the same share on every cloud,
    // tracking chunk identities is equivalent to tracking per-cloud shares.
    let mut per_user: Vec<HashSet<(u64, u32)>> = Vec::new();
    let mut global: HashSet<(u64, u32)> = HashSet::new();
    let mut cumulative = DedupCounters::default();
    let mut out = Vec::with_capacity(snapshots.len());

    for (week, backups) in snapshots.iter().enumerate() {
        let mut stats = DedupCounters::default();
        for snapshot in backups {
            let user = snapshot.user as usize;
            if per_user.len() <= user {
                per_user.resize_with(user + 1, HashSet::new);
            }
            for chunk in &snapshot.chunks {
                let identity = (chunk.content_id, chunk.size);
                let share = share_size(chunk.size as u64, k);
                let all_shares = share * n as u64;
                stats.logical_bytes += chunk.size as u64;
                stats.logical_share_bytes += all_shares;
                // Intra-user stage: upload only if this user never uploaded it.
                if per_user[user].insert(identity) {
                    stats.transferred_share_bytes += all_shares;
                    // Inter-user stage: store only if no user stored it before.
                    if global.insert(identity) {
                        stats.physical_share_bytes += all_shares;
                    }
                }
            }
        }
        cumulative.add(&stats);
        out.push(WeeklyDedup {
            week,
            stats,
            cumulative,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ChunkSpec;

    fn snapshot(user: u64, week: usize, ids: &[u64]) -> Snapshot {
        Snapshot {
            user,
            week,
            chunks: ids.iter().map(|&id| ChunkSpec::new(id, 1000)).collect(),
        }
    }

    #[test]
    fn share_size_model_matches_caont_rs() {
        // (1000 + 32) / 3 rounded up.
        assert_eq!(share_size(1000, 3), 344);
        assert_eq!(share_size(0, 3), 11);
        assert_eq!(share_size(8192, 4), 2056);
    }

    #[test]
    fn identical_weekly_backups_are_fully_intra_deduplicated() {
        let weeks = vec![
            vec![snapshot(0, 0, &[1, 2, 3])],
            vec![snapshot(0, 1, &[1, 2, 3])],
        ];
        let result = weekly_dedup(&weeks, 4, 3);
        assert_eq!(
            result[0].stats.transferred_share_bytes,
            result[0].stats.logical_share_bytes
        );
        assert_eq!(result[1].stats.transferred_share_bytes, 0);
        assert!((result[1].stats.intra_user_saving() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_user_duplicates_are_removed_only_at_the_inter_user_stage() {
        let weeks = vec![vec![snapshot(0, 0, &[1, 2]), snapshot(1, 0, &[1, 2])]];
        let result = weekly_dedup(&weeks, 4, 3);
        // Both users transfer everything (no client-side cross-user dedup)...
        assert_eq!(
            result[0].stats.transferred_share_bytes,
            result[0].stats.logical_share_bytes
        );
        // ...but only one copy is stored.
        assert_eq!(
            result[0].stats.physical_share_bytes * 2,
            result[0].stats.transferred_share_bytes
        );
        assert!((result[0].stats.inter_user_saving() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicates_within_one_snapshot_are_intra_deduplicated() {
        let weeks = vec![vec![snapshot(0, 0, &[7, 7, 7, 8])]];
        let result = weekly_dedup(&weeks, 4, 3);
        let per_chunk = share_size(1000, 3) * 4;
        assert_eq!(result[0].stats.logical_share_bytes, 4 * per_chunk);
        assert_eq!(result[0].stats.transferred_share_bytes, 2 * per_chunk);
    }

    #[test]
    fn cumulative_counters_accumulate() {
        let weeks = vec![
            vec![snapshot(0, 0, &[1])],
            vec![snapshot(0, 1, &[1, 2])],
            vec![snapshot(0, 2, &[1, 2, 3])],
        ];
        let result = weekly_dedup(&weeks, 4, 3);
        assert_eq!(result[2].cumulative.logical_bytes, 6000);
        let per_chunk = share_size(1000, 3) * 4;
        assert_eq!(result[2].cumulative.physical_share_bytes, 3 * per_chunk);
    }

    #[test]
    fn logical_share_blowup_is_about_n_over_k() {
        let weeks = vec![vec![snapshot(0, 0, &(0..100u64).collect::<Vec<_>>())]];
        let result = weekly_dedup(&weeks, 4, 3);
        let blowup =
            result[0].stats.logical_share_bytes as f64 / result[0].stats.logical_bytes as f64;
        assert!(blowup > 1.33 && blowup < 1.40, "blowup {blowup}");
    }
}
