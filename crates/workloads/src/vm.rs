//! The VM-like workload: weekly snapshots of student VM images cloned from a
//! common master image.
//!
//! Published characteristics reproduced here (§5.2, §5.4, Figure 6):
//! * 156 VM images, 16 weekly snapshots, 4 KB fixed-size chunks (zero-filled
//!   chunks already removed);
//! * inter-user dedup saving of 93.4% for the first backup (all images start
//!   from the same master) and 11.8–47.0% for subsequent backups (students
//!   make similar changes while working on the same assignments);
//! * intra-user dedup saving of at least 98.0% after the first week;
//! * after 16 weeks the physical shares are ~0.8% of the logical data.

use cdstore_crypto::sha256;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::spec::{ChunkSpec, Snapshot};
use crate::Workload;

/// Configuration of the VM-like generator.
#[derive(Debug, Clone, Copy)]
pub struct VmConfig {
    /// Number of VM images / users (156 in the paper).
    pub users: usize,
    /// Number of weekly snapshots (16 in the paper).
    pub weeks: usize,
    /// Number of chunks per VM image (after removing zero-filled chunks).
    pub chunks_per_image: usize,
    /// Fraction of each image that is the unmodified master image at week 0.
    pub master_fraction: f64,
    /// Fraction of chunks each user modifies per week.
    pub weekly_modify_rate: f64,
    /// Of the modified chunks, the fraction drawn from a per-week shared pool
    /// (students making the same changes for the same assignment).
    pub shared_change_fraction: f64,
    /// Fixed chunk size in bytes (4 KB in the paper).
    pub chunk_size: u32,
    /// Seed for deterministic generation.
    pub seed: u64,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            users: 156,
            weeks: 16,
            chunks_per_image: 300,
            master_fraction: 0.93,
            weekly_modify_rate: 0.02,
            shared_change_fraction: 0.35,
            chunk_size: 4096,
            seed: 0x1156,
        }
    }
}

impl VmConfig {
    /// A reduced configuration for quick tests.
    pub fn small() -> Self {
        VmConfig {
            users: 12,
            weeks: 6,
            chunks_per_image: 120,
            ..Default::default()
        }
    }
}

/// The VM-like workload generator.
#[derive(Debug, Clone)]
pub struct VmWorkload {
    config: VmConfig,
}

impl VmWorkload {
    /// Creates a generator.
    pub fn new(config: VmConfig) -> Self {
        VmWorkload { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> VmConfig {
        self.config
    }

    fn content_id(namespace: &str, a: u64, b: u64) -> u64 {
        let digest =
            sha256::hash_parts(&[namespace.as_bytes(), &a.to_be_bytes(), &b.to_be_bytes()]);
        u64::from_be_bytes(digest[..8].try_into().expect("8 bytes"))
    }
}

impl Workload for VmWorkload {
    fn name(&self) -> &'static str {
        "VM"
    }

    fn weeks(&self) -> usize {
        self.config.weeks
    }

    fn users(&self) -> usize {
        self.config.users
    }

    fn snapshots(&self) -> Vec<Vec<Snapshot>> {
        let cfg = self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // The master image every VM is cloned from.
        let master: Vec<ChunkSpec> = (0..cfg.chunks_per_image)
            .map(|i| ChunkSpec::new(Self::content_id("vm-master", 0, i as u64), cfg.chunk_size))
            .collect();
        // Initial per-VM state: mostly master chunks plus a per-user remainder.
        let mut state: Vec<Vec<ChunkSpec>> = (0..cfg.users)
            .map(|user| {
                master
                    .iter()
                    .enumerate()
                    .map(|(i, &chunk)| {
                        if rng.gen_bool(cfg.master_fraction) {
                            chunk
                        } else {
                            ChunkSpec::new(
                                Self::content_id("vm-user", user as u64, i as u64),
                                cfg.chunk_size,
                            )
                        }
                    })
                    .collect()
            })
            .collect();

        let mut out = Vec::with_capacity(cfg.weeks);
        let mut next_unique: u64 = 1 << 40;
        for week in 0..cfg.weeks {
            // The shared pool of this week's "assignment" changes.
            let weekly_pool_size =
                ((cfg.chunks_per_image as f64) * cfg.weekly_modify_rate).ceil() as usize * 2 + 1;
            let weekly_pool: Vec<ChunkSpec> = (0..weekly_pool_size)
                .map(|i| {
                    ChunkSpec::new(
                        Self::content_id("vm-week-pool", week as u64, i as u64),
                        cfg.chunk_size,
                    )
                })
                .collect();
            let mut this_week = Vec::with_capacity(cfg.users);
            for (user, chunks) in state.iter_mut().enumerate() {
                if week > 0 {
                    for chunk in chunks.iter_mut() {
                        if rng.gen_bool(cfg.weekly_modify_rate) {
                            if rng.gen_bool(cfg.shared_change_fraction) {
                                *chunk = weekly_pool[rng.gen_range(0..weekly_pool.len())];
                            } else {
                                next_unique += 1;
                                *chunk = ChunkSpec::new(
                                    Self::content_id("vm-unique", user as u64, next_unique),
                                    cfg.chunk_size,
                                );
                            }
                        }
                    }
                }
                this_week.push(Snapshot {
                    user: user as u64,
                    week,
                    chunks: chunks.clone(),
                });
            }
            out.push(this_week);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::weekly_dedup;

    #[test]
    fn generates_the_configured_shape() {
        let workload = VmWorkload::new(VmConfig::small());
        let snapshots = workload.snapshots();
        assert_eq!(snapshots.len(), workload.weeks());
        assert!(snapshots.iter().all(|w| w.len() == workload.users()));
        // Fixed-size chunks.
        assert!(snapshots[0][0].chunks.iter().all(|c| c.size == 4096));
    }

    #[test]
    fn first_week_has_high_inter_user_savings() {
        let workload = VmWorkload::new(VmConfig {
            users: 20,
            weeks: 2,
            chunks_per_image: 200,
            ..Default::default()
        });
        let weekly = weekly_dedup(&workload.snapshots(), 4, 3);
        assert!(
            weekly[0].stats.inter_user_saving() > 0.85,
            "week 0 inter-user saving {}",
            weekly[0].stats.inter_user_saving()
        );
    }

    #[test]
    fn subsequent_weeks_have_moderate_inter_user_and_high_intra_user_savings() {
        let workload = VmWorkload::new(VmConfig {
            users: 16,
            weeks: 5,
            chunks_per_image: 250,
            ..Default::default()
        });
        let weekly = weekly_dedup(&workload.snapshots(), 4, 3);
        for week in weekly.iter().skip(1) {
            assert!(
                week.stats.intra_user_saving() > 0.95,
                "week {} intra saving {}",
                week.week,
                week.stats.intra_user_saving()
            );
            let inter = week.stats.inter_user_saving();
            assert!(
                (0.05..0.75).contains(&inter),
                "week {} inter saving {inter}",
                week.week
            );
        }
    }

    #[test]
    fn cumulative_physical_fraction_is_tiny() {
        let workload = VmWorkload::new(VmConfig {
            users: 20,
            weeks: 8,
            chunks_per_image: 200,
            ..Default::default()
        });
        let weekly = weekly_dedup(&workload.snapshots(), 4, 3);
        let total = weekly.last().unwrap().cumulative;
        // The paper reports physical shares ≈ 0.8% of logical data for VM
        // after 16 weeks; at this reduced scale it stays below a few percent.
        assert!(
            total.physical_to_logical() < 0.10,
            "physical/logical {}",
            total.physical_to_logical()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = VmWorkload::new(VmConfig::small()).snapshots();
        let b = VmWorkload::new(VmConfig::small()).snapshots();
        assert_eq!(a, b);
    }
}
