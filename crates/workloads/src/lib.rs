//! Synthetic backup workloads reproducing the paper's datasets (§5.2).
//!
//! The paper drives its deduplication and trace experiments with two
//! real-world datasets that are not publicly reproducible here:
//!
//! * **FSL** — weekly snapshots of nine students' home directories
//!   (variable-size chunks, ~8 KB average), with very high *intra-user*
//!   redundancy week over week (≥ 94% savings after the first week) but low
//!   *inter-user* redundancy (≤ 13%);
//! * **VM** — weekly snapshots of 156 VM images cloned from one master image
//!   (4 KB fixed-size chunks), with extreme inter-user redundancy in the
//!   first week (93%) and moderate inter-user redundancy afterwards
//!   (12–47%), plus ≥ 98% intra-user savings.
//!
//! This crate generates synthetic weekly backup streams whose deduplication
//! characteristics reproduce those published numbers. A snapshot is a list
//! of [`ChunkSpec`]s; chunk *content* is derived deterministically from the
//! chunk identity (the same reconstruction the authors use when replaying
//! the FSL trace: "we reconstruct a chunk by writing the fingerprint value
//! repeatedly to a chunk with the specified size", §5.5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod fsl;
pub mod spec;
pub mod vm;

pub use analysis::{weekly_dedup, DedupCounters, WeeklyDedup};
pub use fsl::{FslConfig, FslWorkload};
pub use spec::{ChunkSpec, Snapshot};
pub use vm::{VmConfig, VmWorkload};

/// A weekly multi-user backup workload: `snapshots()[week][user]`.
pub trait Workload {
    /// Human-readable dataset name ("FSL", "VM").
    fn name(&self) -> &'static str;

    /// Number of weekly backups.
    fn weeks(&self) -> usize;

    /// Number of users.
    fn users(&self) -> usize;

    /// Generates every snapshot, indexed as `[week][user]`.
    fn snapshots(&self) -> Vec<Vec<Snapshot>>;
}
