//! Chunk specifications and snapshots.

/// One chunk of a backup stream, identified by content rather than position.
///
/// Two `ChunkSpec`s with the same `content_id` and `size` materialise to
/// byte-identical chunks, so they deduplicate against each other exactly like
/// identical chunks of the real datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkSpec {
    /// Stable identity of the chunk content.
    pub content_id: u64,
    /// Chunk size in bytes.
    pub size: u32,
}

impl ChunkSpec {
    /// Creates a chunk spec.
    pub fn new(content_id: u64, size: u32) -> Self {
        ChunkSpec { content_id, size }
    }

    /// Materialises the chunk content: the content id written repeatedly
    /// (with its byte offset mixed in) until the chunk is full. Deterministic
    /// in `(content_id, size)` and distinct across different ids.
    pub fn materialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size as usize);
        let mut word = 0u64;
        let id = self.content_id;
        while out.len() < self.size as usize {
            // A cheap deterministic mix of the id and the word index.
            let mixed = id
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(word.wrapping_mul(0xbf58_476d_1ce4_e5b9))
                .rotate_left((word % 61) as u32);
            let bytes = mixed.to_be_bytes();
            let take = (self.size as usize - out.len()).min(8);
            out.extend_from_slice(&bytes[..take]);
            word += 1;
        }
        out
    }
}

/// One user's backup of one week: an ordered list of chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// The user (or VM image) the snapshot belongs to.
    pub user: u64,
    /// Week number, starting at 0.
    pub week: usize,
    /// The chunks of the backup stream, in order.
    pub chunks: Vec<ChunkSpec>,
}

impl Snapshot {
    /// Logical size of the snapshot in bytes.
    pub fn logical_bytes(&self) -> u64 {
        self.chunks.iter().map(|c| c.size as u64).sum()
    }

    /// Pathname under which the snapshot is backed up.
    pub fn pathname(&self) -> String {
        format!("/backups/user-{}/week-{}.tar", self.user, self.week)
    }

    /// Materialises every chunk (the input to `CdStore::backup_chunks`).
    pub fn materialize(&self) -> Vec<Vec<u8>> {
        self.chunks.iter().map(|c| c.materialize()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn materialization_is_deterministic_and_content_addressed() {
        let a = ChunkSpec::new(42, 4096).materialize();
        let b = ChunkSpec::new(42, 4096).materialize();
        let c = ChunkSpec::new(43, 4096).materialize();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 4096);
    }

    #[test]
    fn different_sizes_give_prefix_related_content() {
        let long = ChunkSpec::new(7, 8192).materialize();
        let short = ChunkSpec::new(7, 1000).materialize();
        assert_eq!(&long[..1000], &short[..]);
    }

    #[test]
    fn snapshot_accounting() {
        let snapshot = Snapshot {
            user: 3,
            week: 5,
            chunks: vec![ChunkSpec::new(1, 100), ChunkSpec::new(2, 200)],
        };
        assert_eq!(snapshot.logical_bytes(), 300);
        assert!(snapshot.pathname().contains("user-3"));
        assert!(snapshot.pathname().contains("week-5"));
        let chunks = snapshot.materialize();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 100);
    }

    proptest! {
        #[test]
        fn chunk_content_is_unique_per_id(a: u64, b: u64) {
            prop_assume!(a != b);
            prop_assert_ne!(ChunkSpec::new(a, 512).materialize(), ChunkSpec::new(b, 512).materialize());
        }

        #[test]
        fn materialized_size_matches_spec(id: u64, size in 1u32..10_000) {
            prop_assert_eq!(ChunkSpec::new(id, size).materialize().len(), size as usize);
        }
    }
}
