//! AES-256 block cipher (FIPS 197), implemented from scratch.
//!
//! CAONT-RS uses AES-256 as the encryption function `E` inside the mask
//! generator `G(h) = E(h, C)` (Equation (3) of the paper). Only the forward
//! cipher is needed for CTR-mode mask generation, but the inverse cipher is
//! also provided so the crate is a complete, independently testable AES-256
//! implementation.

/// AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;
/// AES-256 key size in bytes.
pub const KEY_SIZE: usize = 32;
/// Number of rounds for AES-256.
pub const ROUNDS: usize = 14;

const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const fn build_inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

const INV_SBOX: [u8; 256] = build_inv_sbox();

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiplies a byte by `x` in AES's GF(2^8) (polynomial 0x11b).
#[inline]
const fn xtime(b: u8) -> u8 {
    let shifted = b << 1;
    if b & 0x80 != 0 {
        shifted ^ 0x1b
    } else {
        shifted
    }
}

/// Multiplies two bytes in AES's GF(2^8).
const fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    p
}

/// An expanded AES-256 key schedule.
#[derive(Clone)]
pub struct Aes256 {
    round_keys: [[u8; 16]; ROUNDS + 1],
}

impl Aes256 {
    /// Expands a 32-byte key into the full key schedule.
    pub fn new(key: &[u8; KEY_SIZE]) -> Self {
        // 60 32-bit words for AES-256.
        let nk = 8usize;
        let total_words = 4 * (ROUNDS + 1);
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for (i, word) in w.iter_mut().take(nk).enumerate() {
            word.copy_from_slice(&key[i * 4..(i + 1) * 4]);
        }
        for i in nk..total_words {
            let mut temp = w[i - 1];
            if i % nk == 0 {
                // RotWord + SubWord + Rcon.
                temp.rotate_left(1);
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= RCON[i / nk - 1];
            } else if i % nk == 4 {
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..(c + 1) * 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes256 { round_keys }
    }

    /// Encrypts a single 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_SIZE]) {
        add_round_key(block, &self.round_keys[0]);
        for round in 1..ROUNDS {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[round]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[ROUNDS]);
    }

    /// Decrypts a single 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_SIZE]) {
        add_round_key(block, &self.round_keys[ROUNDS]);
        inv_shift_rows(block);
        inv_sub_bytes(block);
        for round in (1..ROUNDS).rev() {
            add_round_key(block, &self.round_keys[round]);
            inv_mix_columns(block);
            inv_shift_rows(block);
            inv_sub_bytes(block);
        }
        add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypts a block, returning the ciphertext instead of mutating.
    pub fn encrypt(&self, block: &[u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }

    /// Decrypts a block, returning the plaintext instead of mutating.
    pub fn decrypt(&self, block: &[u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
        let mut out = *block;
        self.decrypt_block(&mut out);
        out
    }
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

#[inline]
fn sub_bytes(state: &mut [u8; 16]) {
    for s in state.iter_mut() {
        *s = SBOX[*s as usize];
    }
}

#[inline]
fn inv_sub_bytes(state: &mut [u8; 16]) {
    for s in state.iter_mut() {
        *s = INV_SBOX[*s as usize];
    }
}

// The state is stored column-major as in FIPS 197: state[r + 4c] is row r,
// column c, i.e. byte index `4c + r` of the flat block.
#[inline]
fn shift_rows(state: &mut [u8; 16]) {
    // Row 1: shift left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: shift left by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift left by 3 (== right by 1).
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

#[inline]
fn inv_shift_rows(state: &mut [u8; 16]) {
    // Row 1: shift right by 1.
    let t = state[13];
    state[13] = state[9];
    state[9] = state[5];
    state[5] = state[1];
    state[1] = t;
    // Row 2: shift right by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: shift right by 3 (== left by 1).
    let t = state[3];
    state[3] = state[7];
    state[7] = state[11];
    state[11] = state[15];
    state[15] = t;
}

#[inline]
fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

#[inline]
fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        state[4 * c] =
            gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
        state[4 * c + 1] =
            gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
        state[4 * c + 2] =
            gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
        state[4 * c + 3] =
            gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn parse_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// FIPS 197 Appendix C.3 AES-256 example vector.
    #[test]
    fn fips197_appendix_c3() {
        let key_bytes =
            parse_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
        let key: [u8; 32] = key_bytes.try_into().unwrap();
        let aes = Aes256::new(&key);
        let pt: [u8; 16] = parse_hex("00112233445566778899aabbccddeeff")
            .try_into()
            .unwrap();
        let ct = aes.encrypt(&pt);
        assert_eq!(ct.to_vec(), parse_hex("8ea2b7ca516745bfeafc49904b496089"));
        assert_eq!(aes.decrypt(&ct), pt);
    }

    /// NIST SP 800-38A F.1.5 (ECB-AES256.Encrypt) vectors.
    #[test]
    fn sp800_38a_ecb_vectors() {
        let key: [u8; 32] =
            parse_hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
                .try_into()
                .unwrap();
        let aes = Aes256::new(&key);
        let cases = [
            (
                "6bc1bee22e409f96e93d7e117393172a",
                "f3eed1bdb5d2a03c064b5a7e3db181f8",
            ),
            (
                "ae2d8a571e03ac9c9eb76fac45af8e51",
                "591ccb10d410ed26dc5ba74a31362870",
            ),
            (
                "30c81c46a35ce411e5fbc1191a0a52ef",
                "b6ed21b99ca6f4f9f153e7b1beafed1d",
            ),
            (
                "f69f2445df4f9b17ad2b417be66c3710",
                "23304b7a39f9f3ff067d8d8f9e24ecc7",
            ),
        ];
        for (pt_hex, ct_hex) in cases {
            let pt: [u8; 16] = parse_hex(pt_hex).try_into().unwrap();
            let ct = aes.encrypt(&pt);
            assert_eq!(ct.to_vec(), parse_hex(ct_hex));
            assert_eq!(aes.decrypt(&ct), pt);
        }
    }

    #[test]
    fn inv_sbox_inverts_sbox() {
        for b in 0..=255u8 {
            assert_eq!(INV_SBOX[SBOX[b as usize] as usize], b);
        }
    }

    #[test]
    fn mix_columns_round_trips() {
        let mut state: [u8; 16] = (0..16u8).collect::<Vec<u8>>().try_into().unwrap();
        let original = state;
        mix_columns(&mut state);
        assert_ne!(state, original);
        inv_mix_columns(&mut state);
        assert_eq!(state, original);
    }

    #[test]
    fn shift_rows_round_trips() {
        let mut state: [u8; 16] = (0..16u8).collect::<Vec<u8>>().try_into().unwrap();
        let original = state;
        shift_rows(&mut state);
        inv_shift_rows(&mut state);
        assert_eq!(state, original);
    }

    #[test]
    fn different_keys_produce_different_ciphertexts() {
        let pt = [0u8; 16];
        let k1 = [0u8; 32];
        let mut k2 = [0u8; 32];
        k2[31] = 1;
        assert_ne!(Aes256::new(&k1).encrypt(&pt), Aes256::new(&k2).encrypt(&pt));
    }

    proptest! {
        #[test]
        fn encrypt_decrypt_round_trips(key in proptest::array::uniform32(any::<u8>()),
                                       block in proptest::collection::vec(any::<u8>(), 16)) {
            let aes = Aes256::new(&key);
            let pt: [u8; 16] = block.try_into().unwrap();
            let ct = aes.encrypt(&pt);
            prop_assert_eq!(aes.decrypt(&ct), pt);
            prop_assert_ne!(ct, pt); // overwhelmingly likely
        }
    }
}
