//! AES-256 counter (CTR) mode and the CAONT-RS mask generator.
//!
//! CAONT-RS builds its OAEP-style all-or-nothing transform around a
//! generator function `G(h) = E(h, C)` (Equation (3)): a constant-value
//! block `C` with the same size as the secret is encrypted under the hash
//! key `h`. Implementing `E` as AES-256 in CTR mode makes `G` a single bulk
//! encryption over the whole secret — the performance advantage of CAONT-RS
//! over Rivest's word-by-word AONT that §5.3 measures.

use crate::aes::{Aes256, BLOCK_SIZE, KEY_SIZE};

/// AES-256 CTR-mode keystream generator / encryptor.
///
/// The counter block is a 16-byte big-endian value formed from an 8-byte
/// nonce followed by an 8-byte block counter.
pub struct Aes256Ctr {
    cipher: Aes256,
    nonce: u64,
}

impl Aes256Ctr {
    /// Creates a CTR encryptor from a 32-byte key and an 8-byte nonce.
    pub fn new(key: &[u8; KEY_SIZE], nonce: u64) -> Self {
        Aes256Ctr {
            cipher: Aes256::new(key),
            nonce,
        }
    }

    /// XORs the keystream starting at block `start_block` into `buf`
    /// (encrypt and decrypt are the same operation).
    pub fn apply_keystream(&self, buf: &mut [u8], start_block: u64) {
        let mut counter = start_block;
        for chunk in buf.chunks_mut(BLOCK_SIZE) {
            let mut block = [0u8; BLOCK_SIZE];
            block[..8].copy_from_slice(&self.nonce.to_be_bytes());
            block[8..].copy_from_slice(&counter.to_be_bytes());
            self.cipher.encrypt_block(&mut block);
            for (b, k) in chunk.iter_mut().zip(block.iter()) {
                *b ^= k;
            }
            counter = counter.wrapping_add(1);
        }
    }

    /// Encrypts `data`, returning a new buffer.
    pub fn encrypt(&self, data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        self.apply_keystream(&mut out, 0);
        out
    }
}

/// The byte value of the constant block `C` used by the CAONT-RS generator.
///
/// Any fixed public constant works; the security of the AONT rests on the
/// secrecy of the key `h`, not of `C`.
pub const CONSTANT_BLOCK_BYTE: u8 = 0x43;

/// Computes the CAONT-RS mask `G(h) = E(h, C)` of the given length.
///
/// `h` is the 32-byte convergent hash key; `len` is the secret size. The
/// result has exactly `len` bytes. Because `C` is constant and public, two
/// identical secrets always produce identical masks — the property that makes
/// convergent dispersal deduplicable.
pub fn generator_mask(h: &[u8; 32], len: usize) -> Vec<u8> {
    let ctr = Aes256Ctr::new(h, 0);
    let mut block = vec![CONSTANT_BLOCK_BYTE; len];
    ctr.apply_keystream(&mut block, 0);
    block
}

/// Applies the mask `G(h)` to `data` in place: `data[i] ^= G(h)[i]`.
///
/// This computes `Y = X ⊕ G(h)` (encoding) or `X = Y ⊕ G(h)` (decoding)
/// without allocating the mask separately from the keystream pass.
pub fn apply_generator_mask(h: &[u8; 32], data: &mut [u8]) {
    let ctr = Aes256Ctr::new(h, 0);
    // data ^= keystream ^ C  ==  data ^= G(h).
    for b in data.iter_mut() {
        *b ^= CONSTANT_BLOCK_BYTE;
    }
    ctr.apply_keystream(data, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn parse_hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// NIST SP 800-38A F.5.5 (CTR-AES256.Encrypt), adapted: the standard
    /// vector uses the full 16-byte initial counter
    /// f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff, which we reproduce by passing its
    /// upper half as the nonce and its lower half as the starting block.
    #[test]
    fn sp800_38a_ctr_vector() {
        let key: [u8; 32] =
            parse_hex("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
                .try_into()
                .unwrap();
        let nonce = u64::from_be_bytes(parse_hex("f0f1f2f3f4f5f6f7").try_into().unwrap());
        let start = u64::from_be_bytes(parse_hex("f8f9fafbfcfdfeff").try_into().unwrap());
        let ctr = Aes256Ctr::new(&key, nonce);
        let mut data = parse_hex(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ));
        ctr.apply_keystream(&mut data, start);
        let expected = parse_hex(concat!(
            "601ec313775789a5b7a7f504bbf3d228",
            "f443e3ca4d62b59aca84e990cacaf5c5",
            "2b0930daa23de94ce87017ba2d84988d",
            "dfc9c58db67aada613c2dd08457941a6"
        ));
        assert_eq!(data, expected);
    }

    #[test]
    fn ctr_round_trips() {
        let key = [7u8; 32];
        let ctr = Aes256Ctr::new(&key, 99);
        let data = b"all-or-nothing transforms need bulk encryption".to_vec();
        let ct = ctr.encrypt(&data);
        assert_ne!(ct, data);
        let pt = ctr.encrypt(&ct);
        assert_eq!(pt, data);
    }

    #[test]
    fn generator_mask_is_deterministic_and_key_sensitive() {
        let h1 = [1u8; 32];
        let h2 = [2u8; 32];
        let m1 = generator_mask(&h1, 100);
        let m1b = generator_mask(&h1, 100);
        let m2 = generator_mask(&h2, 100);
        assert_eq!(m1, m1b);
        assert_ne!(m1, m2);
        assert_eq!(m1.len(), 100);
    }

    #[test]
    fn generator_mask_prefix_property() {
        // The mask for a shorter length is a prefix of the mask for a longer
        // length (CTR keystream is position-based).
        let h = [0xaau8; 32];
        let long = generator_mask(&h, 333);
        let short = generator_mask(&h, 100);
        assert_eq!(&long[..100], &short[..]);
    }

    #[test]
    fn apply_generator_mask_matches_explicit_xor() {
        let h = [0x11u8; 32];
        let data: Vec<u8> = (0..777u32).map(|i| (i % 256) as u8).collect();
        let mask = generator_mask(&h, data.len());
        let mut masked = data.clone();
        apply_generator_mask(&h, &mut masked);
        for i in 0..data.len() {
            assert_eq!(masked[i], data[i] ^ mask[i]);
        }
    }

    proptest! {
        #[test]
        fn apply_generator_mask_is_involutive(h in proptest::array::uniform32(any::<u8>()),
                                              data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let mut work = data.clone();
            apply_generator_mask(&h, &mut work);
            apply_generator_mask(&h, &mut work);
            prop_assert_eq!(work, data);
        }

        #[test]
        fn keystream_segments_are_consistent(key in proptest::array::uniform32(any::<u8>()),
                                             len in 1usize..200) {
            // Applying the keystream to a whole buffer equals applying it
            // block-by-block with matching start offsets.
            let ctr = Aes256Ctr::new(&key, 5);
            let mut whole = vec![0u8; len * 16];
            ctr.apply_keystream(&mut whole, 0);
            let mut pieces = vec![0u8; len * 16];
            for (i, chunk) in pieces.chunks_mut(16).enumerate() {
                ctr.apply_keystream(chunk, i as u64);
            }
            prop_assert_eq!(whole, pieces);
        }
    }
}
