//! Pure-Rust cryptographic primitives used by CDStore's convergent dispersal.
//!
//! The CDStore paper implements its cryptographic operations with OpenSSL:
//! SHA-256 for the convergent hash key and deduplication fingerprints,
//! AES-256 for the AONT mask generator, and SHA-1 for the VM dataset's chunk
//! fingerprints. This crate re-implements those primitives from scratch
//! (verified against the standard FIPS/RFC test vectors) so the whole
//! reproduction is self-contained.
//!
//! * [`sha256`] / [`sha1`] — incremental hash functions.
//! * [`aes`] — AES-256 block cipher (encrypt/decrypt single blocks).
//! * [`ctr`] — AES-256 in counter mode, used as the OAEP-style mask
//!   generator `G(h) = E(h, C)` of CAONT-RS.
//! * [`Fingerprint`] — a 32-byte content fingerprint with hex formatting,
//!   the unit of deduplication indexing.
//!
//! # Examples
//!
//! ```
//! use cdstore_crypto::{sha256, Fingerprint};
//!
//! let digest = sha256::hash(b"hello cdstore");
//! let fp = Fingerprint::from_bytes(digest);
//! assert_eq!(fp.as_bytes().len(), 32);
//! ```

// Unsafe is denied crate-wide and re-allowed only for the SHA-NI module in
// `sha256`, whose intrinsics carry per-function safety contracts (CPU
// feature detection before dispatch).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod ctr;
pub mod sha1;
pub mod sha256;

use core::fmt;

/// A 256-bit content fingerprint (SHA-256 output) identifying a chunk or a
/// share for deduplication.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint([u8; 32]);

impl Fingerprint {
    /// Size of a fingerprint in bytes.
    pub const SIZE: usize = 32;

    /// Computes the fingerprint of a byte buffer (SHA-256).
    pub fn of(data: &[u8]) -> Self {
        Fingerprint(sha256::hash(data))
    }

    /// Computes the fingerprints of many buffers at once through
    /// [`sha256::hash_batch`] — SHA-NI per message where available, the
    /// 4-lane interleaved scalar path otherwise. Used by the client to
    /// fingerprint all `n` shares of a secret in one call.
    pub fn of_batch(datas: &[&[u8]]) -> Vec<Self> {
        sha256::hash_batch(datas)
            .into_iter()
            .map(Fingerprint)
            .collect()
    }

    /// Computes a *tagged* fingerprint: SHA-256 over a domain-separation tag
    /// followed by the data. CDStore servers re-fingerprint incoming shares
    /// with their own tag so a client-supplied fingerprint can never be used
    /// to claim ownership of another user's share (§3.3).
    pub fn tagged(tag: &[u8], data: &[u8]) -> Self {
        let mut hasher = sha256::Sha256::new();
        hasher.update(&(tag.len() as u64).to_be_bytes());
        hasher.update(tag);
        hasher.update(data);
        Fingerprint(hasher.finalize())
    }

    /// Wraps an existing 32-byte digest.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Fingerprint(bytes)
    }

    /// Returns the raw digest bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Returns the first 8 bytes as a u64, useful as a short hash-table key.
    pub fn short(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("fingerprint is 32 bytes"))
    }

    /// Renders the fingerprint as lowercase hex.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses a 64-character hex string into a fingerprint.
    pub fn from_hex(hex: &str) -> Option<Self> {
        if hex.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in hex.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Fingerprint(out))
    }
}

impl fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fingerprint({}...)", &self.to_hex()[..16])
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl AsRef<[u8]> for Fingerprint {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Compares two byte slices in constant time (no early exit), returning
/// `true` when they are equal. Used when checking integrity hashes so timing
/// does not leak the position of the first mismatching byte.
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b) {
        acc |= x ^ y;
    }
    acc == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_deterministic() {
        let a = Fingerprint::of(b"same data");
        let b = Fingerprint::of(b"same data");
        let c = Fingerprint::of(b"other data");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tagged_fingerprint_differs_from_plain() {
        let plain = Fingerprint::of(b"payload");
        let tagged = Fingerprint::tagged(b"server-0", b"payload");
        let tagged2 = Fingerprint::tagged(b"server-1", b"payload");
        assert_ne!(plain, tagged);
        assert_ne!(tagged, tagged2);
        assert_eq!(tagged, Fingerprint::tagged(b"server-0", b"payload"));
    }

    #[test]
    fn tagged_fingerprint_is_length_prefixed() {
        // ("ab", "c") and ("a", "bc") must not collide.
        assert_ne!(
            Fingerprint::tagged(b"ab", b"c"),
            Fingerprint::tagged(b"a", b"bc")
        );
    }

    #[test]
    fn hex_round_trip() {
        let fp = Fingerprint::of(b"roundtrip");
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 64);
        assert_eq!(Fingerprint::from_hex(&hex), Some(fp));
        assert_eq!(Fingerprint::from_hex("zz"), None);
        assert_eq!(Fingerprint::from_hex(&"g".repeat(64)), None);
    }

    #[test]
    fn short_key_uses_leading_bytes() {
        let fp = Fingerprint::from_bytes([
            0, 0, 0, 0, 0, 0, 0, 42, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9, 9,
            9, 9, 9,
        ]);
        assert_eq!(fp.short(), 42);
    }

    #[test]
    fn constant_time_eq_basic() {
        assert!(constant_time_eq(b"abc", b"abc"));
        assert!(!constant_time_eq(b"abc", b"abd"));
        assert!(!constant_time_eq(b"abc", b"ab"));
        assert!(constant_time_eq(b"", b""));
    }
}
