//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! Used for the convergent hash key `h = H(X)` of CAONT-RS, for share
//! fingerprints in two-stage deduplication, and for the integrity hash inside
//! the CAONT package tail.
//!
//! # Kernel dispatch
//!
//! The compression function has two implementations: the portable scalar
//! schedule, and an x86 SHA-NI path (`sha256rnds2`/`sha256msg1`/`sha256msg2`)
//! selected once per process by runtime feature detection (see
//! [`Backend::active`]). Setting `CDSTORE_FORCE_SCALAR` (to anything but
//! `0`) before first use forces the scalar path — the same override the
//! GF(2^8) region kernels honour, so CI can pin golden vectors under both
//! dispatch modes.
//!
//! [`hash_batch`] hashes many independent messages. On SHA-NI hosts each
//! message takes the (already instruction-parallel) NI path; on scalar hosts
//! a 4-lane interleaved scheduler compresses four messages in lockstep so
//! their four dependency chains fill the ALU ports — the fast path for
//! fingerprinting the `n` shares of each secret.

/// Output size of SHA-256 in bytes.
pub const DIGEST_SIZE: usize = 32;
/// Internal block size of SHA-256 in bytes.
pub const BLOCK_SIZE: usize = 64;

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A SHA-256 compression implementation selected by runtime CPU detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable scalar schedule; always available. Batches take the 4-lane
    /// interleaved path.
    Scalar,
    /// x86 SHA extensions (`sha256rnds2` et al.).
    ShaNi,
}

static ACTIVE: std::sync::OnceLock<Backend> = std::sync::OnceLock::new();

impl Backend {
    /// Every backend runnable on this CPU, scalar first (for the
    /// differential test suite).
    pub fn available() -> Vec<Backend> {
        let mut v = vec![Backend::Scalar];
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        {
            if is_x86_feature_detected!("sha")
                && is_x86_feature_detected!("ssse3")
                && is_x86_feature_detected!("sse4.1")
            {
                v.push(Backend::ShaNi);
            }
        }
        v
    }

    /// The backend hashing dispatches to, chosen once per process: SHA-NI
    /// where detected, unless `CDSTORE_FORCE_SCALAR` is set at first use.
    pub fn active() -> Backend {
        *ACTIVE.get_or_init(|| {
            let force_scalar = std::env::var_os("CDSTORE_FORCE_SCALAR").is_some_and(|v| v != "0");
            if force_scalar {
                Backend::Scalar
            } else {
                *Self::available().last().expect("scalar always available")
            }
        })
    }

    /// Human-readable backend name (used by benches and logs).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::ShaNi => "sha-ni",
        }
    }
}

/// Runs the compression function over `data` (a whole number of 64-byte
/// blocks) with the given backend.
#[allow(unsafe_code)] // the ShaNi variant exists only after feature detection
fn compress_blocks_with(backend: Backend, state: &mut [u32; 8], data: &[u8]) {
    debug_assert!(data.len().is_multiple_of(BLOCK_SIZE));
    match backend {
        Backend::Scalar => {
            for block in data.chunks_exact(BLOCK_SIZE) {
                compress_scalar(state, block.try_into().expect("block is 64 bytes"));
            }
        }
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        // SAFETY: the ShaNi variant is only constructed after
        // `is_x86_feature_detected!("sha")` (plus ssse3/sse4.1) succeeded.
        Backend::ShaNi => unsafe { ni::compress_blocks(state, data) },
        #[allow(unreachable_patterns)]
        _ => {
            for block in data.chunks_exact(BLOCK_SIZE) {
                compress_scalar(state, block.try_into().expect("block is 64 bytes"));
            }
        }
    }
}

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; BLOCK_SIZE],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; BLOCK_SIZE],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs more input bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        let backend = Backend::active();
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        // Fill a partially filled buffer first.
        if self.buffer_len > 0 {
            let take = (BLOCK_SIZE - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == BLOCK_SIZE {
                let block = self.buffer;
                compress_blocks_with(backend, &mut self.state, &block);
                self.buffer_len = 0;
            }
        }
        // Process all full blocks directly from the input in one dispatch.
        let full = data.len() - data.len() % BLOCK_SIZE;
        if full > 0 {
            compress_blocks_with(backend, &mut self.state, &data[..full]);
            data = &data[full..];
        }
        // Stash the remainder.
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    ///
    /// The FIPS 180-4 padding (0x80 terminator, zero fill, 64-bit big-endian
    /// message length) is laid out directly in a tail buffer and compressed
    /// in a single pass — the buffered bytes are copied exactly once.
    pub fn finalize(self) -> [u8; DIGEST_SIZE] {
        let mut state = self.state;
        let mut tail = [0u8; BLOCK_SIZE * 2];
        tail[..self.buffer_len].copy_from_slice(&self.buffer[..self.buffer_len]);
        let tail_len = padded_tail(&mut tail, self.buffer_len, self.total_len);
        compress_blocks_with(Backend::active(), &mut state, &tail[..tail_len]);
        digest_bytes(&state)
    }
}

/// Writes the 0x80 terminator and the big-endian bit length into `tail`
/// (which already holds `rem` leftover message bytes), returning the padded
/// tail length (one or two blocks).
fn padded_tail(tail: &mut [u8; BLOCK_SIZE * 2], rem: usize, total_len: u64) -> usize {
    tail[rem] = 0x80;
    let tail_len = if rem < 56 { BLOCK_SIZE } else { BLOCK_SIZE * 2 };
    let bit_len = total_len.wrapping_mul(8);
    tail[tail_len - 8..tail_len].copy_from_slice(&bit_len.to_be_bytes());
    tail_len
}

fn digest_bytes(state: &[u32; 8]) -> [u8; DIGEST_SIZE] {
    let mut out = [0u8; DIGEST_SIZE];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
    }
    out
}

fn compress_scalar(state: &mut [u32; 8], block: &[u8; BLOCK_SIZE]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
#[allow(unsafe_code)]
mod ni {
    //! x86 SHA-NI compression: two rounds per `sha256rnds2`, message
    //! schedule via `sha256msg1`/`sha256msg2`, state held as the ABEF/CDGH
    //! register pair the instructions expect.

    use super::{BLOCK_SIZE, K};
    #[cfg(target_arch = "x86")]
    use core::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use core::arch::x86_64::*;

    macro_rules! rounds4 {
        ($abef:ident, $cdgh:ident, $w:expr, $g:expr) => {{
            let wk = _mm_add_epi32($w, _mm_loadu_si128(K.as_ptr().add($g * 4).cast()));
            $cdgh = _mm_sha256rnds2_epu32($cdgh, $abef, wk);
            $abef = _mm_sha256rnds2_epu32($abef, $cdgh, _mm_shuffle_epi32(wk, 0x0E));
        }};
    }

    macro_rules! schedule {
        ($w0:expr, $w1:expr, $w2:expr, $w3:expr) => {{
            let t = _mm_sha256msg1_epu32($w0, $w1);
            let t = _mm_add_epi32(t, _mm_alignr_epi8($w3, $w2, 4));
            _mm_sha256msg2_epu32(t, $w3)
        }};
    }

    /// # Safety
    ///
    /// Caller must ensure the `sha`, `ssse3`, and `sse4.1` features are
    /// available. `data.len()` must be a multiple of 64.
    #[target_feature(enable = "sha,ssse3,sse4.1")]
    pub unsafe fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
        // Big-endian dword loads: byte-reverse each 32-bit lane.
        let bswap = _mm_set_epi64x(0x0c0d0e0f08090a0b_u64 as i64, 0x0405060700010203_u64 as i64);
        let mut abef = _mm_set_epi32(
            state[0] as i32,
            state[1] as i32,
            state[4] as i32,
            state[5] as i32,
        );
        let mut cdgh = _mm_set_epi32(
            state[2] as i32,
            state[3] as i32,
            state[6] as i32,
            state[7] as i32,
        );
        for block in data.chunks_exact(BLOCK_SIZE) {
            let abef_save = abef;
            let cdgh_save = cdgh;
            let p = block.as_ptr();
            let mut w0 = _mm_shuffle_epi8(_mm_loadu_si128(p.cast()), bswap);
            let mut w1 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(16).cast()), bswap);
            let mut w2 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(32).cast()), bswap);
            let mut w3 = _mm_shuffle_epi8(_mm_loadu_si128(p.add(48).cast()), bswap);
            rounds4!(abef, cdgh, w0, 0);
            rounds4!(abef, cdgh, w1, 1);
            rounds4!(abef, cdgh, w2, 2);
            rounds4!(abef, cdgh, w3, 3);
            let mut g = 4;
            for _ in 0..3 {
                w0 = schedule!(w0, w1, w2, w3);
                rounds4!(abef, cdgh, w0, g);
                w1 = schedule!(w1, w2, w3, w0);
                rounds4!(abef, cdgh, w1, g + 1);
                w2 = schedule!(w2, w3, w0, w1);
                rounds4!(abef, cdgh, w2, g + 2);
                w3 = schedule!(w3, w0, w1, w2);
                rounds4!(abef, cdgh, w3, g + 3);
                g += 4;
            }
            abef = _mm_add_epi32(abef, abef_save);
            cdgh = _mm_add_epi32(cdgh, cdgh_save);
        }
        let mut fe_ba = [0u32; 4];
        let mut hg_dc = [0u32; 4];
        _mm_storeu_si128(fe_ba.as_mut_ptr().cast(), abef);
        _mm_storeu_si128(hg_dc.as_mut_ptr().cast(), cdgh);
        state[0] = fe_ba[3];
        state[1] = fe_ba[2];
        state[4] = fe_ba[1];
        state[5] = fe_ba[0];
        state[2] = hg_dc[3];
        state[3] = hg_dc[2];
        state[6] = hg_dc[1];
        state[7] = hg_dc[0];
    }
}

/// One-shot SHA-256 of a byte buffer.
pub fn hash(data: &[u8]) -> [u8; DIGEST_SIZE] {
    hash_with(Backend::active(), data)
}

/// One-shot SHA-256 with an explicit backend (differential tests and
/// benches; production code uses [`hash`]).
pub fn hash_with(backend: Backend, data: &[u8]) -> [u8; DIGEST_SIZE] {
    let mut state = H0;
    let full = data.len() - data.len() % BLOCK_SIZE;
    compress_blocks_with(backend, &mut state, &data[..full]);
    let mut tail = [0u8; BLOCK_SIZE * 2];
    let rem = data.len() - full;
    tail[..rem].copy_from_slice(&data[full..]);
    let tail_len = padded_tail(&mut tail, rem, data.len() as u64);
    compress_blocks_with(backend, &mut state, &tail[..tail_len]);
    digest_bytes(&state)
}

/// One-shot SHA-256 over the concatenation of several buffers.
pub fn hash_parts(parts: &[&[u8]]) -> [u8; DIGEST_SIZE] {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// Hashes many independent messages, returning one digest per input in
/// order. Dispatches like [`hash`]; on scalar hosts, four messages are
/// compressed in lockstep (see the module docs). This is the API the
/// client's share-fingerprint loop batches through.
pub fn hash_batch(inputs: &[&[u8]]) -> Vec<[u8; DIGEST_SIZE]> {
    hash_batch_with(Backend::active(), inputs)
}

/// [`hash_batch`] with an explicit backend (differential tests and benches).
pub fn hash_batch_with(backend: Backend, inputs: &[&[u8]]) -> Vec<[u8; DIGEST_SIZE]> {
    match backend {
        // SHA-NI single-stream already saturates the sha ports; lanes would
        // only add copies.
        Backend::ShaNi => inputs.iter().map(|m| hash_with(backend, m)).collect(),
        Backend::Scalar => {
            let mut out = vec![[0u8; DIGEST_SIZE]; inputs.len()];
            multilane::hash_all(inputs, &mut out);
            out
        }
    }
}

mod multilane {
    //! 4-lane interleaved scalar SHA-256 for batches of messages.
    //!
    //! One scalar SHA-256 stream is latency-bound: each round depends on the
    //! previous one, leaving ALU ports idle. Compressing four independent
    //! messages in lockstep — every round variable becomes a `[u32; 4]`
    //! lane array — gives the scheduler four parallel dependency chains
    //! (and lets LLVM vectorise the lane loops). A small scheduler feeds the
    //! lanes: when a message finishes, its digest is written out and the
    //! lane is refilled with the next pending message, so mixed-length
    //! batches stay in lockstep; leftovers (fewer than four live lanes)
    //! finish on the single-stream scalar path.

    use super::{compress_scalar, digest_bytes, padded_tail, Backend, BLOCK_SIZE, DIGEST_SIZE, H0};

    const LANES: usize = 4;

    struct Lane<'a> {
        msg: &'a [u8],
        /// Index into the output array.
        out: usize,
        state: [u32; 8],
        /// Next block to compress.
        block: usize,
        nblocks: usize,
        /// Padded tail block(s); block indices `>= tail_start` read here.
        tail: [u8; BLOCK_SIZE * 2],
        tail_start: usize,
    }

    impl<'a> Lane<'a> {
        fn new(msg: &'a [u8], out: usize) -> Self {
            let full = msg.len() / BLOCK_SIZE;
            let rem = msg.len() % BLOCK_SIZE;
            let mut tail = [0u8; BLOCK_SIZE * 2];
            tail[..rem].copy_from_slice(&msg[full * BLOCK_SIZE..]);
            let tail_len = padded_tail(&mut tail, rem, msg.len() as u64);
            Lane {
                msg,
                out,
                state: H0,
                block: 0,
                nblocks: full + tail_len / BLOCK_SIZE,
                tail,
                tail_start: full,
            }
        }

        fn block_at(&self, i: usize) -> &[u8] {
            if i < self.tail_start {
                &self.msg[i * BLOCK_SIZE..(i + 1) * BLOCK_SIZE]
            } else {
                let off = (i - self.tail_start) * BLOCK_SIZE;
                &self.tail[off..off + BLOCK_SIZE]
            }
        }

        fn finished(&self) -> bool {
            self.block >= self.nblocks
        }

        /// Compresses the remaining blocks single-stream.
        fn finish_scalar(&mut self) {
            while !self.finished() {
                let block: [u8; BLOCK_SIZE] =
                    self.block_at(self.block).try_into().expect("64 bytes");
                compress_scalar(&mut self.state, &block);
                self.block += 1;
            }
        }
    }

    pub fn hash_all(inputs: &[&[u8]], out: &mut [[u8; DIGEST_SIZE]]) {
        let mut next = 0usize;
        let mut lanes: Vec<Lane> = Vec::with_capacity(LANES);
        while lanes.len() < LANES && next < inputs.len() {
            lanes.push(Lane::new(inputs[next], next));
            next += 1;
        }
        // Lockstep while all four lanes are live.
        while lanes.len() == LANES {
            let mut blocks = [[0u8; BLOCK_SIZE]; LANES];
            for (l, lane) in lanes.iter().enumerate() {
                blocks[l].copy_from_slice(lane.block_at(lane.block));
            }
            let mut states = [[0u32; 8]; LANES];
            for (l, lane) in lanes.iter().enumerate() {
                states[l] = lane.state;
            }
            compress4(&mut states, &blocks);
            for (l, lane) in lanes.iter_mut().enumerate() {
                lane.state = states[l];
                lane.block += 1;
            }
            // Retire finished lanes (digest out, refill or drop).
            let mut l = 0;
            while l < lanes.len() {
                if lanes[l].finished() {
                    out[lanes[l].out] = digest_bytes(&lanes[l].state);
                    if next < inputs.len() {
                        lanes[l] = Lane::new(inputs[next], next);
                        next += 1;
                        l += 1;
                    } else {
                        lanes.swap_remove(l);
                    }
                } else {
                    l += 1;
                }
            }
        }
        // Fewer than four lanes left: single-stream the rest.
        for lane in &mut lanes {
            lane.finish_scalar();
            out[lane.out] = digest_bytes(&lane.state);
        }
        debug_assert_eq!(next, inputs.len());
        // Keep the unused-variant lint honest: this module is scalar-only.
        debug_assert_eq!(Backend::Scalar.name(), "scalar");
    }

    /// Compresses one block into each of four states in lockstep.
    fn compress4(states: &mut [[u32; 8]; LANES], blocks: &[[u8; BLOCK_SIZE]; LANES]) {
        #[cfg(target_arch = "x86_64")]
        sse2::compress4(states, blocks);
        #[cfg(not(target_arch = "x86_64"))]
        portable::compress4(states, blocks);
    }

    /// Portable lane-array rounds: every round variable is a `[u32; 4]`, so
    /// the four dependency chains run interleaved and LLVM may vectorise the
    /// element-wise helpers. Kept compiled on every target so it cannot rot,
    /// used on non-x86_64 (x86_64 takes the explicit SSE2 path below —
    /// LLVM's cost model refuses to auto-vectorise the rotate-heavy rounds
    /// there because scalar x86 has single-op rotates).
    #[cfg_attr(target_arch = "x86_64", allow(dead_code))]
    mod portable {
        use super::super::K;
        use super::{BLOCK_SIZE, LANES};

        type V = [u32; LANES];

        #[inline(always)]
        fn add(a: V, b: V) -> V {
            std::array::from_fn(|l| a[l].wrapping_add(b[l]))
        }

        #[inline(always)]
        fn xor3(a: V, b: V, c: V) -> V {
            std::array::from_fn(|l| a[l] ^ b[l] ^ c[l])
        }

        #[inline(always)]
        fn rotr(a: V, n: u32) -> V {
            std::array::from_fn(|l| a[l].rotate_right(n))
        }

        #[inline(always)]
        fn shr(a: V, n: u32) -> V {
            std::array::from_fn(|l| a[l] >> n)
        }

        /// SHA-256 `Ch(e, f, g) = (e & f) ^ (!e & g)`, lane-wise.
        #[inline(always)]
        fn ch(e: V, f: V, g: V) -> V {
            std::array::from_fn(|l| (e[l] & f[l]) ^ (!e[l] & g[l]))
        }

        /// SHA-256 `Maj(a, b, c)`, lane-wise.
        #[inline(always)]
        fn maj(a: V, b: V, c: V) -> V {
            std::array::from_fn(|l| (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]))
        }

        pub fn compress4(states: &mut [[u32; 8]; LANES], blocks: &[[u8; BLOCK_SIZE]; LANES]) {
            let mut w = [[0u32; LANES]; 64];
            for (t, wt) in w.iter_mut().take(16).enumerate() {
                for l in 0..LANES {
                    wt[l] = u32::from_be_bytes(
                        blocks[l][t * 4..(t + 1) * 4].try_into().expect("4 bytes"),
                    );
                }
            }
            for t in 16..64 {
                let s0 = xor3(rotr(w[t - 15], 7), rotr(w[t - 15], 18), shr(w[t - 15], 3));
                let s1 = xor3(rotr(w[t - 2], 17), rotr(w[t - 2], 19), shr(w[t - 2], 10));
                w[t] = add(add(w[t - 16], s0), add(w[t - 7], s1));
            }
            let load = |i: usize| -> V { std::array::from_fn(|l| states[l][i]) };
            let mut a = load(0);
            let mut b = load(1);
            let mut c = load(2);
            let mut d = load(3);
            let mut e = load(4);
            let mut f = load(5);
            let mut g = load(6);
            let mut h = load(7);
            for t in 0..64 {
                let s1 = xor3(rotr(e, 6), rotr(e, 11), rotr(e, 25));
                let temp1 = add(add(h, s1), add(ch(e, f, g), add([K[t]; LANES], w[t])));
                let s0 = xor3(rotr(a, 2), rotr(a, 13), rotr(a, 22));
                let temp2 = add(s0, maj(a, b, c));
                h = g;
                g = f;
                f = e;
                e = add(d, temp1);
                d = c;
                c = b;
                b = a;
                a = add(temp1, temp2);
            }
            let v = [a, b, c, d, e, f, g, h];
            for l in 0..LANES {
                for i in 0..8 {
                    states[l][i] = states[l][i].wrapping_add(v[i][l]);
                }
            }
        }
    }

    /// Explicit SSE2 rounds: one 128-bit register holds the same round
    /// variable for all four lanes, so every round costs roughly one lane's
    /// worth of vector ops. SSE2 is part of the x86_64 baseline, so this
    /// needs no runtime detection — it IS the scalar batch path on x86_64.
    #[cfg(target_arch = "x86_64")]
    #[allow(unsafe_code)]
    mod sse2 {
        use core::arch::x86_64::*;

        use super::super::K;
        use super::{BLOCK_SIZE, LANES};

        /// `rotr!(v, n)`: rotate each 32-bit lane right by the literal `n`
        /// (SSE2 has no vector rotate; shift-shift-or).
        macro_rules! rotr {
            ($v:expr, $n:literal) => {
                _mm_or_si128(_mm_srli_epi32($v, $n), _mm_slli_epi32($v, 32 - $n))
            };
        }

        macro_rules! add {
            ($a:expr, $b:expr) => {
                _mm_add_epi32($a, $b)
            };
        }

        macro_rules! xor3 {
            ($a:expr, $b:expr, $c:expr) => {
                _mm_xor_si128(_mm_xor_si128($a, $b), $c)
            };
        }

        pub fn compress4(states: &mut [[u32; 8]; LANES], blocks: &[[u8; BLOCK_SIZE]; LANES]) {
            // SAFETY: SSE2 is unconditionally available on x86_64 (baseline
            // target feature); all memory access goes through the safe
            // `states`/`blocks` references and a local store buffer.
            unsafe {
                let word = |l: usize, t: usize| -> i32 {
                    u32::from_be_bytes(blocks[l][t * 4..(t + 1) * 4].try_into().expect("4 bytes"))
                        as i32
                };
                let mut w = [_mm_setzero_si128(); 64];
                for (t, wt) in w.iter_mut().take(16).enumerate() {
                    // `_mm_set_epi32` takes lanes high-to-low: lane 0 last.
                    *wt = _mm_set_epi32(word(3, t), word(2, t), word(1, t), word(0, t));
                }
                for t in 16..64 {
                    let w15 = w[t - 15];
                    let w2 = w[t - 2];
                    let s0 = xor3!(rotr!(w15, 7), rotr!(w15, 18), _mm_srli_epi32(w15, 3));
                    let s1 = xor3!(rotr!(w2, 17), rotr!(w2, 19), _mm_srli_epi32(w2, 10));
                    w[t] = add!(add!(w[t - 16], s0), add!(w[t - 7], s1));
                }
                let load = |i: usize| -> __m128i {
                    _mm_set_epi32(
                        states[3][i] as i32,
                        states[2][i] as i32,
                        states[1][i] as i32,
                        states[0][i] as i32,
                    )
                };
                let mut a = load(0);
                let mut b = load(1);
                let mut c = load(2);
                let mut d = load(3);
                let mut e = load(4);
                let mut f = load(5);
                let mut g = load(6);
                let mut h = load(7);
                for (&k, &wt) in K.iter().zip(&w) {
                    let s1 = xor3!(rotr!(e, 6), rotr!(e, 11), rotr!(e, 25));
                    let ch = _mm_xor_si128(_mm_and_si128(e, f), _mm_andnot_si128(e, g));
                    let temp1 = add!(add!(h, s1), add!(ch, add!(_mm_set1_epi32(k as i32), wt)));
                    let s0 = xor3!(rotr!(a, 2), rotr!(a, 13), rotr!(a, 22));
                    let maj = xor3!(
                        _mm_and_si128(a, b),
                        _mm_and_si128(a, c),
                        _mm_and_si128(b, c)
                    );
                    let temp2 = add!(s0, maj);
                    h = g;
                    g = f;
                    f = e;
                    e = add!(d, temp1);
                    d = c;
                    c = b;
                    b = a;
                    a = add!(temp1, temp2);
                }
                let mut lanes = [0u32; LANES];
                for (i, v) in [a, b, c, d, e, f, g, h].into_iter().enumerate() {
                    _mm_storeu_si128(lanes.as_mut_ptr().cast::<__m128i>(), v);
                    for l in 0..LANES {
                        states[l][i] = states[l][i].wrapping_add(lanes[l]);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180-4 / NIST CAVP test vectors, including the padding-boundary
    /// lengths (empty, 55, 56, 64 bytes) and a multi-block message, run
    /// against every available backend and through the incremental hasher.
    #[test]
    fn nist_test_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (
                // Empty message: padding-only single block.
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
            (
                // 55 bytes: the largest message whose padding fits one block.
                &[0xaau8; 55],
                "a8fb7c3a4d8ea13ca3cbe329d52274d3224c732d4e53e8c90c06bd3089248cf2",
            ),
            (
                // 56 bytes: the first length that forces a second pad block.
                &[0xaau8; 56],
                "d464bb04abbc80a2254cd4ad0f3356f1b70b5b6390085b193edcd291f065b01e",
            ),
            (
                // Exactly one full block: the tail is padding-only.
                &[0xaau8; 64],
                "693e5f0f347a5d70acbb7baaab9beb988301b3e9588e32c73d7dcdfb7b2c4604",
            ),
            (
                // Two-message-block NIST vector (112 bytes).
                b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
                "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
            ),
            (
                // Multi-block with a partial tail (3 blocks + 8 bytes).
                &[0x42u8; 200],
                "91870890f4d01121c77b099d1360c0287186a45e37f03a3c3fde4e08e1f565be",
            ),
        ];
        for (input, expected) in cases {
            for backend in Backend::available() {
                assert_eq!(
                    hex(&hash_with(backend, input)),
                    *expected,
                    "backend {} len {}",
                    backend.name(),
                    input.len()
                );
            }
            let mut h = Sha256::new();
            h.update(input);
            assert_eq!(
                hex(&h.finalize()),
                *expected,
                "incremental len {}",
                input.len()
            );
        }
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_one_shot_at_block_boundaries() {
        let data: Vec<u8> = (0..300u32).map(|i| (i % 256) as u8).collect();
        for split in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 200, 300] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), hash(&data), "split={split}");
        }
    }

    #[test]
    fn hash_parts_matches_concatenation() {
        let a = b"hello ".as_slice();
        let b = b"convergent ".as_slice();
        let c = b"dispersal".as_slice();
        let concat: Vec<u8> = [a, b, c].concat();
        assert_eq!(hash_parts(&[a, b, c]), hash(&concat));
    }

    #[test]
    fn lengths_around_padding_edge_are_all_distinct() {
        // 55, 56, 57, 63, 64, 65 bytes exercise the two padding branches.
        let mut digests = Vec::new();
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xabu8; len];
            digests.push(hash(&data));
        }
        for i in 0..digests.len() {
            for j in i + 1..digests.len() {
                assert_ne!(digests[i], digests[j]);
            }
        }
    }

    #[test]
    fn backends_agree_on_padding_boundaries() {
        for len in [0usize, 1, 55, 56, 57, 63, 64, 65, 119, 127, 128, 129, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i * 13 + 7) as u8).collect();
            let scalar = hash_with(Backend::Scalar, &data);
            for backend in Backend::available() {
                assert_eq!(
                    hash_with(backend, &data),
                    scalar,
                    "backend {} len {len}",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn hash_batch_matches_individual_hashes() {
        // Mixed lengths force lane refills mid-batch in the 4-lane path.
        let msgs: Vec<Vec<u8>> = [0usize, 1, 55, 56, 64, 65, 200, 1000, 31, 64, 128, 5]
            .iter()
            .map(|&len| (0..len).map(|i| (i * 31 + len) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        for count in 0..=refs.len() {
            let batch = hash_batch(&refs[..count]);
            assert_eq!(batch.len(), count);
            for (i, digest) in batch.iter().enumerate() {
                assert_eq!(*digest, hash(refs[i]), "count={count} msg={i}");
            }
            for backend in Backend::available() {
                let with = hash_batch_with(backend, &refs[..count]);
                assert_eq!(with, batch, "backend {} count {count}", backend.name());
            }
        }
    }

    proptest! {
        #[test]
        fn incremental_equals_one_shot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                       splits in proptest::collection::vec(any::<usize>(), 0..5)) {
            let mut h = Sha256::new();
            let mut offset = 0usize;
            let mut cuts: Vec<usize> = splits.iter().map(|s| s % (data.len() + 1)).collect();
            cuts.sort_unstable();
            for cut in cuts {
                if cut > offset {
                    h.update(&data[offset..cut]);
                    offset = cut;
                }
            }
            h.update(&data[offset..]);
            prop_assert_eq!(h.finalize(), hash(&data));
        }

        #[test]
        fn different_inputs_give_different_digests(a in proptest::collection::vec(any::<u8>(), 0..128),
                                                   b in proptest::collection::vec(any::<u8>(), 0..128)) {
            prop_assume!(a != b);
            prop_assert_ne!(hash(&a), hash(&b));
        }

        #[test]
        fn batch_of_arbitrary_messages_matches_one_shot(
            msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..300), 0..12)
        ) {
            let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
            let batch = hash_batch(&refs);
            for (i, digest) in batch.iter().enumerate() {
                prop_assert_eq!(*digest, hash(refs[i]));
            }
        }
    }
}
