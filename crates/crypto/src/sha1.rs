//! SHA-1 (FIPS 180-4), implemented from scratch.
//!
//! The paper's VM image dataset (§5.2) is represented by SHA-1 chunk
//! fingerprints over 4 KB fixed-size chunks; the workload generator uses this
//! implementation to produce compatible fingerprints. SHA-1 is *not* used for
//! any security-relevant purpose in CDStore itself.

/// Output size of SHA-1 in bytes.
pub const DIGEST_SIZE: usize = 20;
/// Internal block size of SHA-1 in bytes.
pub const BLOCK_SIZE: usize = 64;

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; BLOCK_SIZE],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0],
            buffer: [0u8; BLOCK_SIZE],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs more input bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (BLOCK_SIZE - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == BLOCK_SIZE {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= BLOCK_SIZE {
            let (block, rest) = data.split_at(BLOCK_SIZE);
            let block: [u8; BLOCK_SIZE] = block.try_into().expect("block is 64 bytes");
            self.compress(&block);
            data = rest;
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
    }

    /// Finishes the hash and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_SIZE] {
        let bit_len = self.total_len.wrapping_mul(8);
        let mut pad = [0u8; BLOCK_SIZE * 2];
        pad[0] = 0x80;
        let pad_len = if self.buffer_len < 56 {
            56 - self.buffer_len
        } else {
            BLOCK_SIZE + 56 - self.buffer_len
        };
        let saved = self.total_len;
        self.update(&pad[..pad_len]);
        self.update(&bit_len.to_be_bytes());
        self.total_len = saved;
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; DIGEST_SIZE];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; BLOCK_SIZE]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4 bytes"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5a827999u32),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// One-shot SHA-1 of a byte buffer.
pub fn hash(data: &[u8]) -> [u8; DIGEST_SIZE] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(digest: &[u8]) -> String {
        digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180-4 test vectors.
    #[test]
    fn fips_test_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (
                b"The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, expected) in cases {
            assert_eq!(hex(&hash(input)), *expected);
        }
    }

    #[test]
    fn million_a_vector() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..500u32).map(|i| (i * 31 % 256) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 250, 500] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), hash(&data), "split={split}");
        }
    }

    proptest! {
        #[test]
        fn incremental_equals_one_shot(data in proptest::collection::vec(any::<u8>(), 0..1024),
                                       split in any::<usize>()) {
            let cut = split % (data.len() + 1);
            let mut h = Sha1::new();
            h.update(&data[..cut]);
            h.update(&data[cut..]);
            prop_assert_eq!(h.finalize(), hash(&data));
        }
    }
}
