//! Secret sharing algorithms and convergent dispersal.
//!
//! This crate implements every algorithm surveyed in §2 of the CDStore paper
//! (Table 1) plus the paper's contribution, behind a common
//! [`SecretSharing`] trait:
//!
//! | Scheme | Module | Confidentiality degree `r` | Storage blowup | Deduplicable |
//! |---|---|---|---|---|
//! | Shamir's secret sharing (SSSS) | [`ssss`] | `k − 1` | `n` | no |
//! | Rabin's information dispersal (IDA) | [`ida`] | `0` | `n/k` | content-dependent |
//! | Ramp secret sharing (RSSS) | [`rsss`] | `r ∈ [0, k−1]` | `n/(k−r)` | no |
//! | Secret sharing made short (SSMS) | [`ssms`] | `k − 1` | `n/k + n·S_key/S_sec` | no |
//! | AONT-RS (Rivest AONT + RS) | [`aont_rs`] | `k − 1` | `n/k + n/k·S_key/S_sec` | no |
//! | CAONT-RS-Rivest (prior convergent variant) | [`aont_rs`] | `k − 1` | same as AONT-RS | **yes** |
//! | CAONT-RS (OAEP AONT, this paper) | [`caont_rs`] | `k − 1` | same as AONT-RS | **yes** |
//!
//! "Deduplicable" means the scheme is *convergent*: splitting the same secret
//! twice yields byte-identical shares, so per-cloud deduplication removes
//! copies across users.
//!
//! # Examples
//!
//! ```
//! use cdstore_secretsharing::{CaontRs, SecretSharing};
//!
//! let scheme = CaontRs::new(4, 3).unwrap();
//! let secret = b"backup chunk with plenty of entropy 0123456789".to_vec();
//! let shares = scheme.split(&secret).unwrap();
//! assert_eq!(shares.len(), 4);
//!
//! // Convergent: splitting again yields identical shares.
//! assert_eq!(scheme.split(&secret).unwrap(), shares);
//!
//! // Any k = 3 shares reconstruct the secret.
//! let received = vec![None, Some(shares[1].clone()), Some(shares[2].clone()), Some(shares[3].clone())];
//! assert_eq!(scheme.reconstruct(&received, secret.len()).unwrap(), secret);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aont;
pub mod aont_rs;
pub mod caont_rs;
pub mod ida;
pub mod pool;
pub mod rsss;
pub mod ssms;
pub mod ssss;

use core::fmt;

pub use aont_rs::{AontRs, CaontRsRivest};
pub use caont_rs::CaontRs;
pub use ida::Ida;
pub use pool::{BufferPool, PoolStats};
pub use rsss::Rsss;
pub use ssms::Ssms;
pub use ssss::Ssss;

/// Errors returned by secret sharing split/reconstruct operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharingError {
    /// The scheme parameters are invalid.
    InvalidParameters(String),
    /// The supplied share vector has the wrong length (must equal `n`).
    WrongShareCount {
        /// Expected number of entries (`n`).
        expected: usize,
        /// Number supplied.
        actual: usize,
    },
    /// Fewer than `k` shares are available.
    NotEnoughShares {
        /// Shares required (`k`).
        needed: usize,
        /// Shares available.
        available: usize,
    },
    /// Shares have inconsistent sizes.
    InconsistentShareSize,
    /// A share is too short to contain the scheme's trailer/metadata.
    MalformedShare(String),
    /// The reconstructed secret failed its embedded integrity check.
    IntegrityCheckFailed,
    /// An internal erasure-coding error.
    Erasure(String),
    /// A parallel coding worker panicked; the payload is the panic message.
    WorkerPanic(String),
}

impl fmt::Display for SharingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SharingError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            SharingError::WrongShareCount { expected, actual } => {
                write!(f, "expected {expected} share slots, got {actual}")
            }
            SharingError::NotEnoughShares { needed, available } => {
                write!(f, "need {needed} shares, only {available} available")
            }
            SharingError::InconsistentShareSize => write!(f, "shares have inconsistent sizes"),
            SharingError::MalformedShare(msg) => write!(f, "malformed share: {msg}"),
            SharingError::IntegrityCheckFailed => write!(f, "integrity check failed"),
            SharingError::Erasure(msg) => write!(f, "erasure coding error: {msg}"),
            SharingError::WorkerPanic(msg) => write!(f, "coding worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for SharingError {}

impl From<cdstore_erasure::ErasureError> for SharingError {
    fn from(err: cdstore_erasure::ErasureError) -> Self {
        match err {
            cdstore_erasure::ErasureError::NotEnoughShards { needed, available } => {
                SharingError::NotEnoughShares { needed, available }
            }
            cdstore_erasure::ErasureError::WrongShardCount { expected, actual } => {
                SharingError::WrongShareCount { expected, actual }
            }
            cdstore_erasure::ErasureError::InconsistentShardSize => {
                SharingError::InconsistentShareSize
            }
            other => SharingError::Erasure(other.to_string()),
        }
    }
}

/// A secret sharing algorithm with parameters `(n, k, r)`.
///
/// A scheme disperses a secret into `n` shares such that any `k` reconstruct
/// it and no `r` reveal anything about it (§2 of the paper).
pub trait SecretSharing: Send + Sync {
    /// Human-readable scheme name as used in the paper ("CAONT-RS", ...).
    fn name(&self) -> &'static str;

    /// Total number of shares `n`.
    fn n(&self) -> usize;

    /// Reconstruction threshold `k`.
    fn k(&self) -> usize;

    /// Confidentiality degree `r`: the largest number of shares that reveal
    /// nothing about the secret (computationally for the keyed/AONT schemes).
    fn confidentiality_degree(&self) -> usize;

    /// Whether the scheme is *convergent* (deterministic, hence deduplicable).
    fn is_convergent(&self) -> bool {
        false
    }

    /// Expected total size of all `n` shares for a secret of `secret_len`
    /// bytes (used for the Table 1 storage-blowup comparison).
    fn total_share_size(&self, secret_len: usize) -> usize;

    /// Storage blowup: total share size divided by secret size.
    fn storage_blowup(&self, secret_len: usize) -> f64 {
        if secret_len == 0 {
            return self.n() as f64 / self.k() as f64;
        }
        self.total_share_size(secret_len) as f64 / secret_len as f64
    }

    /// Splits a secret into `n` shares (index `i` of the result is the share
    /// for cloud `i`).
    fn split(&self, secret: &[u8]) -> Result<Vec<Vec<u8>>, SharingError>;

    /// Splits a secret into `out`, reusing the capacity of any buffers
    /// already there (e.g. checked out of a [`pool::BufferPool`]).
    ///
    /// `out` is resized to `n` entries and each entry is overwritten in
    /// place. The default implementation falls back to [`split`] and moves
    /// the result (correct for every scheme, no reuse); convergent schemes on
    /// the streaming data path override it to encode allocation-free.
    ///
    /// [`split`]: SecretSharing::split
    fn split_into(&self, secret: &[u8], out: &mut Vec<Vec<u8>>) -> Result<(), SharingError> {
        let shares = self.split(secret)?;
        out.clear();
        out.extend(shares);
        Ok(())
    }

    /// Reconstructs the secret from at least `k` shares. `shares` must have
    /// exactly `n` entries, with `None` marking a missing share; the position
    /// of each share encodes its index.
    fn reconstruct(
        &self,
        shares: &[Option<Vec<u8>>],
        secret_len: usize,
    ) -> Result<Vec<u8>, SharingError>;
}

/// Identifier of a secret sharing scheme, used by configuration and the
/// benchmark harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Shamir's secret sharing.
    Ssss,
    /// Rabin's information dispersal algorithm.
    Ida,
    /// Ramp secret sharing (requires an explicit `r`).
    Rsss,
    /// Krawczyk's secret sharing made short.
    Ssms,
    /// Resch-Plank AONT-RS with a random key.
    AontRs,
    /// Convergent AONT-RS built on Rivest's AONT (the authors' prior work).
    CaontRsRivest,
    /// Convergent AONT-RS built on OAEP (this paper's contribution).
    CaontRs,
}

impl SchemeKind {
    /// All scheme kinds, in the order used by Table 1 plus the convergent
    /// variants.
    pub const ALL: [SchemeKind; 7] = [
        SchemeKind::Ssss,
        SchemeKind::Ida,
        SchemeKind::Rsss,
        SchemeKind::Ssms,
        SchemeKind::AontRs,
        SchemeKind::CaontRsRivest,
        SchemeKind::CaontRs,
    ];
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SchemeKind::Ssss => "SSSS",
            SchemeKind::Ida => "IDA",
            SchemeKind::Rsss => "RSSS",
            SchemeKind::Ssms => "SSMS",
            SchemeKind::AontRs => "AONT-RS",
            SchemeKind::CaontRsRivest => "CAONT-RS-Rivest",
            SchemeKind::CaontRs => "CAONT-RS",
        };
        write!(f, "{name}")
    }
}

/// Builds a boxed scheme of the given kind with parameters `(n, k)`.
///
/// For [`SchemeKind::Rsss`], `r` defaults to `k − 1` when `None` so the
/// comparison matches the confidentiality level of the other schemes; pass an
/// explicit value to explore the ramp trade-off.
pub fn build_scheme(
    kind: SchemeKind,
    n: usize,
    k: usize,
    r: Option<usize>,
) -> Result<Box<dyn SecretSharing>, SharingError> {
    Ok(match kind {
        SchemeKind::Ssss => Box::new(Ssss::new(n, k)?),
        SchemeKind::Ida => Box::new(Ida::new(n, k)?),
        SchemeKind::Rsss => Box::new(Rsss::new(n, k, r.unwrap_or(k.saturating_sub(1)))?),
        SchemeKind::Ssms => Box::new(Ssms::new(n, k)?),
        SchemeKind::AontRs => Box::new(AontRs::new(n, k)?),
        SchemeKind::CaontRsRivest => Box::new(CaontRsRivest::new(n, k)?),
        SchemeKind::CaontRs => Box::new(CaontRs::new(n, k)?),
    })
}

/// Validates the common `(n, k)` parameter constraints shared by all schemes.
pub(crate) fn validate_n_k(n: usize, k: usize) -> Result<(), SharingError> {
    if k == 0 || n <= k || n > 255 {
        return Err(SharingError::InvalidParameters(format!(
            "require 0 < k < n <= 255, got n={n}, k={k}"
        )));
    }
    Ok(())
}

/// Collects the indices of available shares and validates counts/sizes.
/// Returns `(indices, share_len)`. Generic over owned (`Vec<u8>`) and
/// borrowed (`&[u8]`) shares so subset-selecting decoders can validate
/// without copying share bytes.
pub(crate) fn validate_shares<S: AsRef<[u8]>>(
    shares: &[Option<S>],
    n: usize,
    k: usize,
) -> Result<(Vec<usize>, usize), SharingError> {
    if shares.len() != n {
        return Err(SharingError::WrongShareCount {
            expected: n,
            actual: shares.len(),
        });
    }
    let available: Vec<usize> = shares
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.as_ref().map(|_| i))
        .collect();
    if available.len() < k {
        return Err(SharingError::NotEnoughShares {
            needed: k,
            available: available.len(),
        });
    }
    let len = shares[available[0]]
        .as_ref()
        .expect("available")
        .as_ref()
        .len();
    if available
        .iter()
        .any(|&i| shares[i].as_ref().expect("available").as_ref().len() != len)
    {
        return Err(SharingError::InconsistentShareSize);
    }
    Ok((available, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_scheme_constructs_every_kind() {
        for kind in SchemeKind::ALL {
            let scheme = build_scheme(kind, 4, 3, None).unwrap();
            assert_eq!(scheme.n(), 4);
            assert_eq!(scheme.k(), 3);
            let secret: Vec<u8> = (0..200u32).map(|i| (i % 256) as u8).collect();
            let shares = scheme.split(&secret).unwrap();
            assert_eq!(shares.len(), 4);
            let received: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
            assert_eq!(scheme.reconstruct(&received, secret.len()).unwrap(), secret);
        }
    }

    #[test]
    fn scheme_kind_display_matches_paper_names() {
        assert_eq!(SchemeKind::Ssss.to_string(), "SSSS");
        assert_eq!(SchemeKind::CaontRs.to_string(), "CAONT-RS");
        assert_eq!(SchemeKind::CaontRsRivest.to_string(), "CAONT-RS-Rivest");
    }

    #[test]
    fn convergent_flags_match_table() {
        let convergent = [SchemeKind::CaontRs, SchemeKind::CaontRsRivest];
        for kind in SchemeKind::ALL {
            let scheme = build_scheme(kind, 4, 3, None).unwrap();
            assert_eq!(scheme.is_convergent(), convergent.contains(&kind), "{kind}");
        }
    }

    #[test]
    fn confidentiality_degrees_match_table1() {
        assert_eq!(
            build_scheme(SchemeKind::Ssss, 4, 3, None)
                .unwrap()
                .confidentiality_degree(),
            2
        );
        assert_eq!(
            build_scheme(SchemeKind::Ida, 4, 3, None)
                .unwrap()
                .confidentiality_degree(),
            0
        );
        assert_eq!(
            build_scheme(SchemeKind::Rsss, 4, 3, Some(1))
                .unwrap()
                .confidentiality_degree(),
            1
        );
        assert_eq!(
            build_scheme(SchemeKind::Ssms, 4, 3, None)
                .unwrap()
                .confidentiality_degree(),
            2
        );
        assert_eq!(
            build_scheme(SchemeKind::AontRs, 4, 3, None)
                .unwrap()
                .confidentiality_degree(),
            2
        );
        assert_eq!(
            build_scheme(SchemeKind::CaontRs, 4, 3, None)
                .unwrap()
                .confidentiality_degree(),
            2
        );
    }

    #[test]
    fn validate_n_k_rejects_bad_parameters() {
        assert!(validate_n_k(4, 3).is_ok());
        assert!(validate_n_k(3, 3).is_err());
        assert!(validate_n_k(3, 0).is_err());
        assert!(validate_n_k(300, 3).is_err());
    }
}
