//! Secret sharing made short (SSMS) \[34\].
//!
//! Krawczyk's construction combines key-based encryption with both IDA and
//! SSSS: the secret is encrypted under a fresh random key, the *ciphertext*
//! is dispersed with IDA (optimal `n/k` blowup), and the small *key* is
//! dispersed with SSSS (blowup `n`, but over only 32 bytes). Each share is
//! the concatenation of one ciphertext fragment and one key fragment, giving
//! the Table 1 blowup `n/k + n · S_key / S_sec` with computational
//! confidentiality degree `r = k − 1`.

use cdstore_crypto::ctr::Aes256Ctr;
use cdstore_erasure::{shard_size, ReedSolomon};
use rand::RngCore;

use crate::{ssss::Ssss, validate_shares, SecretSharing, SharingError};

/// Size of the random data-encryption key in bytes (AES-256).
pub const KEY_SIZE: usize = 32;

/// Krawczyk's `(n, k)` secret sharing made short.
#[derive(Debug, Clone)]
pub struct Ssms {
    n: usize,
    k: usize,
    rs: ReedSolomon,
    key_sharing: Ssss,
}

impl Ssms {
    /// Creates an SSMS scheme with `0 < k < n <= 255`.
    pub fn new(n: usize, k: usize) -> Result<Self, SharingError> {
        crate::validate_n_k(n, k)?;
        Ok(Ssms {
            n,
            k,
            rs: ReedSolomon::new(n, k)?,
            key_sharing: Ssss::new(n, k)?,
        })
    }

    /// Splits with an explicit RNG (deterministic tests).
    pub fn split_with_rng<R: RngCore>(
        &self,
        secret: &[u8],
        rng: &mut R,
    ) -> Result<Vec<Vec<u8>>, SharingError> {
        // Encrypt the secret with a fresh random key.
        let mut key = [0u8; KEY_SIZE];
        rng.fill_bytes(&mut key);
        let ciphertext = Aes256Ctr::new(&key, 0).encrypt(secret);
        // Disperse the ciphertext with IDA and the key with SSSS.
        let data_shares = self.rs.encode_data(&ciphertext)?;
        let key_shares = self.key_sharing.split_with_rng(&key, rng)?;
        // Each share is ciphertext fragment || key fragment.
        Ok(data_shares
            .into_iter()
            .zip(key_shares)
            .map(|(mut d, k)| {
                d.extend_from_slice(&k);
                d
            })
            .collect())
    }
}

impl SecretSharing for Ssms {
    fn name(&self) -> &'static str {
        "SSMS"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn confidentiality_degree(&self) -> usize {
        self.k - 1
    }

    fn total_share_size(&self, secret_len: usize) -> usize {
        self.n * (shard_size(secret_len, self.k) + KEY_SIZE)
    }

    fn split(&self, secret: &[u8]) -> Result<Vec<Vec<u8>>, SharingError> {
        self.split_with_rng(secret, &mut rand::thread_rng())
    }

    fn reconstruct(
        &self,
        shares: &[Option<Vec<u8>>],
        secret_len: usize,
    ) -> Result<Vec<u8>, SharingError> {
        let (_, share_len) = validate_shares(shares, self.n, self.k)?;
        if share_len < KEY_SIZE {
            return Err(SharingError::MalformedShare(format!(
                "SSMS share of {share_len} bytes cannot contain a {KEY_SIZE}-byte key fragment"
            )));
        }
        let frag_len = share_len - KEY_SIZE;
        // Separate ciphertext fragments from key fragments.
        let mut data_shares: Vec<Option<Vec<u8>>> = Vec::with_capacity(self.n);
        let mut key_shares: Vec<Option<Vec<u8>>> = Vec::with_capacity(self.n);
        for share in shares {
            match share {
                Some(s) => {
                    data_shares.push(Some(s[..frag_len].to_vec()));
                    key_shares.push(Some(s[frag_len..].to_vec()));
                }
                None => {
                    data_shares.push(None);
                    key_shares.push(None);
                }
            }
        }
        let ciphertext = self.rs.reconstruct_data(&data_shares, secret_len)?;
        let key_bytes = self.key_sharing.reconstruct(&key_shares, KEY_SIZE)?;
        let key: [u8; KEY_SIZE] = key_bytes
            .try_into()
            .map_err(|_| SharingError::MalformedShare("key fragment has wrong size".into()))?;
        Ok(Aes256Ctr::new(&key, 0).encrypt(&ciphertext))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_basic() {
        let scheme = Ssms::new(4, 3).unwrap();
        let secret: Vec<u8> = (0..500u32).map(|i| (i % 256) as u8).collect();
        let shares = scheme.split(&secret).unwrap();
        assert_eq!(shares.len(), 4);
        let received: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        assert_eq!(scheme.reconstruct(&received, secret.len()).unwrap(), secret);
    }

    #[test]
    fn tolerates_n_minus_k_losses() {
        let scheme = Ssms::new(5, 3).unwrap();
        let secret = b"encrypt then disperse".to_vec();
        let shares = scheme.split(&secret).unwrap();
        let received: Vec<Option<Vec<u8>>> = shares
            .into_iter()
            .enumerate()
            .map(|(i, s)| (i != 0 && i != 4).then_some(s))
            .collect();
        assert_eq!(scheme.reconstruct(&received, secret.len()).unwrap(), secret);
    }

    #[test]
    fn blowup_matches_table1_formula() {
        // Table 1: n/k + n * S_key / S_sec.
        let scheme = Ssms::new(4, 3).unwrap();
        let secret_len = 8 * 1024;
        let expected = 4.0 / 3.0 + 4.0 * KEY_SIZE as f64 / secret_len as f64;
        assert!((scheme.storage_blowup(secret_len) - expected).abs() < 1e-3);
    }

    #[test]
    fn blowup_is_smaller_than_ssss_for_large_secrets() {
        let ssms = Ssms::new(4, 3).unwrap();
        let ssss = crate::Ssss::new(4, 3).unwrap();
        let len = 8 * 1024;
        assert!(ssms.storage_blowup(len) < ssss.storage_blowup(len) / 2.0);
    }

    #[test]
    fn ciphertext_shares_look_random() {
        // The data fragments carried by the shares are AES-CTR ciphertext of
        // an all-zero secret, so they must not be all zero.
        let scheme = Ssms::new(4, 3).unwrap();
        let secret = vec![0u8; 300];
        let shares = scheme.split(&secret).unwrap();
        for share in &shares[..3] {
            assert!(share.iter().any(|&b| b != 0));
        }
    }

    #[test]
    fn randomized_so_not_convergent() {
        let scheme = Ssms::new(4, 3).unwrap();
        let secret = vec![7u8; 100];
        assert_ne!(
            scheme.split(&secret).unwrap(),
            scheme.split(&secret).unwrap()
        );
        assert!(!scheme.is_convergent());
    }

    #[test]
    fn too_short_shares_are_rejected() {
        let scheme = Ssms::new(4, 3).unwrap();
        let received: Vec<Option<Vec<u8>>> = vec![Some(vec![1u8; 4]); 4];
        assert!(matches!(
            scheme.reconstruct(&received, 100),
            Err(SharingError::MalformedShare(_))
        ));
    }

    proptest! {
        #[test]
        fn round_trips_for_arbitrary_secrets(secret in proptest::collection::vec(any::<u8>(), 0..400)) {
            let scheme = Ssms::new(4, 3).unwrap();
            let shares = scheme.split(&secret).unwrap();
            let received: Vec<Option<Vec<u8>>> = shares.into_iter().enumerate()
                .map(|(i, s)| (i != 1).then_some(s))
                .collect();
            prop_assert_eq!(scheme.reconstruct(&received, secret.len()).unwrap(), secret);
        }
    }
}
