//! Rabin's information dispersal algorithm (IDA) \[50\].
//!
//! The secret is split into `k` pieces and transformed into `n` shares by an
//! `n x k` dispersal matrix whose every `k x k` submatrix is invertible.
//! Storage blowup is the optimal `n/k`, but the confidentiality degree is
//! `r = 0`: a single share can reveal information about the secret (with the
//! systematic code used here, the first `k` shares literally contain it).

use cdstore_erasure::ReedSolomon;

use crate::{SecretSharing, SharingError};

/// Rabin's `(n, k)` information dispersal.
#[derive(Debug, Clone)]
pub struct Ida {
    rs: ReedSolomon,
}

impl Ida {
    /// Creates an IDA instance with `0 < k < n <= 255`.
    pub fn new(n: usize, k: usize) -> Result<Self, SharingError> {
        crate::validate_n_k(n, k)?;
        let rs = ReedSolomon::new(n, k)?;
        Ok(Ida { rs })
    }

    /// Size of each share for a secret of `secret_len` bytes.
    pub fn share_size(&self, secret_len: usize) -> usize {
        cdstore_erasure::shard_size(secret_len, self.rs.data_shards())
    }
}

impl SecretSharing for Ida {
    fn name(&self) -> &'static str {
        "IDA"
    }

    fn n(&self) -> usize {
        self.rs.total_shards()
    }

    fn k(&self) -> usize {
        self.rs.data_shards()
    }

    fn confidentiality_degree(&self) -> usize {
        0
    }

    fn total_share_size(&self, secret_len: usize) -> usize {
        self.n() * self.share_size(secret_len)
    }

    fn split(&self, secret: &[u8]) -> Result<Vec<Vec<u8>>, SharingError> {
        Ok(self.rs.encode_data(secret)?)
    }

    fn reconstruct(
        &self,
        shares: &[Option<Vec<u8>>],
        secret_len: usize,
    ) -> Result<Vec<u8>, SharingError> {
        Ok(self.rs.reconstruct_data(shares, secret_len)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_and_blowup() {
        let ida = Ida::new(4, 3).unwrap();
        let secret: Vec<u8> = (0..300u32).map(|i| (i % 256) as u8).collect();
        let shares = ida.split(&secret).unwrap();
        assert_eq!(shares.len(), 4);
        assert_eq!(shares[0].len(), 100);
        assert!((ida.storage_blowup(300) - 4.0 / 3.0).abs() < 1e-9);
        let received: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        assert_eq!(ida.reconstruct(&received, 300).unwrap(), secret);
    }

    #[test]
    fn ida_is_deterministic_but_not_flagged_convergent() {
        // IDA has no randomness, so identical secrets produce identical
        // shares; it is still not a *secure* convergent scheme because r = 0.
        let ida = Ida::new(4, 2).unwrap();
        let secret = b"plain dispersal".to_vec();
        assert_eq!(ida.split(&secret).unwrap(), ida.split(&secret).unwrap());
        assert!(!ida.is_convergent());
        assert_eq!(ida.confidentiality_degree(), 0);
    }

    #[test]
    fn loses_up_to_n_minus_k_shares() {
        let ida = Ida::new(6, 4).unwrap();
        let secret: Vec<u8> = (0..997u32).map(|i| (i * 13 % 256) as u8).collect();
        let shares = ida.split(&secret).unwrap();
        let mut received: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        received[0] = None;
        received[5] = None;
        assert_eq!(ida.reconstruct(&received, secret.len()).unwrap(), secret);
        received[1] = None;
        assert!(matches!(
            ida.reconstruct(&received, secret.len()),
            Err(SharingError::NotEnoughShares { .. })
        ));
    }

    proptest! {
        #[test]
        fn round_trips_for_arbitrary_secrets(secret in proptest::collection::vec(any::<u8>(), 0..600),
                                             n in 3usize..10) {
            let k = n - 1;
            let ida = Ida::new(n, k).unwrap();
            let shares = ida.split(&secret).unwrap();
            let received: Vec<Option<Vec<u8>>> = shares.into_iter().enumerate()
                .map(|(i, s)| (i != 0).then_some(s))
                .collect();
            prop_assert_eq!(ida.reconstruct(&received, secret.len()).unwrap(), secret);
        }
    }
}
