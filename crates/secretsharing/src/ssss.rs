//! Shamir's secret sharing scheme (SSSS) \[54\].
//!
//! Every byte of the secret is shared independently: a random polynomial of
//! degree `k−1` with the secret byte as constant term is evaluated at `n`
//! distinct non-zero points. Any `k` evaluations recover the byte by Lagrange
//! interpolation; `k−1` or fewer reveal nothing (information-theoretically).
//! Each share has the same size as the secret, so the storage blowup is `n`.

use cdstore_gf::{poly, Gf256};
use rand::RngCore;

use crate::{validate_n_k, validate_shares, SecretSharing, SharingError};

/// Shamir's `(n, k)` secret sharing over GF(2^8).
#[derive(Debug, Clone)]
pub struct Ssss {
    n: usize,
    k: usize,
}

impl Ssss {
    /// Creates a Shamir scheme with `0 < k < n <= 255`.
    pub fn new(n: usize, k: usize) -> Result<Self, SharingError> {
        validate_n_k(n, k)?;
        Ok(Ssss { n, k })
    }

    /// Splits with an explicit random number generator (deterministic tests).
    pub fn split_with_rng<R: RngCore>(
        &self,
        secret: &[u8],
        rng: &mut R,
    ) -> Result<Vec<Vec<u8>>, SharingError> {
        let mut shares = vec![vec![0u8; secret.len()]; self.n];
        // Random coefficients for degree 1..k-1, refreshed per byte.
        let mut coeffs = vec![Gf256::ZERO; self.k];
        for (byte_idx, &s) in secret.iter().enumerate() {
            coeffs[0] = Gf256::new(s);
            for c in coeffs.iter_mut().skip(1) {
                *c = Gf256::new((rng.next_u32() & 0xff) as u8);
            }
            for (share_idx, share) in shares.iter_mut().enumerate() {
                let x = Gf256::new((share_idx + 1) as u8);
                share[byte_idx] = poly::eval(&coeffs, x).value();
            }
        }
        Ok(shares)
    }
}

impl SecretSharing for Ssss {
    fn name(&self) -> &'static str {
        "SSSS"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn confidentiality_degree(&self) -> usize {
        self.k - 1
    }

    fn total_share_size(&self, secret_len: usize) -> usize {
        // Each of the n shares is as large as the secret.
        self.n * secret_len
    }

    fn split(&self, secret: &[u8]) -> Result<Vec<Vec<u8>>, SharingError> {
        self.split_with_rng(secret, &mut rand::thread_rng())
    }

    fn reconstruct(
        &self,
        shares: &[Option<Vec<u8>>],
        secret_len: usize,
    ) -> Result<Vec<u8>, SharingError> {
        let (available, share_len) = validate_shares(shares, self.n, self.k)?;
        if share_len < secret_len {
            return Err(SharingError::MalformedShare(format!(
                "share length {share_len} is shorter than the secret length {secret_len}"
            )));
        }
        let chosen = &available[..self.k];
        let mut secret = vec![0u8; secret_len];
        let mut points = vec![(Gf256::ZERO, Gf256::ZERO); self.k];
        for (byte_idx, out) in secret.iter_mut().enumerate() {
            for (slot, &share_idx) in chosen.iter().enumerate() {
                let y = shares[share_idx].as_ref().expect("available")[byte_idx];
                points[slot] = (Gf256::new((share_idx + 1) as u8), Gf256::new(y));
            }
            *out = poly::interpolate_at_zero(&points)
                .ok_or_else(|| SharingError::MalformedShare("duplicate share indices".into()))?
                .value();
        }
        Ok(secret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn round_trip_with_all_shares() {
        let scheme = Ssss::new(5, 3).unwrap();
        let secret = b"shamir keeps secrets".to_vec();
        let shares = scheme.split(&secret).unwrap();
        assert_eq!(shares.len(), 5);
        assert!(shares.iter().all(|s| s.len() == secret.len()));
        let received: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        assert_eq!(scheme.reconstruct(&received, secret.len()).unwrap(), secret);
    }

    #[test]
    fn any_k_subset_reconstructs() {
        let scheme = Ssss::new(5, 3).unwrap();
        let secret: Vec<u8> = (0..100).collect();
        let shares = scheme.split(&secret).unwrap();
        for a in 0..5 {
            for b in a + 1..5 {
                for c in b + 1..5 {
                    let mut received: Vec<Option<Vec<u8>>> = vec![None; 5];
                    for &i in &[a, b, c] {
                        received[i] = Some(shares[i].clone());
                    }
                    assert_eq!(scheme.reconstruct(&received, secret.len()).unwrap(), secret);
                }
            }
        }
    }

    #[test]
    fn fewer_than_k_shares_fails() {
        let scheme = Ssss::new(4, 3).unwrap();
        let shares = scheme.split(b"top secret").unwrap();
        let received = vec![Some(shares[0].clone()), None, None, Some(shares[3].clone())];
        assert!(matches!(
            scheme.reconstruct(&received, 10),
            Err(SharingError::NotEnoughShares { .. })
        ));
    }

    #[test]
    fn shares_are_randomized_not_convergent() {
        let scheme = Ssss::new(4, 2).unwrap();
        let secret = vec![0x55u8; 64];
        let shares_a = scheme.split(&secret).unwrap();
        let shares_b = scheme.split(&secret).unwrap();
        assert_ne!(shares_a, shares_b, "SSSS must embed fresh randomness");
        assert!(!scheme.is_convergent());
    }

    #[test]
    fn deterministic_with_seeded_rng() {
        let scheme = Ssss::new(4, 2).unwrap();
        let secret = b"seeded".to_vec();
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(9);
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(9);
        assert_eq!(
            scheme.split_with_rng(&secret, &mut rng1).unwrap(),
            scheme.split_with_rng(&secret, &mut rng2).unwrap()
        );
    }

    #[test]
    fn single_share_of_2_of_n_is_not_the_secret() {
        // With k = 2, a single share must differ from the plaintext secret
        // (information-theoretic hiding means it is uniformly random, so a
        // collision over 64 bytes is negligible).
        let scheme = Ssss::new(3, 2).unwrap();
        let secret = vec![0u8; 64];
        let shares = scheme.split(&secret).unwrap();
        for share in &shares {
            assert_ne!(share, &secret);
        }
    }

    #[test]
    fn storage_blowup_is_n() {
        let scheme = Ssss::new(6, 4).unwrap();
        assert_eq!(scheme.total_share_size(1000), 6000);
        assert!((scheme.storage_blowup(1000) - 6.0).abs() < 1e-9);
        assert_eq!(scheme.confidentiality_degree(), 3);
    }

    #[test]
    fn empty_secret_round_trips() {
        let scheme = Ssss::new(4, 3).unwrap();
        let shares = scheme.split(b"").unwrap();
        let received: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        assert_eq!(scheme.reconstruct(&received, 0).unwrap(), Vec::<u8>::new());
    }

    proptest! {
        #[test]
        fn random_subsets_round_trip(secret in proptest::collection::vec(any::<u8>(), 0..200),
                                     seed: u64,
                                     n in 3usize..8) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let k = 2 + (seed as usize % (n - 2).max(1)).min(n - 2);
            let scheme = Ssss::new(n, k).unwrap();
            let shares = scheme.split_with_rng(&secret, &mut rng).unwrap();
            // Keep the last k shares (arbitrary subset).
            let received: Vec<Option<Vec<u8>>> = (0..n)
                .map(|i| (i >= n - k).then(|| shares[i].clone()))
                .collect();
            prop_assert_eq!(scheme.reconstruct(&received, secret.len()).unwrap(), secret);
        }
    }
}
