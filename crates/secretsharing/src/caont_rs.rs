//! CAONT-RS — the paper's convergent dispersal instantiation (§3.2).
//!
//! CAONT-RS replaces Rivest's word-oriented AONT with an OAEP-based
//! all-or-nothing transform and the random key with a deterministic hash of
//! the secret:
//!
//! 1. `h = H(X)` — the convergent hash key (SHA-256, optionally salted);
//! 2. `Y = X ⊕ G(h)` where `G(h) = E(h, C)` encrypts a constant-value block
//!    `C` under `h` (one bulk AES-256-CTR pass);
//! 3. `t = h ⊕ H(Y)` — the package tail;
//! 4. the CAONT package `(Y, t)` is divided into `k` equal shares and encoded
//!    into `n` shares with a systematic Reed-Solomon code. Share `i` is
//!    always stored on cloud `i`, so identical secrets deduplicate per cloud.
//!
//! Decoding reverses the steps and verifies `H(X) == h`, giving an embedded
//! integrity check on the recovered secret.

use std::cell::RefCell;

use cdstore_crypto::{constant_time_eq, ctr, sha256};
use cdstore_erasure::ReedSolomon;

use crate::{validate_shares, SecretSharing, SharingError};

thread_local! {
    /// Per-thread CAONT package scratch for [`CaontRs::split_into`]: each
    /// encode worker settles on one buffer at its working chunk size instead
    /// of allocating a package per secret.
    static PACKAGE_SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

/// Size of the convergent hash key / package tail in bytes.
pub const HASH_SIZE: usize = 32;

/// CAONT-RS convergent dispersal with parameters `(n, k)` (and `r = k − 1`).
#[derive(Debug, Clone)]
pub struct CaontRs {
    n: usize,
    k: usize,
    rs: ReedSolomon,
    /// Optional salt mixed into the convergent hash. All clients of one
    /// organisation share the salt; it turns the hash into an
    /// organisation-scoped key so cross-organisation dictionary attacks are
    /// harder (a lightweight version of the server-aided keying discussed in
    /// §3.2 Remarks).
    salt: Option<Vec<u8>>,
}

impl CaontRs {
    /// Creates a CAONT-RS scheme with `0 < k < n <= 255` and no salt.
    pub fn new(n: usize, k: usize) -> Result<Self, SharingError> {
        crate::validate_n_k(n, k)?;
        Ok(CaontRs {
            n,
            k,
            rs: ReedSolomon::new(n, k)?,
            salt: None,
        })
    }

    /// Creates a CAONT-RS scheme whose convergent hash is salted with an
    /// organisation-wide secret value.
    pub fn with_salt(n: usize, k: usize, salt: &[u8]) -> Result<Self, SharingError> {
        let mut scheme = Self::new(n, k)?;
        scheme.salt = Some(salt.to_vec());
        Ok(scheme)
    }

    /// Computes the convergent hash key `h = H(salt || X)` of a secret.
    pub fn hash_key(&self, secret: &[u8]) -> [u8; HASH_SIZE] {
        match &self.salt {
            Some(salt) => sha256::hash_parts(&[salt, secret]),
            None => sha256::hash(secret),
        }
    }

    /// Returns the padded secret length: the smallest length at least
    /// `secret_len` such that the CAONT package (`padded + HASH_SIZE`)
    /// divides evenly into `k` shares.
    pub fn padded_secret_len(&self, secret_len: usize) -> usize {
        let mut padded = secret_len;
        while !(padded + HASH_SIZE).is_multiple_of(self.k) {
            padded += 1;
        }
        padded
    }

    /// Size of each share for a secret of `secret_len` bytes.
    pub fn share_size(&self, secret_len: usize) -> usize {
        (self.padded_secret_len(secret_len) + HASH_SIZE) / self.k
    }

    /// Builds the CAONT package `(Y, t)` for a secret (before Reed-Solomon).
    pub fn build_package(&self, secret: &[u8]) -> Vec<u8> {
        let mut package = Vec::new();
        self.build_package_into(secret, &mut package);
        package
    }

    /// Builds the CAONT package into `package`, reusing its capacity.
    pub fn build_package_into(&self, secret: &[u8], package: &mut Vec<u8>) {
        let padded_len = self.padded_secret_len(secret.len());
        // X (zero-padded to the package-friendly length).
        package.clear();
        package.extend_from_slice(secret);
        package.resize(padded_len + HASH_SIZE, 0);
        // h = H(X) over the padded secret so encode/decode agree.
        let h = self.hash_key(&package[..padded_len]);
        // Y = X ⊕ G(h)  (single bulk CTR pass over the head).
        ctr::apply_generator_mask(&h, &mut package[..padded_len]);
        // t = h ⊕ H(Y).
        let hy = sha256::hash(&package[..padded_len]);
        for i in 0..HASH_SIZE {
            package[padded_len + i] = h[i] ^ hy[i];
        }
    }

    /// Inverts [`CaontRs::build_package`], verifying the embedded hash.
    pub fn open_package(&self, package: &[u8], secret_len: usize) -> Result<Vec<u8>, SharingError> {
        if package.len() < HASH_SIZE || package.len() - HASH_SIZE < secret_len {
            return Err(SharingError::MalformedShare(format!(
                "CAONT package of {} bytes is too short for a {secret_len}-byte secret",
                package.len()
            )));
        }
        let padded_len = package.len() - HASH_SIZE;
        let (y, t) = package.split_at(padded_len);
        // h = t ⊕ H(Y).
        let hy = sha256::hash(y);
        let mut h = [0u8; HASH_SIZE];
        for i in 0..HASH_SIZE {
            h[i] = t[i] ^ hy[i];
        }
        // X = Y ⊕ G(h).
        let mut x = y.to_vec();
        ctr::apply_generator_mask(&h, &mut x);
        // Integrity: H(X) must equal h.
        let expected = self.hash_key(&x);
        if !constant_time_eq(&expected, &h) {
            return Err(SharingError::IntegrityCheckFailed);
        }
        x.truncate(secret_len);
        Ok(x)
    }

    /// Reconstructs the secret by brute-forcing subsets of `k` shares until
    /// one decodes with a valid integrity hash (§3.2: the recovery strategy
    /// when some retrieved shares are corrupted).
    pub fn reconstruct_bruteforce(
        &self,
        shares: &[Option<Vec<u8>>],
        secret_len: usize,
    ) -> Result<Vec<u8>, SharingError> {
        let (available, _) = validate_shares(shares, self.n, self.k)?;
        let subsets = k_subsets(&available, self.k);
        let mut last_err = SharingError::IntegrityCheckFailed;
        // One borrowed candidate view, reset per subset — the share bytes are
        // never copied, only the k chosen slices are exposed to the decoder.
        let mut candidate: Vec<Option<&[u8]>> = vec![None; self.n];
        for subset in subsets {
            candidate.iter_mut().for_each(|c| *c = None);
            for &i in &subset {
                candidate[i] = shares[i].as_deref();
            }
            match self.try_reconstruct_borrowed(&candidate, secret_len) {
                Ok(secret) => return Ok(secret),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    fn try_reconstruct(
        &self,
        shares: &[Option<Vec<u8>>],
        secret_len: usize,
    ) -> Result<Vec<u8>, SharingError> {
        let borrowed: Vec<Option<&[u8]>> = shares.iter().map(|s| s.as_deref()).collect();
        self.try_reconstruct_borrowed(&borrowed, secret_len)
    }

    fn try_reconstruct_borrowed(
        &self,
        shares: &[Option<&[u8]>],
        secret_len: usize,
    ) -> Result<Vec<u8>, SharingError> {
        let (_, share_len) = validate_shares(shares, self.n, self.k)?;
        let package_len = share_len * self.k;
        let package = self.rs.reconstruct_data_borrowed(shares, package_len)?;
        self.open_package(&package, secret_len)
    }
}

/// Enumerates all `k`-element subsets of `items` (small `n`, used by the
/// brute-force decode path).
fn k_subsets(items: &[usize], k: usize) -> Vec<Vec<usize>> {
    if k == 0 {
        return vec![vec![]];
    }
    if items.len() < k {
        return vec![];
    }
    let mut out = Vec::new();
    for (i, &item) in items.iter().enumerate() {
        for mut rest in k_subsets(&items[i + 1..], k - 1) {
            let mut subset = vec![item];
            subset.append(&mut rest);
            out.push(subset);
        }
    }
    out
}

impl SecretSharing for CaontRs {
    fn name(&self) -> &'static str {
        "CAONT-RS"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn confidentiality_degree(&self) -> usize {
        self.k - 1
    }

    fn is_convergent(&self) -> bool {
        true
    }

    fn total_share_size(&self, secret_len: usize) -> usize {
        self.n * self.share_size(secret_len)
    }

    fn split(&self, secret: &[u8]) -> Result<Vec<Vec<u8>>, SharingError> {
        let package = self.build_package(secret);
        // The package length is a multiple of k by construction; the encoder
        // splits it into the k data shares and appends n − k parity shares.
        // Share i goes to cloud i (§3.2), which the caller realises by
        // indexing the returned vector.
        Ok(self.rs.encode_data(&package)?)
    }

    fn split_into(&self, secret: &[u8], out: &mut Vec<Vec<u8>>) -> Result<(), SharingError> {
        // Zero-allocation steady state: the package lives in a thread-local
        // scratch buffer and the shares land in the caller's reused buffers.
        PACKAGE_SCRATCH.with(|scratch| {
            let mut package = scratch.borrow_mut();
            self.build_package_into(secret, &mut package);
            self.rs.encode_into(&package, out)?;
            Ok(())
        })
    }

    fn reconstruct(
        &self,
        shares: &[Option<Vec<u8>>],
        secret_len: usize,
    ) -> Result<Vec<u8>, SharingError> {
        self.try_reconstruct(shares, secret_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn drop_shares(shares: Vec<Vec<u8>>, drop: &[usize]) -> Vec<Option<Vec<u8>>> {
        shares
            .into_iter()
            .enumerate()
            .map(|(i, s)| (!drop.contains(&i)).then_some(s))
            .collect()
    }

    #[test]
    fn split_is_convergent() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let secret: Vec<u8> = (0..8192u32).map(|i| (i * 131 % 256) as u8).collect();
        assert_eq!(
            scheme.split(&secret).unwrap(),
            scheme.split(&secret).unwrap()
        );
        assert!(scheme.is_convergent());
    }

    #[test]
    fn split_into_matches_split_and_reuses_buffers() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let mut shares = Vec::new();
        for len in [0usize, 1, 100, 8192, 500] {
            let secret: Vec<u8> = (0..len as u32).map(|i| (i * 31 % 256) as u8).collect();
            scheme.split_into(&secret, &mut shares).unwrap();
            assert_eq!(shares, scheme.split(&secret).unwrap(), "len {len}");
        }
        // After the 8192-byte round the buffers retain capacity for reuse.
        assert!(shares[0].capacity() >= scheme.share_size(500));
    }

    #[test]
    fn split_into_default_impl_matches_for_non_convergent_schemes() {
        // The trait's fallback path (split + move) must agree with split for
        // deterministic schemes; IDA is deterministic and does not override.
        let scheme = crate::Ida::new(4, 3).unwrap();
        let secret: Vec<u8> = (0..300u32).map(|i| (i % 256) as u8).collect();
        let mut shares = vec![Vec::from(&b"stale"[..]); 9];
        scheme.split_into(&secret, &mut shares).unwrap();
        assert_eq!(shares, scheme.split(&secret).unwrap());
    }

    #[test]
    fn any_k_of_n_reconstructs() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let secret = b"convergent dispersal tolerates any single cloud failure".to_vec();
        let shares = scheme.split(&secret).unwrap();
        for drop in 0..4 {
            let received = drop_shares(shares.clone(), &[drop]);
            assert_eq!(scheme.reconstruct(&received, secret.len()).unwrap(), secret);
        }
    }

    #[test]
    fn package_layout_matches_paper_equations() {
        // Y = X ⊕ G(h), t = h ⊕ H(Y) — checked field by field.
        let scheme = CaontRs::new(4, 3).unwrap();
        let secret: Vec<u8> = (0..97u32).map(|i| (i % 256) as u8).collect();
        let padded_len = scheme.padded_secret_len(secret.len());
        let package = scheme.build_package(&secret);
        assert_eq!(package.len(), padded_len + HASH_SIZE);
        let mut padded = secret.clone();
        padded.resize(padded_len, 0);
        let h = cdstore_crypto::sha256::hash(&padded);
        let mask = cdstore_crypto::ctr::generator_mask(&h, padded_len);
        for i in 0..padded_len {
            assert_eq!(package[i], padded[i] ^ mask[i], "Y byte {i}");
        }
        let hy = cdstore_crypto::sha256::hash(&package[..padded_len]);
        for i in 0..HASH_SIZE {
            assert_eq!(package[padded_len + i], h[i] ^ hy[i], "t byte {i}");
        }
    }

    #[test]
    fn share_sizes_are_equal_and_package_divides_evenly() {
        for k in 1..8usize {
            let n = k + 2;
            if CaontRs::new(n, k).is_err() {
                continue;
            }
            let scheme = CaontRs::new(n, k).unwrap();
            for len in [0usize, 1, 31, 32, 1000, 8 * 1024] {
                let padded = scheme.padded_secret_len(len);
                assert!(padded >= len);
                assert_eq!((padded + HASH_SIZE) % k, 0);
                let secret = vec![0x5au8; len];
                let shares = scheme.split(&secret).unwrap();
                let size = shares[0].len();
                assert!(shares.iter().all(|s| s.len() == size));
                assert_eq!(size, scheme.share_size(len));
            }
        }
    }

    #[test]
    fn integrity_check_detects_corruption() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let secret = b"the embedded hash detects corrupted decodes".to_vec();
        let mut shares = scheme.split(&secret).unwrap();
        shares[1][3] ^= 0xff;
        let received: Vec<Option<Vec<u8>>> = shares.iter().cloned().map(Some).collect();
        // Using the corrupted share (index 1) in the decode set must fail.
        let bad = vec![
            Some(shares[0].clone()),
            Some(shares[1].clone()),
            Some(shares[2].clone()),
            None,
        ];
        assert_eq!(
            scheme.reconstruct(&bad, secret.len()),
            Err(SharingError::IntegrityCheckFailed)
        );
        // The brute-force path finds a clean subset (0, 2, 3) and succeeds.
        assert_eq!(
            scheme
                .reconstruct_bruteforce(&received, secret.len())
                .unwrap(),
            secret
        );
    }

    #[test]
    fn salted_scheme_produces_different_shares() {
        let plain = CaontRs::new(4, 3).unwrap();
        let org_a = CaontRs::with_salt(4, 3, b"org-a").unwrap();
        let org_b = CaontRs::with_salt(4, 3, b"org-b").unwrap();
        let secret = b"shared plaintext across organisations".to_vec();
        let sa = org_a.split(&secret).unwrap();
        assert_ne!(plain.split(&secret).unwrap(), sa);
        assert_ne!(sa, org_b.split(&secret).unwrap());
        // Still convergent within one organisation.
        assert_eq!(sa, org_a.split(&secret).unwrap());
        // And still decodable.
        let received = sa.into_iter().map(Some).collect::<Vec<_>>();
        assert_eq!(org_a.reconstruct(&received, secret.len()).unwrap(), secret);
    }

    #[test]
    fn shares_hide_low_entropy_secrets_structurally() {
        // Even an all-zero secret yields shares that are not all zero (the
        // mask G(h) randomises the head; confidentiality of course still
        // requires a large message space, §3.1).
        let scheme = CaontRs::new(4, 3).unwrap();
        let secret = vec![0u8; 4096];
        let shares = scheme.split(&secret).unwrap();
        for share in &shares {
            assert!(share.iter().any(|&b| b != 0));
        }
    }

    #[test]
    fn wrong_share_count_and_too_few_shares_error() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let shares = scheme.split(b"errors").unwrap();
        assert!(matches!(
            scheme.reconstruct(
                &shares.iter().cloned().map(Some).take(3).collect::<Vec<_>>(),
                6
            ),
            Err(SharingError::WrongShareCount { .. })
        ));
        let received = drop_shares(shares, &[0, 1]);
        assert!(matches!(
            scheme.reconstruct(&received, 6),
            Err(SharingError::NotEnoughShares { .. })
        ));
    }

    #[test]
    fn blowup_approaches_n_over_k_for_large_secrets() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let blowup_small = scheme.storage_blowup(64);
        let blowup_large = scheme.storage_blowup(1 << 20);
        assert!(blowup_large < blowup_small);
        assert!((blowup_large - 4.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn empty_secret_round_trips() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let shares = scheme.split(b"").unwrap();
        let received: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        assert_eq!(scheme.reconstruct(&received, 0).unwrap(), Vec::<u8>::new());
    }

    proptest! {
        #[test]
        fn round_trips_for_arbitrary_secrets(secret in proptest::collection::vec(any::<u8>(), 0..2048),
                                             n in 3usize..8,
                                             drop_seed: u64) {
            let k = n - 1;
            let scheme = CaontRs::new(n, k).unwrap();
            let shares = scheme.split(&secret).unwrap();
            let drop = (drop_seed as usize) % n;
            let received = drop_shares(shares, &[drop]);
            prop_assert_eq!(scheme.reconstruct(&received, secret.len()).unwrap(), secret);
        }

        #[test]
        fn identical_secrets_from_different_users_converge(secret in proptest::collection::vec(any::<u8>(), 1..512)) {
            // Two independent scheme instances (two CDStore clients) produce
            // identical shares for identical content — the property that
            // enables inter-user deduplication.
            let client_a = CaontRs::new(4, 3).unwrap();
            let client_b = CaontRs::new(4, 3).unwrap();
            prop_assert_eq!(client_a.split(&secret).unwrap(), client_b.split(&secret).unwrap());
        }

        #[test]
        fn package_round_trips(secret in proptest::collection::vec(any::<u8>(), 0..1024)) {
            let scheme = CaontRs::new(4, 3).unwrap();
            let package = scheme.build_package(&secret);
            prop_assert_eq!(scheme.open_package(&package, secret.len()).unwrap(), secret);
        }
    }
}
