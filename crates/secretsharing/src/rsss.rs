//! Ramp secret sharing scheme (RSSS) \[16\].
//!
//! RSSS generalises SSSS and IDA: the secret is divided into `k − r` pieces,
//! `r` random pieces of the same size are appended, and the `k` pieces are
//! dispersed into `n` shares with a (non-systematic) `n x k` dispersal
//! matrix. Any `k` shares reconstruct the secret, no `r` shares reveal
//! anything, and the storage blowup is `n / (k − r)` — trading
//! confidentiality (`r`) against storage.

use cdstore_erasure::{pad_and_split, shard_size};
use cdstore_gf::{region, Matrix};
use rand::RngCore;

use crate::{validate_shares, SecretSharing, SharingError};

/// Ramp `(n, k, r)` secret sharing over GF(2^8).
#[derive(Debug, Clone)]
pub struct Rsss {
    n: usize,
    k: usize,
    r: usize,
    /// Non-systematic `n x k` dispersal matrix (Vandermonde).
    matrix: Matrix,
}

impl Rsss {
    /// Creates a ramp scheme with `0 < k < n <= 255` and `0 <= r < k`.
    pub fn new(n: usize, k: usize, r: usize) -> Result<Self, SharingError> {
        crate::validate_n_k(n, k)?;
        if r >= k {
            return Err(SharingError::InvalidParameters(format!(
                "require r < k, got r={r}, k={k}"
            )));
        }
        // A plain Vandermonde matrix keeps every k x k row-submatrix
        // invertible while mixing the random pieces into every share, so no
        // share exposes raw secret bytes (unlike a systematic matrix).
        let matrix = Matrix::vandermonde(n, k);
        Ok(Rsss { n, k, r, matrix })
    }

    /// The ramp parameter `r` (number of random padding pieces).
    pub fn r(&self) -> usize {
        self.r
    }

    /// Size of each share for a secret of `secret_len` bytes.
    pub fn share_size(&self, secret_len: usize) -> usize {
        shard_size(secret_len, self.k - self.r)
    }

    /// Splits with an explicit RNG (deterministic tests).
    pub fn split_with_rng<R: RngCore>(
        &self,
        secret: &[u8],
        rng: &mut R,
    ) -> Result<Vec<Vec<u8>>, SharingError> {
        let data_pieces = pad_and_split(secret, self.k - self.r);
        let piece_len = data_pieces[0].len();
        let mut pieces = data_pieces;
        for _ in 0..self.r {
            let mut random = vec![0u8; piece_len];
            rng.fill_bytes(&mut random);
            pieces.push(random);
        }
        let refs: Vec<&[u8]> = pieces.iter().map(|p| p.as_slice()).collect();
        Ok(region::matrix_apply(
            self.matrix.as_slice(),
            self.n,
            self.k,
            &refs,
        ))
    }
}

impl SecretSharing for Rsss {
    fn name(&self) -> &'static str {
        "RSSS"
    }

    fn n(&self) -> usize {
        self.n
    }

    fn k(&self) -> usize {
        self.k
    }

    fn confidentiality_degree(&self) -> usize {
        self.r
    }

    fn total_share_size(&self, secret_len: usize) -> usize {
        self.n * self.share_size(secret_len)
    }

    fn split(&self, secret: &[u8]) -> Result<Vec<Vec<u8>>, SharingError> {
        self.split_with_rng(secret, &mut rand::thread_rng())
    }

    fn reconstruct(
        &self,
        shares: &[Option<Vec<u8>>],
        secret_len: usize,
    ) -> Result<Vec<u8>, SharingError> {
        let (available, piece_len) = validate_shares(shares, self.n, self.k)?;
        let chosen = &available[..self.k];
        let sub = self.matrix.select_rows(chosen);
        let inv = sub
            .invert()
            .map_err(|e| SharingError::Erasure(e.to_string()))?;
        let inputs: Vec<&[u8]> = chosen
            .iter()
            .map(|&i| shares[i].as_ref().expect("available").as_slice())
            .collect();
        // Decode all k pieces straight into one flat buffer: the first
        // k − r pieces are the (padded) secret laid out contiguously, so
        // truncating recovers it in place — no per-piece allocation and no
        // reassembly copy per decode window.
        let data_len = (self.k - self.r) * piece_len;
        assert!(
            data_len >= secret_len,
            "pieces hold {data_len} bytes but {secret_len} were requested"
        );
        if piece_len == 0 {
            return Ok(Vec::new());
        }
        let mut out = vec![0u8; self.k * piece_len];
        {
            let mut out_refs: Vec<&mut [u8]> = out.chunks_mut(piece_len).collect();
            region::matrix_apply_into(inv.as_slice(), self.k, self.k, &inputs, &mut out_refs);
        }
        out.truncate(secret_len);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn round_trip_basic() {
        let scheme = Rsss::new(4, 3, 1).unwrap();
        let secret: Vec<u8> = (0..123u32).map(|i| (i % 256) as u8).collect();
        let shares = scheme.split(&secret).unwrap();
        assert_eq!(shares.len(), 4);
        let received: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        assert_eq!(scheme.reconstruct(&received, secret.len()).unwrap(), secret);
    }

    #[test]
    fn r_zero_degenerates_to_ida_blowup() {
        let scheme = Rsss::new(4, 3, 0).unwrap();
        assert!((scheme.storage_blowup(300) - 4.0 / 3.0).abs() < 1e-9);
        assert_eq!(scheme.confidentiality_degree(), 0);
    }

    #[test]
    fn r_k_minus_1_degenerates_to_ssss_blowup() {
        let scheme = Rsss::new(4, 3, 2).unwrap();
        assert!((scheme.storage_blowup(300) - 4.0).abs() < 1e-9);
        assert_eq!(scheme.confidentiality_degree(), 2);
    }

    #[test]
    fn invalid_r_is_rejected() {
        assert!(Rsss::new(4, 3, 3).is_err());
        assert!(Rsss::new(4, 3, 7).is_err());
    }

    #[test]
    fn blowup_is_n_over_k_minus_r() {
        // Table 1: storage blowup of RSSS is n / (k - r).
        for (n, k, r) in [(6usize, 4usize, 1usize), (8, 5, 2), (10, 7, 3)] {
            let scheme = Rsss::new(n, k, r).unwrap();
            let len = 10_000usize;
            let expected = n as f64 / (k - r) as f64;
            assert!(
                (scheme.storage_blowup(len) - expected).abs() < 0.01,
                "(n,k,r)=({n},{k},{r})"
            );
        }
    }

    #[test]
    fn any_k_subset_reconstructs() {
        let scheme = Rsss::new(5, 3, 1).unwrap();
        let secret: Vec<u8> = (0..64).collect();
        let shares = scheme.split(&secret).unwrap();
        for a in 0..5 {
            for b in a + 1..5 {
                for c in b + 1..5 {
                    let mut received: Vec<Option<Vec<u8>>> = vec![None; 5];
                    for &i in &[a, b, c] {
                        received[i] = Some(shares[i].clone());
                    }
                    assert_eq!(scheme.reconstruct(&received, secret.len()).unwrap(), secret);
                }
            }
        }
    }

    #[test]
    fn shares_do_not_expose_plaintext_when_r_positive() {
        // With r >= 1 every share is masked by at least one random piece, so
        // no share may equal a contiguous slice of the (constant) secret.
        let scheme = Rsss::new(4, 3, 1).unwrap();
        let secret = vec![0u8; 128];
        let shares = scheme.split(&secret).unwrap();
        for share in &shares {
            assert!(
                share.iter().any(|&b| b != 0),
                "share leaked the zero secret"
            );
        }
    }

    #[test]
    fn randomized_so_not_convergent() {
        let scheme = Rsss::new(4, 3, 1).unwrap();
        let secret = vec![0xabu8; 99];
        assert_ne!(
            scheme.split(&secret).unwrap(),
            scheme.split(&secret).unwrap()
        );
        assert!(!scheme.is_convergent());
    }

    proptest! {
        #[test]
        fn round_trips_with_erasures(secret in proptest::collection::vec(any::<u8>(), 1..400),
                                     seed: u64) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = 6;
            let k = 4;
            let r = (seed % 4) as usize; // 0..=3 < k
            let scheme = Rsss::new(n, k, r).unwrap();
            let shares = scheme.split_with_rng(&secret, &mut rng).unwrap();
            // Drop n - k arbitrary shares (here: the first two).
            let received: Vec<Option<Vec<u8>>> = shares.into_iter().enumerate()
                .map(|(i, s)| (i >= 2).then_some(s))
                .collect();
            prop_assert_eq!(scheme.reconstruct(&received, secret.len()).unwrap(), secret);
        }
    }
}
