//! A shared pool of reusable byte buffers for the encode pipeline.
//!
//! Splitting a stream of secrets with [`SecretSharing::split`] allocates `n`
//! fresh `Vec<u8>`s per secret; at hundreds of thousands of chunks per backup
//! that is the dominant allocator traffic on the data path. A [`BufferPool`]
//! breaks the cycle: encode workers [`get`](BufferPool::get) buffers, fill
//! them via [`SecretSharing::split_into`], and the store stage
//! [`put`](BufferPool::put)s them back once the bytes are on the wire.
//!
//! The pool also *measures* the pipeline: [`PoolStats::peak_outstanding`] is
//! the high-water mark of simultaneously checked-out buffers, which is how
//! tests assert that a streamed backup's live share buffers stay bounded by
//! the pipeline depth rather than the file size.
//!
//! [`SecretSharing::split`]: crate::SecretSharing::split
//! [`SecretSharing::split_into`]: crate::SecretSharing::split_into

use std::sync::Mutex;

/// Counters describing a pool's lifetime behaviour (see [`BufferPool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Buffers currently checked out (gotten but not yet returned).
    pub outstanding: usize,
    /// High-water mark of `outstanding` — the bounded-memory witness.
    pub peak_outstanding: usize,
    /// Buffers sitting in the free list right now.
    pub free: usize,
    /// `get` calls that had to allocate a fresh buffer.
    pub allocations: u64,
    /// `get` calls satisfied from the free list.
    pub reuses: u64,
}

#[derive(Debug, Default)]
struct PoolInner {
    free: Vec<Vec<u8>>,
    stats: PoolStats,
}

/// A thread-safe free list of `Vec<u8>` buffers.
///
/// Buffers keep their capacity across get/put cycles, so a steady-state
/// pipeline stops allocating once every slot has grown to the working share
/// size. The pool never shrinks on its own; drop it (or let buffers drop
/// instead of returning them) to release memory.
#[derive(Debug, Default)]
pub struct BufferPool {
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Checks out a buffer: reuses a free one when available, allocates an
    /// empty `Vec` otherwise. Contents are unspecified-but-cleared (len 0).
    pub fn get(&self) -> Vec<u8> {
        let mut inner = self.inner.lock().expect("buffer pool lock");
        inner.stats.outstanding += 1;
        inner.stats.peak_outstanding = inner.stats.peak_outstanding.max(inner.stats.outstanding);
        match inner.free.pop() {
            Some(buf) => {
                inner.stats.reuses += 1;
                buf
            }
            None => {
                inner.stats.allocations += 1;
                Vec::new()
            }
        }
    }

    /// Returns a buffer to the free list (cleared, capacity kept).
    pub fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut inner = self.inner.lock().expect("buffer pool lock");
        inner.stats.outstanding = inner.stats.outstanding.saturating_sub(1);
        inner.free.push(buf);
    }

    /// Returns every buffer in `bufs`, draining it.
    pub fn put_all(&self, bufs: &mut Vec<Vec<u8>>) {
        let mut inner = self.inner.lock().expect("buffer pool lock");
        for mut buf in bufs.drain(..) {
            buf.clear();
            inner.stats.outstanding = inner.stats.outstanding.saturating_sub(1);
            inner.free.push(buf);
        }
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock().expect("buffer pool lock");
        PoolStats {
            free: inner.free.len(),
            ..inner.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_reuses_capacity() {
        let pool = BufferPool::new();
        let mut buf = pool.get();
        buf.extend_from_slice(&[1u8; 4096]);
        pool.put(buf);
        let buf = pool.get();
        assert!(buf.is_empty());
        assert!(buf.capacity() >= 4096);
        let stats = pool.stats();
        assert_eq!(stats.allocations, 1);
        assert_eq!(stats.reuses, 1);
        assert_eq!(stats.outstanding, 1);
    }

    #[test]
    fn peak_outstanding_tracks_the_high_water_mark() {
        let pool = BufferPool::new();
        let a = pool.get();
        let b = pool.get();
        let c = pool.get();
        assert_eq!(pool.stats().peak_outstanding, 3);
        pool.put(a);
        pool.put(b);
        let _d = pool.get();
        // Peak stays at 3 even though outstanding dropped back to 2.
        let stats = pool.stats();
        assert_eq!(stats.outstanding, 2);
        assert_eq!(stats.peak_outstanding, 3);
        pool.put(c);
        assert_eq!(pool.stats().outstanding, 1);
    }

    #[test]
    fn put_all_drains_and_returns_everything() {
        let pool = BufferPool::new();
        let mut shares: Vec<Vec<u8>> = (0..4).map(|_| pool.get()).collect();
        for s in &mut shares {
            s.push(7);
        }
        pool.put_all(&mut shares);
        assert!(shares.is_empty());
        let stats = pool.stats();
        assert_eq!(stats.outstanding, 0);
        assert_eq!(stats.free, 4);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        let pool = std::sync::Arc::new(BufferPool::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let pool = pool.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        let mut buf = pool.get();
                        buf.push(1);
                        pool.put(buf);
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.outstanding, 0);
        assert_eq!(stats.allocations + stats.reuses, 400);
    }
}
