//! Rivest's all-or-nothing transform (AONT) \[53\] package construction.
//!
//! The transform turns a secret into a *package* such that nothing about the
//! secret can be inferred unless the whole package is available. AONT-RS and
//! the authors' prior CAONT-RS-Rivest instantiation both build on this
//! word-oriented construction (§2 of the paper):
//!
//! 1. the secret is split into 16-byte words and an extra *canary* word is
//!    appended for integrity checking;
//! 2. each word `i` is masked by XOR'ing it with `E(K, i)`, an encryption of
//!    its index under the package key `K`;
//! 3. a final tail word `t = K ⊕ H(masked words)` is appended.
//!
//! Decoding recomputes `H(masked words)` to recover `K`, unmasks every word,
//! and verifies the canary.

use cdstore_crypto::{aes::Aes256, constant_time_eq, sha256};

use crate::SharingError;

/// Size of an AONT word in bytes (one AES block).
pub const WORD_SIZE: usize = 16;
/// Size of the package key in bytes (AES-256).
pub const KEY_SIZE: usize = 32;
/// Size of the package tail (`K ⊕ H(...)`, a SHA-256 digest width).
pub const TAIL_SIZE: usize = 32;
/// The canary word appended before masking; checked on decode.
pub const CANARY: [u8; WORD_SIZE] = [0xc5; WORD_SIZE];

/// Overhead added by the transform beyond the padded secret: one canary word
/// plus the tail.
pub const PACKAGE_OVERHEAD: usize = WORD_SIZE + TAIL_SIZE;

/// Returns the padded secret length used for a secret of `secret_len` bytes
/// so that the resulting package divides evenly into `k` shares.
///
/// The padded length is the smallest multiple of [`WORD_SIZE`] that is at
/// least `secret_len` and makes `padded + PACKAGE_OVERHEAD` divisible by `k`.
pub fn padded_secret_len(secret_len: usize, k: usize) -> usize {
    assert!(k > 0, "k must be positive");
    let mut padded = secret_len.div_ceil(WORD_SIZE) * WORD_SIZE;
    // gcd(WORD_SIZE, k) always divides PACKAGE_OVERHEAD (48), so the loop
    // terminates within k iterations.
    while !(padded + PACKAGE_OVERHEAD).is_multiple_of(k) {
        padded += WORD_SIZE;
    }
    padded
}

/// Returns the total package size for a secret of `secret_len` bytes.
pub fn package_len(secret_len: usize, k: usize) -> usize {
    padded_secret_len(secret_len, k) + PACKAGE_OVERHEAD
}

/// Builds the masked word stream `E(K, 1), E(K, 2), ...` lazily.
struct IndexCipher {
    aes: Aes256,
}

impl IndexCipher {
    fn new(key: &[u8; KEY_SIZE]) -> Self {
        IndexCipher {
            aes: Aes256::new(key),
        }
    }

    /// Returns `E(K, index)` where the index is encoded big-endian in the
    /// low 8 bytes of the block.
    fn mask(&self, index: u64) -> [u8; WORD_SIZE] {
        let mut block = [0u8; WORD_SIZE];
        block[8..].copy_from_slice(&index.to_be_bytes());
        self.aes.encrypt_block(&mut block);
        block
    }
}

/// Applies Rivest's AONT to `secret` under `key`, producing a package whose
/// length is `package_len(secret.len(), k)`.
pub fn package(secret: &[u8], key: &[u8; KEY_SIZE], k: usize) -> Vec<u8> {
    let padded_len = padded_secret_len(secret.len(), k);
    let mut words = vec![0u8; padded_len + WORD_SIZE];
    words[..secret.len()].copy_from_slice(secret);
    words[padded_len..].copy_from_slice(&CANARY);
    // Mask each word with the encryption of its index.
    let cipher = IndexCipher::new(key);
    for (i, word) in words.chunks_mut(WORD_SIZE).enumerate() {
        let mask = cipher.mask(i as u64 + 1);
        for (b, m) in word.iter_mut().zip(mask.iter()) {
            *b ^= m;
        }
    }
    // Tail: K XOR H(masked words).
    let digest = sha256::hash(&words);
    let mut tail = [0u8; TAIL_SIZE];
    for i in 0..TAIL_SIZE {
        tail[i] = key[i] ^ digest[i];
    }
    words.extend_from_slice(&tail);
    words
}

/// Inverts [`package`], returning the first `secret_len` bytes of the secret.
///
/// Fails with [`SharingError::IntegrityCheckFailed`] if the canary word does
/// not match (the package was corrupted or assembled from wrong shares).
pub fn unpackage(package: &[u8], secret_len: usize) -> Result<Vec<u8>, SharingError> {
    if package.len() < PACKAGE_OVERHEAD || !(package.len() - TAIL_SIZE).is_multiple_of(WORD_SIZE) {
        return Err(SharingError::MalformedShare(format!(
            "AONT package of {} bytes has an invalid size",
            package.len()
        )));
    }
    let (masked, tail) = package.split_at(package.len() - TAIL_SIZE);
    if masked.len() < WORD_SIZE + secret_len {
        return Err(SharingError::MalformedShare(format!(
            "AONT package holds {} masked bytes, too short for a {secret_len}-byte secret",
            masked.len()
        )));
    }
    // Recover the key: K = tail XOR H(masked words).
    let digest = sha256::hash(masked);
    let mut key = [0u8; KEY_SIZE];
    for i in 0..KEY_SIZE {
        key[i] = tail[i] ^ digest[i];
    }
    // Unmask.
    let cipher = IndexCipher::new(&key);
    let mut words = masked.to_vec();
    for (i, word) in words.chunks_mut(WORD_SIZE).enumerate() {
        let mask = cipher.mask(i as u64 + 1);
        for (b, m) in word.iter_mut().zip(mask.iter()) {
            *b ^= m;
        }
    }
    // Verify the canary.
    let canary = &words[words.len() - WORD_SIZE..];
    if !constant_time_eq(canary, &CANARY) {
        return Err(SharingError::IntegrityCheckFailed);
    }
    words.truncate(secret_len);
    Ok(words)
}

/// Recovers the package key from a package (used by the convergent variant to
/// cross-check the key against the secret hash).
pub fn recover_key(package: &[u8]) -> Result<[u8; KEY_SIZE], SharingError> {
    if package.len() < PACKAGE_OVERHEAD {
        return Err(SharingError::MalformedShare(
            "AONT package too short to contain a tail".into(),
        ));
    }
    let (masked, tail) = package.split_at(package.len() - TAIL_SIZE);
    let digest = sha256::hash(masked);
    let mut key = [0u8; KEY_SIZE];
    for i in 0..KEY_SIZE {
        key[i] = tail[i] ^ digest[i];
    }
    Ok(key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn padded_length_divides_package_evenly() {
        for k in 1..=12usize {
            for len in [0usize, 1, 15, 16, 17, 100, 4096, 8191] {
                let padded = padded_secret_len(len, k);
                assert!(padded >= len);
                assert_eq!(padded % WORD_SIZE, 0);
                assert_eq!((padded + PACKAGE_OVERHEAD) % k, 0, "len={len}, k={k}");
            }
        }
    }

    #[test]
    fn package_round_trips() {
        let key = [0x42u8; KEY_SIZE];
        for len in [0usize, 1, 16, 17, 100, 1000] {
            let secret: Vec<u8> = (0..len).map(|i| (i * 7 % 256) as u8).collect();
            let pkg = package(&secret, &key, 3);
            assert_eq!(pkg.len(), package_len(len, 3));
            assert_eq!(unpackage(&pkg, len).unwrap(), secret);
        }
    }

    #[test]
    fn key_is_recoverable_from_full_package() {
        let key = [0x99u8; KEY_SIZE];
        let pkg = package(b"recover me", &key, 4);
        assert_eq!(recover_key(&pkg).unwrap(), key);
    }

    #[test]
    fn corruption_is_detected() {
        let key = [7u8; KEY_SIZE];
        let secret = b"integrity protected secret".to_vec();
        let mut pkg = package(&secret, &key, 3);
        // Flip one bit anywhere in the masked words.
        pkg[5] ^= 0x01;
        assert_eq!(
            unpackage(&pkg, secret.len()),
            Err(SharingError::IntegrityCheckFailed)
        );
    }

    #[test]
    fn tail_corruption_is_detected() {
        let key = [7u8; KEY_SIZE];
        let secret = b"integrity protected secret".to_vec();
        let mut pkg = package(&secret, &key, 3);
        let last = pkg.len() - 1;
        pkg[last] ^= 0x80;
        assert_eq!(
            unpackage(&pkg, secret.len()),
            Err(SharingError::IntegrityCheckFailed)
        );
    }

    #[test]
    fn invalid_package_sizes_are_rejected() {
        assert!(matches!(
            unpackage(&[0u8; 10], 1),
            Err(SharingError::MalformedShare(_))
        ));
        assert!(matches!(
            unpackage(&[0u8; 49], 1),
            Err(SharingError::MalformedShare(_))
        ));
        assert!(matches!(
            recover_key(&[0u8; 10]),
            Err(SharingError::MalformedShare(_))
        ));
    }

    #[test]
    fn package_is_deterministic_for_fixed_key() {
        let key = [1u8; KEY_SIZE];
        let secret = b"determinism".to_vec();
        assert_eq!(package(&secret, &key, 4), package(&secret, &key, 4));
    }

    #[test]
    fn different_keys_give_different_packages() {
        let secret = b"same secret".to_vec();
        let a = package(&secret, &[1u8; KEY_SIZE], 4);
        let b = package(&secret, &[2u8; KEY_SIZE], 4);
        assert_ne!(a, b);
    }

    #[test]
    fn masked_words_hide_a_zero_secret() {
        let key = [0xaau8; KEY_SIZE];
        let secret = vec![0u8; 256];
        let pkg = package(&secret, &key, 4);
        // The masked region must not be all zeroes.
        assert!(pkg[..256].iter().any(|&b| b != 0));
    }

    proptest! {
        #[test]
        fn round_trips_for_arbitrary_secrets(secret in proptest::collection::vec(any::<u8>(), 0..512),
                                             key in proptest::array::uniform32(any::<u8>()),
                                             k in 1usize..10) {
            let pkg = package(&secret, &key, k);
            prop_assert_eq!(pkg.len() % k, 0);
            prop_assert_eq!(unpackage(&pkg, secret.len()).unwrap(), secret);
            prop_assert_eq!(recover_key(&pkg).unwrap(), key);
        }
    }
}
