//! AONT-RS \[52\] and the prior convergent variant CAONT-RS-Rivest \[37\].
//!
//! Both schemes build a Rivest AONT package and encode it into `n` shares
//! with a systematic `(n, k)` Reed-Solomon code. They differ only in the
//! package key:
//!
//! * [`AontRs`] draws a fresh *random* key per split — the original
//!   Resch-Plank design, secure but not deduplicable;
//! * [`CaontRsRivest`] derives the key as `SHA-256(secret)` — the authors'
//!   prior convergent instantiation, deduplicable because identical secrets
//!   produce identical packages and therefore identical shares.

use cdstore_crypto::sha256;
use cdstore_erasure::ReedSolomon;
use rand::RngCore;

use crate::{aont, validate_shares, SecretSharing, SharingError};

/// Shared implementation: package with a chosen key, then Reed-Solomon.
#[derive(Debug, Clone)]
struct AontRsInner {
    n: usize,
    k: usize,
    rs: ReedSolomon,
}

impl AontRsInner {
    fn new(n: usize, k: usize) -> Result<Self, SharingError> {
        crate::validate_n_k(n, k)?;
        Ok(AontRsInner {
            n,
            k,
            rs: ReedSolomon::new(n, k)?,
        })
    }

    fn share_size(&self, secret_len: usize) -> usize {
        aont::package_len(secret_len, self.k) / self.k
    }

    fn split_with_key(
        &self,
        secret: &[u8],
        key: &[u8; aont::KEY_SIZE],
    ) -> Result<Vec<Vec<u8>>, SharingError> {
        let package = aont::package(secret, key, self.k);
        // The package length is a multiple of k by construction, so splitting
        // adds no further padding.
        Ok(self.rs.encode_data(&package)?)
    }

    fn reconstruct_package(&self, shares: &[Option<Vec<u8>>]) -> Result<Vec<u8>, SharingError> {
        let (_, share_len) = validate_shares(shares, self.n, self.k)?;
        let package_len = share_len * self.k;
        Ok(self.rs.reconstruct_data(shares, package_len)?)
    }
}

/// AONT-RS: Rivest's AONT with a random key followed by Reed-Solomon coding.
#[derive(Debug, Clone)]
pub struct AontRs {
    inner: AontRsInner,
}

impl AontRs {
    /// Creates an AONT-RS scheme with `0 < k < n <= 255`.
    pub fn new(n: usize, k: usize) -> Result<Self, SharingError> {
        Ok(AontRs {
            inner: AontRsInner::new(n, k)?,
        })
    }

    /// Splits with an explicit RNG (deterministic tests).
    pub fn split_with_rng<R: RngCore>(
        &self,
        secret: &[u8],
        rng: &mut R,
    ) -> Result<Vec<Vec<u8>>, SharingError> {
        let mut key = [0u8; aont::KEY_SIZE];
        rng.fill_bytes(&mut key);
        self.inner.split_with_key(secret, &key)
    }
}

impl SecretSharing for AontRs {
    fn name(&self) -> &'static str {
        "AONT-RS"
    }

    fn n(&self) -> usize {
        self.inner.n
    }

    fn k(&self) -> usize {
        self.inner.k
    }

    fn confidentiality_degree(&self) -> usize {
        self.inner.k - 1
    }

    fn total_share_size(&self, secret_len: usize) -> usize {
        self.inner.n * self.inner.share_size(secret_len)
    }

    fn split(&self, secret: &[u8]) -> Result<Vec<Vec<u8>>, SharingError> {
        self.split_with_rng(secret, &mut rand::thread_rng())
    }

    fn reconstruct(
        &self,
        shares: &[Option<Vec<u8>>],
        secret_len: usize,
    ) -> Result<Vec<u8>, SharingError> {
        let package = self.inner.reconstruct_package(shares)?;
        aont::unpackage(&package, secret_len)
    }
}

/// CAONT-RS-Rivest: the authors' prior convergent dispersal built on
/// Rivest's AONT, with the package key replaced by `SHA-256(secret)`.
#[derive(Debug, Clone)]
pub struct CaontRsRivest {
    inner: AontRsInner,
}

impl CaontRsRivest {
    /// Creates a CAONT-RS-Rivest scheme with `0 < k < n <= 255`.
    pub fn new(n: usize, k: usize) -> Result<Self, SharingError> {
        Ok(CaontRsRivest {
            inner: AontRsInner::new(n, k)?,
        })
    }

    /// Derives the convergent package key for a secret.
    pub fn convergent_key(secret: &[u8]) -> [u8; aont::KEY_SIZE] {
        sha256::hash(secret)
    }
}

impl SecretSharing for CaontRsRivest {
    fn name(&self) -> &'static str {
        "CAONT-RS-Rivest"
    }

    fn n(&self) -> usize {
        self.inner.n
    }

    fn k(&self) -> usize {
        self.inner.k
    }

    fn confidentiality_degree(&self) -> usize {
        self.inner.k - 1
    }

    fn is_convergent(&self) -> bool {
        true
    }

    fn total_share_size(&self, secret_len: usize) -> usize {
        self.inner.n * self.inner.share_size(secret_len)
    }

    fn split(&self, secret: &[u8]) -> Result<Vec<Vec<u8>>, SharingError> {
        let key = Self::convergent_key(secret);
        self.inner.split_with_key(secret, &key)
    }

    fn reconstruct(
        &self,
        shares: &[Option<Vec<u8>>],
        secret_len: usize,
    ) -> Result<Vec<u8>, SharingError> {
        let package = self.inner.reconstruct_package(shares)?;
        let secret = aont::unpackage(&package, secret_len)?;
        // Convergent integrity check: the recovered package key must equal
        // the hash of the padded secret content it was derived from.
        let key = aont::recover_key(&package)?;
        let expected = Self::convergent_key(&secret);
        // The key was derived from the unpadded secret at split time, so
        // compare against the hash of the truncated secret.
        if !cdstore_crypto::constant_time_eq(&key, &expected) {
            return Err(SharingError::IntegrityCheckFailed);
        }
        Ok(secret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn drop_shares(shares: Vec<Vec<u8>>, drop: &[usize]) -> Vec<Option<Vec<u8>>> {
        shares
            .into_iter()
            .enumerate()
            .map(|(i, s)| (!drop.contains(&i)).then_some(s))
            .collect()
    }

    #[test]
    fn aont_rs_round_trips() {
        let scheme = AontRs::new(4, 3).unwrap();
        let secret: Vec<u8> = (0..5000u32).map(|i| (i % 256) as u8).collect();
        let shares = scheme.split(&secret).unwrap();
        assert_eq!(shares.len(), 4);
        let received = drop_shares(shares, &[0]);
        assert_eq!(scheme.reconstruct(&received, secret.len()).unwrap(), secret);
    }

    #[test]
    fn aont_rs_is_randomized() {
        let scheme = AontRs::new(4, 3).unwrap();
        let secret = vec![9u8; 1000];
        assert_ne!(
            scheme.split(&secret).unwrap(),
            scheme.split(&secret).unwrap()
        );
        assert!(!scheme.is_convergent());
    }

    #[test]
    fn aont_rs_deterministic_with_seeded_rng() {
        let scheme = AontRs::new(4, 3).unwrap();
        let secret = b"seeded aont".to_vec();
        let a = scheme
            .split_with_rng(&secret, &mut rand::rngs::StdRng::seed_from_u64(3))
            .unwrap();
        let b = scheme
            .split_with_rng(&secret, &mut rand::rngs::StdRng::seed_from_u64(3))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn caont_rs_rivest_is_convergent() {
        let scheme = CaontRsRivest::new(4, 3).unwrap();
        let secret: Vec<u8> = (0..8192u32).map(|i| (i * 31 % 256) as u8).collect();
        let a = scheme.split(&secret).unwrap();
        let b = scheme.split(&secret).unwrap();
        assert_eq!(a, b, "convergent dispersal must be deterministic");
        assert!(scheme.is_convergent());
    }

    #[test]
    fn caont_rs_rivest_round_trips_with_erasures() {
        let scheme = CaontRsRivest::new(5, 3).unwrap();
        let secret = b"the convergent variant also tolerates cloud failures".to_vec();
        let shares = scheme.split(&secret).unwrap();
        let received = drop_shares(shares, &[1, 4]);
        assert_eq!(scheme.reconstruct(&received, secret.len()).unwrap(), secret);
    }

    #[test]
    fn different_secrets_give_different_shares() {
        let scheme = CaontRsRivest::new(4, 3).unwrap();
        let a = scheme.split(b"secret A").unwrap();
        let b = scheme.split(b"secret B").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn corrupted_share_is_detected() {
        let scheme = CaontRsRivest::new(4, 3).unwrap();
        let secret = b"detect tampering in any share".to_vec();
        let mut shares = scheme.split(&secret).unwrap();
        shares[0][0] ^= 0x01;
        let received: Vec<Option<Vec<u8>>> = vec![
            Some(shares[0].clone()),
            Some(shares[1].clone()),
            Some(shares[2].clone()),
            None,
        ];
        assert!(matches!(
            scheme.reconstruct(&received, secret.len()),
            Err(SharingError::IntegrityCheckFailed)
        ));
    }

    #[test]
    fn blowup_matches_table1_formula() {
        // Table 1: n/k + (n/k) * S_key / S_sec, plus word padding overhead.
        let scheme = AontRs::new(4, 3).unwrap();
        let secret_len = 8 * 1024;
        let expected = (4.0 / 3.0) * (1.0 + (aont::PACKAGE_OVERHEAD as f64) / secret_len as f64);
        let actual = scheme.storage_blowup(secret_len);
        assert!(
            (actual - expected).abs() < 0.01,
            "expected {expected}, got {actual}"
        );
        // Lower than SSMS for the same parameters (keys are not replicated n times).
        let ssms = crate::Ssms::new(4, 3).unwrap();
        assert!(actual < ssms.storage_blowup(secret_len));
    }

    #[test]
    fn not_enough_shares_fails() {
        let scheme = AontRs::new(4, 3).unwrap();
        let shares = scheme.split(b"not enough").unwrap();
        let received = drop_shares(shares, &[0, 1]);
        assert!(matches!(
            scheme.reconstruct(&received, 10),
            Err(SharingError::NotEnoughShares { .. })
        ));
    }

    proptest! {
        #[test]
        fn both_variants_round_trip(secret in proptest::collection::vec(any::<u8>(), 0..1024),
                                    drop in 0usize..4) {
            let aont_rs = AontRs::new(4, 3).unwrap();
            let caont = CaontRsRivest::new(4, 3).unwrap();
            for scheme in [&aont_rs as &dyn SecretSharing, &caont as &dyn SecretSharing] {
                let shares = scheme.split(&secret).unwrap();
                let received = drop_shares(shares, &[drop]);
                prop_assert_eq!(scheme.reconstruct(&received, secret.len()).unwrap(), secret.clone());
            }
        }

        #[test]
        fn convergent_shares_depend_only_on_content(secret in proptest::collection::vec(any::<u8>(), 1..512)) {
            let scheme = CaontRsRivest::new(4, 3).unwrap();
            prop_assert_eq!(scheme.split(&secret).unwrap(), scheme.split(&secret).unwrap());
        }
    }
}
