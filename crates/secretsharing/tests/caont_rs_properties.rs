//! Property tests for CAONT-RS (§3.2): round-trips over arbitrary secret
//! sizes up to 64 KiB, reconstruction from every k-subset of shares,
//! determinism across independently-constructed schemes, and corruption
//! detection.
//!
//! Case counts are reduced under `debug_assertions` so plain `cargo test`
//! stays fast; CI additionally runs this suite in release mode at full size.

use cdstore_secretsharing::{CaontRs, SecretSharing, SharingError};
use proptest::prelude::*;

const CASES: u32 = if cfg!(debug_assertions) { 6 } else { 32 };

/// All `k`-element subsets of `{0, …, n-1}`.
fn k_subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
    fn go(start: usize, n: usize, k: usize, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k == 0 {
            out.push(prefix.clone());
            return;
        }
        for i in start..=n - k {
            prefix.push(i);
            go(i + 1, n, k - 1, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    go(0, n, k, &mut Vec::new(), &mut out);
    out
}

/// Keeps only the share slots named in `keep`, as after cloud failures.
fn keep_only(shares: &[Vec<u8>], keep: &[usize]) -> Vec<Option<Vec<u8>>> {
    shares
        .iter()
        .enumerate()
        .map(|(i, s)| keep.contains(&i).then(|| s.clone()))
        .collect()
}

#[test]
fn every_k_subset_reconstructs_for_small_parameter_sets() {
    let secret: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
    for (n, k) in [(4usize, 3usize), (5, 3), (6, 4), (5, 2), (8, 5)] {
        let scheme = CaontRs::new(n, k).unwrap();
        let shares = scheme.split(&secret).unwrap();
        let subsets = k_subsets(n, k);
        assert!(subsets.len() >= n); // C(n, k) distinct decode sets
        for subset in subsets {
            let received = keep_only(&shares, &subset);
            assert_eq!(
                scheme.reconstruct(&received, secret.len()).unwrap(),
                secret,
                "n={n} k={k} subset={subset:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    #[test]
    fn round_trips_for_secret_sizes_up_to_64_kib(
        secret in proptest::collection::vec(any::<u8>(), 1..65536usize)
    ) {
        let scheme = CaontRs::new(4, 3).unwrap();
        let shares = scheme.split(&secret).unwrap();
        prop_assert_eq!(shares.len(), 4);
        for share in &shares {
            prop_assert_eq!(share.len(), scheme.share_size(secret.len()));
        }
        // Every one of the C(4, 3) = 4 decode subsets recovers the secret,
        // as does the full share set.
        for subset in k_subsets(4, 3) {
            let received = keep_only(&shares, &subset);
            prop_assert_eq!(
                &scheme.reconstruct(&received, secret.len()).unwrap(),
                &secret
            );
        }
        let all: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
        prop_assert_eq!(scheme.reconstruct(&all, secret.len()).unwrap(), secret);
    }

    #[test]
    fn independently_constructed_schemes_split_identically(
        secret in proptest::collection::vec(any::<u8>(), 1..8192usize)
    ) {
        // Convergence is what inter-user deduplication rests on: any two
        // clients (scheme instances) must derive byte-identical shares.
        let client_a = CaontRs::new(4, 3).unwrap();
        let client_b = CaontRs::new(4, 3).unwrap();
        let shares = client_a.split(&secret).unwrap();
        prop_assert_eq!(&shares, &client_b.split(&secret).unwrap());
        // Re-splitting on the same instance is stable too.
        prop_assert_eq!(&shares, &client_a.split(&secret).unwrap());
        // A shared organisation salt is equally deterministic, but yields
        // different shares than the unsalted scheme.
        let org_a = CaontRs::with_salt(4, 3, b"org").unwrap();
        let org_b = CaontRs::with_salt(4, 3, b"org").unwrap();
        let salted = org_a.split(&secret).unwrap();
        prop_assert_eq!(&salted, &org_b.split(&secret).unwrap());
        prop_assert!(salted != shares);
    }

    #[test]
    fn fewer_than_k_shares_never_reconstruct(
        secret in proptest::collection::vec(any::<u8>(), 1..4096usize),
        drop_seed: u64
    ) {
        let scheme = CaontRs::new(4, 3).unwrap();
        let shares = scheme.split(&secret).unwrap();
        // Keep only k - 1 = 2 shares.
        let first = (drop_seed % 4) as usize;
        let second = (first + 1 + (drop_seed / 4 % 3) as usize) % 4;
        let received = keep_only(&shares, &[first, second]);
        prop_assert!(matches!(
            scheme.reconstruct(&received, secret.len()),
            Err(SharingError::NotEnoughShares { needed: 3, available: 2 })
        ));
    }

    #[test]
    fn corrupting_any_decoded_share_is_detected(
        secret in proptest::collection::vec(any::<u8>(), 1..4096usize),
        corrupt_seed: u64
    ) {
        let scheme = CaontRs::new(4, 3).unwrap();
        let mut shares = scheme.split(&secret).unwrap();
        // Corrupt one byte of one share and decode from a subset that uses
        // the corrupted share: the embedded hash must catch it.
        let victim = (corrupt_seed % 4) as usize;
        let pos = (corrupt_seed / 4) as usize % shares[victim].len();
        shares[victim][pos] ^= 0x01;
        let subset: Vec<usize> = (0..4).filter(|&i| i != (victim + 1) % 4).collect();
        let received = keep_only(&shares, &subset);
        prop_assert_eq!(
            scheme.reconstruct(&received, secret.len()),
            Err(SharingError::IntegrityCheckFailed)
        );
    }
}
