//! Golden-vector regression tests pinning the exact CAONT-RS share bytes
//! for fixed inputs.
//!
//! CAONT-RS is *convergent*: the shares are a deterministic function of the
//! secret (and the optional organisation salt). Cross-version inter-user
//! deduplication therefore depends on every release producing bit-identical
//! shares — a refactor that silently changes the package layout, the hash,
//! the CTR mask, or the Reed-Solomon generator would fragment existing
//! deployments' dedup space. These vectors were produced by the
//! implementation at the time the suite was written and must never change.

use cdstore_crypto::sha256;
use cdstore_secretsharing::{CaontRs, SecretSharing};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    s.as_bytes()
        .chunks(2)
        .map(|pair| u8::from_str_radix(std::str::from_utf8(pair).unwrap(), 16).unwrap())
        .collect()
}

/// Shares of the empty secret under (n, k) = (4, 3), no salt.
const EMPTY_SHARES: [&str; 4] = [
    "f5499fd541013679d1f67b",
    "f2c5fd14a06ba2cf7e9461",
    "8b57d71a7d5fb129604d6d",
    "7a7b5533b2518801be1463",
];

/// Shares of `TEXT_SECRET` under (n, k) = (4, 3), no salt.
const TEXT_SECRET: &[u8] = b"CDStore golden vector: convergent dispersal";
const TEXT_SHARES: [&str; 4] = [
    "a41f68a3a86da3adbc8775f00c0935804317a07d438a1011be",
    "cbff1407540c0de6e04d7ff669f510d00f55fba1327bebffde",
    "5ee16eb8e083312e9a282ecc6fd585b2acdc60e9813385a12d",
    "cbcff1d778b02946e528518f6dc6fb79c9222d10b7097002cb",
];

/// SHA-256 fingerprints of the four shares of the 8 KiB Knuth-sequence
/// secret (see [`big_secret`]), each share being 2742 bytes.
const BIG_SHARE_LEN: usize = 2742;
const BIG_SHARE_HASHES: [&str; 4] = [
    "4d4b08ed910c8d8b03949e87a7a721c044cc93607524a5dcf8230e7a92b14b1a",
    "2e5dbc7a19be0f837e1dff8c6e3015df107ef157e768ee30fc8036168f82c725",
    "dede8d18d878ca82c49be26b014d1c74ffaa473c6cc6ff173d496d19f3c4f82a",
    "791aec7e74cfd52875eaa61fc6c6be8daae5dc78d5ffa7b79b5d422a45610f43",
];

/// Shares of `b"salted golden vector"` under (4, 3) with salt
/// `b"org-secret"`.
const SALTED_SHARES: [&str; 4] = [
    "86b31bae2034bea239119b1646c56072709e",
    "7f4b9069a89a1e0c617bdf559d05674f95ee",
    "e5798d696afe0aa006aa4ac314adb64370ce",
    "ef8abd061dd1950bc3bb0e800229b9b8ee5e",
];

fn big_secret() -> Vec<u8> {
    (0..8192u32)
        .map(|i| (i.wrapping_mul(2_654_435_761) >> 24) as u8)
        .collect()
}

fn assert_pinned(scheme: &CaontRs, secret: &[u8], pinned: &[&str; 4]) {
    let shares = scheme.split(secret).unwrap();
    for (i, (share, expected)) in shares.iter().zip(pinned).enumerate() {
        assert_eq!(
            hex(share),
            *expected,
            "share {i} drifted from the pinned vector — this breaks \
             cross-version inter-user deduplication"
        );
    }
    // The pinned bytes (as a server would have stored them in an older
    // version) still decode to the secret with today's code.
    let received: Vec<Option<Vec<u8>>> = pinned.iter().map(|s| Some(unhex(s))).collect();
    assert_eq!(scheme.reconstruct(&received, secret.len()).unwrap(), secret);
}

#[test]
fn empty_secret_shares_are_pinned() {
    let scheme = CaontRs::new(4, 3).unwrap();
    assert_pinned(&scheme, b"", &EMPTY_SHARES);
}

#[test]
fn text_secret_shares_are_pinned() {
    let scheme = CaontRs::new(4, 3).unwrap();
    assert_pinned(&scheme, TEXT_SECRET, &TEXT_SHARES);
}

#[test]
fn large_secret_share_fingerprints_are_pinned() {
    let scheme = CaontRs::new(4, 3).unwrap();
    let secret = big_secret();
    let shares = scheme.split(&secret).unwrap();
    for (i, (share, expected)) in shares.iter().zip(&BIG_SHARE_HASHES).enumerate() {
        assert_eq!(share.len(), BIG_SHARE_LEN, "share {i} length drifted");
        assert_eq!(
            hex(&sha256::hash(share)),
            *expected,
            "share {i} fingerprint drifted from the pinned vector"
        );
    }
}

#[test]
fn large_secret_batch_fingerprints_match_pinned_vectors() {
    // Same pinned digests, computed through the batched hashing entry point
    // the client uses (`sha256::hash_batch`). On SHA-NI hosts this runs the
    // hardware path, on scalar hosts the 4-lane interleaved scheduler, and
    // under CDSTORE_FORCE_SCALAR=1 the portable fallback — CI runs this
    // suite in both dispatch modes so every path must reproduce the vectors.
    let scheme = CaontRs::new(4, 3).unwrap();
    let secret = big_secret();
    let shares = scheme.split(&secret).unwrap();
    let refs: Vec<&[u8]> = shares.iter().map(|s| s.as_slice()).collect();
    let digests = sha256::hash_batch(&refs);
    assert_eq!(digests.len(), 4);
    for (i, (digest, expected)) in digests.iter().zip(&BIG_SHARE_HASHES).enumerate() {
        assert_eq!(
            hex(digest),
            *expected,
            "batched fingerprint of share {i} drifted from the pinned vector"
        );
    }
}

#[test]
fn salted_secret_shares_are_pinned() {
    let scheme = CaontRs::with_salt(4, 3, b"org-secret").unwrap();
    assert_pinned(&scheme, b"salted golden vector", &SALTED_SHARES);
}
