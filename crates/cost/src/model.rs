//! The cost model comparing CDStore with the AONT-RS and single-cloud
//! baselines (Figure 9).

use serde::{Deserialize, Serialize};

use crate::pricing::{cheapest_instance_for_index, S3Pricing};

/// A backup scenario (the paper's case study: weekly backups retained for 26
/// weeks, `(n, k) = (4, 3)`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Weekly backup size in bytes (logical data per week).
    pub weekly_backup_bytes: f64,
    /// Retention in weeks (26 in the paper: half a year).
    pub retention_weeks: u32,
    /// Deduplication ratio (logical shares / physical shares, e.g. 10).
    pub dedup_ratio: f64,
    /// Number of clouds.
    pub n: usize,
    /// Reconstruction threshold.
    pub k: usize,
    /// Average chunk (secret) size in bytes; determines metadata overheads.
    pub avg_chunk_bytes: f64,
}

impl Scenario {
    /// The paper's default case study with a given weekly size and dedup ratio.
    pub fn case_study(weekly_backup_bytes: f64, dedup_ratio: f64) -> Self {
        Scenario {
            weekly_backup_bytes,
            retention_weeks: 26,
            dedup_ratio,
            n: 4,
            k: 3,
            avg_chunk_bytes: 8.0 * 1024.0,
        }
    }

    /// Total logical bytes retained (weekly size × retention).
    pub fn logical_bytes(&self) -> f64 {
        self.weekly_backup_bytes * self.retention_weeks as f64
    }
}

/// The monthly cost of one system, broken down by component.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// System name.
    pub system: String,
    /// Monthly storage cost in USD (data + metadata).
    pub storage_usd: f64,
    /// Monthly VM cost in USD (zero for the baselines).
    pub vm_usd: f64,
    /// The EC2 instance type chosen per cloud (CDStore only).
    pub instance: Option<String>,
    /// Number of instances per cloud (usually 1).
    pub instances_per_cloud: u32,
}

impl CostBreakdown {
    /// Total monthly cost.
    pub fn total_usd(&self) -> f64 {
        self.storage_usd + self.vm_usd
    }
}

/// The three-way comparison evaluated for one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostComparison {
    /// The scenario evaluated.
    pub scenario: Scenario,
    /// CDStore's cost.
    pub cdstore: CostBreakdown,
    /// The AONT-RS multi-cloud baseline's cost.
    pub aont_rs: CostBreakdown,
    /// The single-cloud baseline's cost.
    pub single_cloud: CostBreakdown,
}

impl CostComparison {
    /// Saving of CDStore relative to the AONT-RS baseline, in `[0, 1]`.
    pub fn saving_vs_aont_rs(&self) -> f64 {
        1.0 - self.cdstore.total_usd() / self.aont_rs.total_usd()
    }

    /// Saving of CDStore relative to the single-cloud baseline, in `[0, 1]`.
    pub fn saving_vs_single_cloud(&self) -> f64 {
        1.0 - self.cdstore.total_usd() / self.single_cloud.total_usd()
    }
}

/// The cost model: pricing inputs plus index/metadata size parameters.
#[derive(Debug, Clone)]
pub struct CostModel {
    pricing: S3Pricing,
    /// Bytes of share-index + mapping state per unique share held on each
    /// server's local instance storage.
    index_entry_bytes: f64,
    /// Bytes of file-recipe metadata per secret per cloud, stored in S3 and
    /// *not* deduplicated (recipes reference every logical secret).
    recipe_entry_bytes: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            pricing: S3Pricing::default(),
            index_entry_bytes: 120.0,
            recipe_entry_bytes: 36.0,
        }
    }
}

impl CostModel {
    /// Creates the default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a model with explicit metadata-size parameters (used by the
    /// sensitivity tests).
    pub fn with_metadata_sizes(index_entry_bytes: f64, recipe_entry_bytes: f64) -> Self {
        CostModel {
            pricing: S3Pricing::default(),
            index_entry_bytes,
            recipe_entry_bytes,
        }
    }

    /// Evaluates the three systems for a scenario.
    pub fn evaluate(&self, scenario: &Scenario) -> CostComparison {
        let logical = scenario.logical_bytes();
        let n = scenario.n as f64;
        let k = scenario.k as f64;

        // --- Single cloud: all logical data, no redundancy, no dedup, no VMs.
        let single_cloud = CostBreakdown {
            system: "single-cloud".to_string(),
            storage_usd: self.pricing.monthly_cost(logical),
            vm_usd: 0.0,
            instance: None,
            instances_per_cloud: 1,
        };

        // --- AONT-RS multi-cloud: n/k blowup, no dedup, no VMs. Each cloud
        // stores logical / k bytes and is billed on its own tier schedule.
        let aont_per_cloud = logical / k;
        let aont_rs = CostBreakdown {
            system: "AONT-RS".to_string(),
            storage_usd: n * self.pricing.monthly_cost(aont_per_cloud),
            vm_usd: 0.0,
            instance: None,
            instances_per_cloud: 1,
        };

        // --- CDStore: deduplicated shares + file recipes + server VMs.
        let physical_logical = logical / scenario.dedup_ratio.max(1.0);
        let physical_per_cloud = physical_logical / k;
        // File recipes: one entry per secret per cloud, for every logical
        // (non-deduplicated) secret of every retained backup.
        let secrets = logical / scenario.avg_chunk_bytes;
        let recipe_per_cloud = secrets * self.recipe_entry_bytes;
        let storage_usd = n * self
            .pricing
            .monthly_cost(physical_per_cloud + recipe_per_cloud);
        // Index sizing: one entry per unique share stored on the cloud.
        let share_bytes = (scenario.avg_chunk_bytes + 32.0) / k;
        let unique_shares_per_cloud = physical_per_cloud / share_bytes;
        let index_bytes = unique_shares_per_cloud * self.index_entry_bytes;
        let (instance, count, per_cloud_vm) = cheapest_instance_for_index(index_bytes);
        let cdstore = CostBreakdown {
            system: "CDStore".to_string(),
            storage_usd,
            vm_usd: n * per_cloud_vm,
            instance: Some(instance.name.to_string()),
            instances_per_cloud: count,
        };

        CostComparison {
            scenario: *scenario,
            cdstore,
            aont_rs,
            single_cloud,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TB;

    #[test]
    fn paper_case_study_reproduces_70_percent_saving() {
        // §5.6: 16 TB weekly, 10x dedup, 26-week retention, (4, 3).
        let model = CostModel::new();
        let comparison = model.evaluate(&Scenario::case_study(16.0 * TB, 10.0));
        // Single-cloud ≈ US$12,250/month, AONT-RS ≈ US$16,400/month.
        assert!(
            (10_500.0..13_500.0).contains(&comparison.single_cloud.total_usd()),
            "single cloud {}",
            comparison.single_cloud.total_usd()
        );
        assert!(
            (15_000.0..18_000.0).contains(&comparison.aont_rs.total_usd()),
            "AONT-RS {}",
            comparison.aont_rs.total_usd()
        );
        // CDStore saves at least 70% against both baselines.
        assert!(
            comparison.saving_vs_aont_rs() >= 0.70,
            "vs AONT-RS {}",
            comparison.saving_vs_aont_rs()
        );
        assert!(
            comparison.saving_vs_single_cloud() >= 0.70,
            "vs single {}",
            comparison.saving_vs_single_cloud()
        );
        // And it does pay for VMs.
        assert!(comparison.cdstore.vm_usd > 0.0);
        assert!(comparison.cdstore.instance.is_some());
    }

    #[test]
    fn savings_increase_with_weekly_backup_size() {
        let model = CostModel::new();
        let small = model.evaluate(&Scenario::case_study(0.25 * TB, 10.0));
        let large = model.evaluate(&Scenario::case_study(64.0 * TB, 10.0));
        assert!(large.saving_vs_aont_rs() > small.saving_vs_aont_rs());
        assert!(large.saving_vs_single_cloud() > small.saving_vs_single_cloud());
    }

    #[test]
    fn savings_increase_with_dedup_ratio() {
        let model = CostModel::new();
        let low = model.evaluate(&Scenario::case_study(16.0 * TB, 2.0));
        let mid = model.evaluate(&Scenario::case_study(16.0 * TB, 10.0));
        let high = model.evaluate(&Scenario::case_study(16.0 * TB, 50.0));
        assert!(mid.saving_vs_aont_rs() > low.saving_vs_aont_rs());
        assert!(high.saving_vs_aont_rs() >= mid.saving_vs_aont_rs());
        // §5.6: between 10x and 50x the saving sits around 70–85%.
        assert!(mid.saving_vs_aont_rs() > 0.70 && high.saving_vs_aont_rs() < 0.95);
    }

    #[test]
    fn saving_vs_aont_rs_exceeds_saving_vs_single_cloud() {
        // The AONT-RS baseline additionally pays for dispersal redundancy, so
        // CDStore's saving against it is larger (§5.6).
        let model = CostModel::new();
        for weekly_tb in [1.0, 4.0, 16.0, 64.0] {
            let c = model.evaluate(&Scenario::case_study(weekly_tb * TB, 10.0));
            assert!(
                c.saving_vs_aont_rs() > c.saving_vs_single_cloud(),
                "weekly {weekly_tb} TB"
            );
        }
    }

    #[test]
    fn no_dedup_makes_cdstore_more_expensive_than_single_cloud() {
        // With dedup ratio 1 CDStore still pays the dispersal redundancy and
        // the VMs, so it cannot beat the single-cloud baseline.
        let model = CostModel::new();
        let c = model.evaluate(&Scenario::case_study(16.0 * TB, 1.0));
        assert!(c.saving_vs_single_cloud() < 0.0);
    }

    #[test]
    fn instance_choice_switches_with_index_size() {
        let model = CostModel::new();
        let tiny = model.evaluate(&Scenario::case_study(0.25 * TB, 10.0));
        let huge = model.evaluate(&Scenario::case_study(256.0 * TB, 10.0));
        assert_ne!(tiny.cdstore.instance, huge.cdstore.instance);
        assert!(huge.cdstore.vm_usd > tiny.cdstore.vm_usd);
    }

    #[test]
    fn comparison_serialises_to_json() {
        let model = CostModel::new();
        let c = model.evaluate(&Scenario::case_study(4.0 * TB, 10.0));
        let json = serde_json::to_string_pretty(&c).unwrap();
        let back: CostComparison = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn recipe_overhead_slows_saving_growth_at_scale() {
        // §5.6: "The increase slows down as the weekly backup size further
        // increases, since the overhead of file recipes becomes significant."
        let model = CostModel::new();
        let s64 = model
            .evaluate(&Scenario::case_study(64.0 * TB, 10.0))
            .saving_vs_aont_rs();
        let s128 = model
            .evaluate(&Scenario::case_study(128.0 * TB, 10.0))
            .saving_vs_aont_rs();
        let s256 = model
            .evaluate(&Scenario::case_study(256.0 * TB, 10.0))
            .saving_vs_aont_rs();
        let growth_1 = s128 - s64;
        let growth_2 = s256 - s128;
        assert!(growth_2 <= growth_1 + 1e-6);
    }
}
