//! The monetary cost model of §5.6 (Figure 9).
//!
//! The paper compares the monthly cost of backing up an organisation's data
//! with three systems, all priced with Amazon EC2/S3's September 2014 tiered
//! price lists:
//!
//! * **CDStore** — `n` clouds, storage reduced by deduplication, plus one
//!   reserved EC2 instance per cloud to host the CDStore server (sized by the
//!   deduplication indices), plus file-recipe storage overhead;
//! * **AONT-RS multi-cloud** — same reliability/security, no deduplication,
//!   no server VMs;
//! * **single cloud** — one cloud, key-based encryption, no redundancy, no
//!   deduplication, no VMs.
//!
//! * [`pricing`] — the embedded S3 storage tiers and EC2 reserved-instance
//!   catalogue (a static snapshot standing in for the 2014 price lists).
//! * [`model`] — [`CostModel`], which evaluates a backup scenario and
//!   produces the cost breakdowns and savings plotted in Figure 9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model;
pub mod pricing;

pub use model::{CostBreakdown, CostComparison, CostModel, Scenario};
pub use pricing::{Ec2Instance, S3Pricing, EC2_CATALOG};

/// Bytes per terabyte (binary).
pub const TB: f64 = 1024.0 * 1024.0 * 1024.0 * 1024.0;
/// Bytes per gigabyte (binary).
pub const GB: f64 = 1024.0 * 1024.0 * 1024.0;
