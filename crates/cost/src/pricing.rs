//! Embedded S3 tiered storage pricing and EC2 reserved-instance catalogue.
//!
//! The paper's tool uses the Amazon EC2 \[1\] and S3 \[2\] price lists of
//! September 2014. Those exact lists are no longer served, so this module
//! embeds a static snapshot with the same structure: S3 charges roughly
//! US$30 per TB-month with volume discounts in six tiers, and
//! high-utilisation reserved EC2 instances (compute-optimised `c3` and
//! storage-optimised `i2` families) cost roughly US$60–1,300 per month
//! depending on CPU/memory/local-storage size. The absolute dollar values
//! are representative; the *structure* (tiered storage, discrete instance
//! steps) is what produces Figure 9's shape.

use serde::{Deserialize, Serialize};

use crate::GB;

/// One S3 storage pricing tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct S3Tier {
    /// Upper bound of the tier in GB (cumulative); effectively unbounded for
    /// the last tier (a very large finite value, so the list stays
    /// JSON-serialisable).
    pub upto_gb: f64,
    /// Price in USD per GB-month within the tier.
    pub usd_per_gb_month: f64,
}

/// The S3 tiered storage price list (standard storage, September 2014).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct S3Pricing {
    /// The tiers, in increasing order of `upto_gb`.
    pub tiers: Vec<S3Tier>,
}

impl Default for S3Pricing {
    fn default() -> Self {
        S3Pricing {
            tiers: vec![
                S3Tier {
                    upto_gb: 1024.0,
                    usd_per_gb_month: 0.0300,
                },
                S3Tier {
                    upto_gb: 50.0 * 1024.0,
                    usd_per_gb_month: 0.0295,
                },
                S3Tier {
                    upto_gb: 500.0 * 1024.0,
                    usd_per_gb_month: 0.0290,
                },
                S3Tier {
                    upto_gb: 1000.0 * 1024.0,
                    usd_per_gb_month: 0.0285,
                },
                S3Tier {
                    upto_gb: 5000.0 * 1024.0,
                    usd_per_gb_month: 0.0280,
                },
                S3Tier {
                    upto_gb: 1.0e15,
                    usd_per_gb_month: 0.0275,
                },
            ],
        }
    }
}

impl S3Pricing {
    /// Monthly storage cost in USD for `bytes` of data, applying the tiers
    /// cumulatively (the first 1 TB at the first tier's rate, and so on).
    pub fn monthly_cost(&self, bytes: f64) -> f64 {
        let mut remaining_gb = bytes.max(0.0) / GB;
        let mut cost = 0.0;
        let mut previous_upto = 0.0;
        for tier in &self.tiers {
            if remaining_gb <= 0.0 {
                break;
            }
            let tier_capacity = tier.upto_gb - previous_upto;
            let in_tier = remaining_gb.min(tier_capacity);
            cost += in_tier * tier.usd_per_gb_month;
            remaining_gb -= in_tier;
            previous_upto = tier.upto_gb;
        }
        cost
    }
}

/// One EC2 reserved-instance option.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ec2Instance {
    /// Instance type name.
    pub name: &'static str,
    /// Number of virtual CPUs.
    pub vcpus: u32,
    /// Memory in GB.
    pub memory_gb: f64,
    /// Local (instance-store) storage in GB, which must hold the
    /// deduplication indices (§5.6).
    pub local_storage_gb: f64,
    /// Effective monthly cost in USD (upfront fee amortised plus hourly
    /// charges, high-utilisation reserved pricing).
    pub monthly_usd: f64,
}

/// The embedded catalogue of candidate instances, cheapest first.
pub const EC2_CATALOG: [Ec2Instance; 6] = [
    Ec2Instance {
        name: "c3.large",
        vcpus: 2,
        memory_gb: 3.75,
        local_storage_gb: 32.0,
        monthly_usd: 61.0,
    },
    Ec2Instance {
        name: "c3.xlarge",
        vcpus: 4,
        memory_gb: 7.5,
        local_storage_gb: 80.0,
        monthly_usd: 123.0,
    },
    Ec2Instance {
        name: "c3.2xlarge",
        vcpus: 8,
        memory_gb: 15.0,
        local_storage_gb: 160.0,
        monthly_usd: 245.0,
    },
    Ec2Instance {
        name: "i2.xlarge",
        vcpus: 4,
        memory_gb: 30.5,
        local_storage_gb: 800.0,
        monthly_usd: 360.0,
    },
    Ec2Instance {
        name: "i2.2xlarge",
        vcpus: 8,
        memory_gb: 61.0,
        local_storage_gb: 1600.0,
        monthly_usd: 720.0,
    },
    Ec2Instance {
        name: "i2.4xlarge",
        vcpus: 16,
        memory_gb: 122.0,
        local_storage_gb: 3200.0,
        monthly_usd: 1295.0,
    },
];

/// Chooses the cheapest instance configuration whose local storage holds an
/// index of `index_bytes`. If the index exceeds even the largest instance,
/// multiple instances of the largest type are used (`count > 1`).
///
/// Returns `(instance, count, monthly cost in USD)`.
pub fn cheapest_instance_for_index(index_bytes: f64) -> (Ec2Instance, u32, f64) {
    let index_gb = index_bytes.max(0.0) / GB;
    for instance in EC2_CATALOG {
        if index_gb <= instance.local_storage_gb {
            return (instance, 1, instance.monthly_usd);
        }
    }
    let largest = EC2_CATALOG[EC2_CATALOG.len() - 1];
    let count = (index_gb / largest.local_storage_gb).ceil() as u32;
    (largest, count, largest.monthly_usd * count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TB;

    #[test]
    fn s3_pricing_is_about_30_usd_per_tb() {
        let pricing = S3Pricing::default();
        let one_tb = pricing.monthly_cost(TB);
        assert!((one_tb - 30.72).abs() < 0.1, "1 TB costs {one_tb}");
        assert_eq!(pricing.monthly_cost(0.0), 0.0);
    }

    #[test]
    fn s3_tiers_give_volume_discounts() {
        let pricing = S3Pricing::default();
        let small = pricing.monthly_cost(10.0 * TB) / 10.0;
        let large = pricing.monthly_cost(1000.0 * TB) / 1000.0;
        assert!(large < small, "per-TB rate must fall with volume");
        // Paper's example: 16 TB weekly * 26 weeks = 416 TB logical in a
        // single cloud costs about US$12,250 per month.
        let single_cloud = pricing.monthly_cost(416.0 * TB);
        assert!(
            (11_000.0..13_500.0).contains(&single_cloud),
            "416 TB costs {single_cloud}"
        );
    }

    #[test]
    fn s3_cost_is_monotonic_in_size() {
        let pricing = S3Pricing::default();
        let mut last = 0.0;
        for tb in [0.5, 1.0, 10.0, 100.0, 1000.0, 6000.0] {
            let cost = pricing.monthly_cost(tb * TB);
            assert!(cost > last);
            last = cost;
        }
    }

    #[test]
    fn instance_selection_prefers_cheapest_that_fits() {
        let (small, count, cost) = cheapest_instance_for_index(10.0 * GB);
        assert_eq!(small.name, "c3.large");
        assert_eq!(count, 1);
        assert_eq!(cost, 61.0);
        let (mid, _, _) = cheapest_instance_for_index(500.0 * GB);
        assert_eq!(mid.name, "i2.xlarge");
        let (large, count, cost) = cheapest_instance_for_index(10_000.0 * GB);
        assert_eq!(large.name, "i2.4xlarge");
        assert_eq!(count, 4);
        assert!((cost - 4.0 * 1295.0).abs() < 1e-9);
    }

    #[test]
    fn catalog_is_sorted_by_cost_and_monthly_costs_match_paper_range() {
        for pair in EC2_CATALOG.windows(2) {
            assert!(pair[0].monthly_usd < pair[1].monthly_usd);
            assert!(pair[0].local_storage_gb < pair[1].local_storage_gb);
        }
        assert!(EC2_CATALOG[0].monthly_usd >= 60.0);
        assert!(EC2_CATALOG[EC2_CATALOG.len() - 1].monthly_usd <= 1300.0);
    }

    #[test]
    fn pricing_serialises_to_json() {
        let pricing = S3Pricing::default();
        let json = serde_json::to_string(&pricing).unwrap();
        let back: S3Pricing = serde_json::from_str(&json).unwrap();
        assert_eq!(back, pricing);
    }
}
