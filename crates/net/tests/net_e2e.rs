//! Process-per-node end-to-end test: four real `cdstore-serve` processes on
//! loopback ports, driven by [`cdstore_net::NetClient`] through the generic
//! [`cdstore_core::CdStore`] façade.
//!
//! This is the deployment shape of the paper — clients and servers in
//! different processes, every byte crossing a socket — and it asserts the
//! tentpole acceptance criteria: multi-user backup/restore/delete/gc over
//! the wire, byte-exact restores identical to the in-process path, intact
//! dedup counters, and k-of-n restores surviving the kill of one server
//! process mid-churn.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use cdstore_core::{CdStore, CdStoreConfig, CdStoreError};
use cdstore_net::{NetClientConfig, RemoteServer};

/// One spawned `cdstore-serve` child and its parsed listen address.
struct ServeProc {
    child: Child,
    addr: String,
}

impl ServeProc {
    fn spawn(cloud: usize) -> ServeProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_cdstore-serve"))
            .args(["--cloud", &cloud.to_string(), "--addr", "127.0.0.1:0"])
            .stdin(Stdio::piped()) // held open; EOF would stop the server
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn cdstore-serve");
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read LISTENING line");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
            .to_string();
        ServeProc { child, addr }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Client config tuned for the test: fail fast when a server is dead.
fn client_config() -> NetClientConfig {
    NetClientConfig {
        request_timeout: Duration::from_secs(10),
        connect_timeout: Duration::from_secs(2),
        retries: 1,
        ..NetClientConfig::default()
    }
}

fn connect_store(procs: &[ServeProc]) -> CdStore<RemoteServer> {
    let transports: Vec<RemoteServer> = procs
        .iter()
        .map(|p| RemoteServer::connect(p.addr.as_str(), client_config()).expect("connect"))
        .collect();
    CdStore::from_transports(CdStoreConfig::new(4, 3).unwrap(), transports).unwrap()
}

/// Position-dependent low-entropy data: stable chunk boundaries, honest
/// dedup behaviour — the same generator the in-process tests use, so the
/// cross-check against `CdStore::new` compares identical workloads.
fn sample(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i / 700) as u8).wrapping_mul(17).wrapping_add(seed))
        .collect()
}

fn file_size() -> usize {
    // Debug builds run this in CI's test sweep too; keep them brisk.
    if cfg!(debug_assertions) {
        96_000
    } else {
        400_000
    }
}

#[test]
fn four_processes_full_lifecycle_and_kill_one() {
    let procs: Vec<ServeProc> = (0..4).map(ServeProc::spawn).collect();
    let store = connect_store(&procs);

    // --- Multi-user backup / restore, byte-exact, dedup intact. -----------
    let alice_data = sample(file_size(), 3);
    let bob_data = alice_data.clone(); // cross-user duplicate content
    let carol_data = sample(file_size() / 2, 9);

    let a = store.backup(1, "/alice/docs.tar", &alice_data).unwrap();
    let b = store.backup(2, "/bob/docs.tar", &bob_data).unwrap();
    store.backup(3, "/carol/photos.tar", &carol_data).unwrap();

    assert_eq!(store.restore(1, "/alice/docs.tar").unwrap(), alice_data);
    assert_eq!(store.restore(2, "/bob/docs.tar").unwrap(), bob_data);
    assert_eq!(store.restore(3, "/carol/photos.tar").unwrap(), carol_data);

    // Inter-user dedup happened server-side, across the wire: Bob paid the
    // transfer but stored nothing new.
    assert!(b.dedup.transferred_share_bytes > 0);
    assert_eq!(b.dedup.physical_share_bytes, 0);
    assert_eq!(
        a.dedup.transferred_share_bytes,
        b.dedup.transferred_share_bytes
    );
    let stats = store.stats();
    assert_eq!(stats.servers.len(), 4);
    for s in &stats.servers {
        assert!(s.shares_received > 0);
        assert!(s.inter_user_duplicates > 0, "dedup counters over the wire");
    }

    // --- The wire path matches the in-process path byte for byte. ---------
    let local = CdStore::new(CdStoreConfig::new(4, 3).unwrap());
    local.backup(1, "/alice/docs.tar", &alice_data).unwrap();
    assert_eq!(
        local.restore(1, "/alice/docs.tar").unwrap(),
        store.restore(1, "/alice/docs.tar").unwrap()
    );

    // --- Delete + gc over the wire reclaim real space. ---------------------
    let doomed = sample(file_size(), 21);
    store.backup(3, "/carol/tmp.tar", &doomed).unwrap();
    store.flush().unwrap();
    let before: u64 = store.stats().backend_bytes.iter().sum();
    assert!(store.delete(3, "/carol/tmp.tar").unwrap());
    let report = store.gc().unwrap();
    assert!(report.reclaimed_bytes > 0);
    let after: u64 = store.stats().backend_bytes.iter().sum();
    assert!(after < before, "gc shrank the remote backends");
    assert!(matches!(
        store.restore(3, "/carol/tmp.tar"),
        Err(CdStoreError::FileNotFound(_))
    ));

    // --- Kill one server process mid-churn: k-of-n survives. --------------
    let mut procs = procs;
    procs[0].kill();
    // The dead server fails its requests with transport errors, which the
    // restore path treats as transient: it retries, then swaps cloud 0 for
    // the spare — the read succeeds without anyone flagging the cloud.
    assert_eq!(store.restore(1, "/alice/docs.tar").unwrap(), alice_data);
    // Marking the cloud failed (what a deployment's health check does)
    // skips the dead transport up front instead of paying the retries.
    store.fail_cloud(0);
    assert_eq!(store.restore(1, "/alice/docs.tar").unwrap(), alice_data);
    assert_eq!(store.restore(2, "/bob/docs.tar").unwrap(), bob_data);
    assert_eq!(store.restore(3, "/carol/photos.tar").unwrap(), carol_data);
    // Churn continues on the survivors: deletes and gc still work.
    assert!(store.delete(2, "/bob/docs.tar").unwrap());
    assert!(store.gc().is_ok());
    assert_eq!(store.restore(1, "/alice/docs.tar").unwrap(), alice_data);
}

#[test]
fn wire_errors_carry_structure() {
    let procs: Vec<ServeProc> = (0..4).map(ServeProc::spawn).collect();
    let store = connect_store(&procs);
    // FileNotFound crosses the wire as FileNotFound, not a stringly blob.
    assert!(matches!(
        store.restore(9, "/never/backed/up"),
        Err(CdStoreError::FileNotFound(_))
    ));
}

#[test]
fn concurrent_clients_share_the_wire() {
    let procs: Vec<ServeProc> = (0..4).map(ServeProc::spawn).collect();
    let store = connect_store(&procs);
    std::thread::scope(|scope| {
        for user in 1..=4u64 {
            let store = store.clone();
            scope.spawn(move || {
                let data = sample(file_size() / 2, user as u8);
                let path = format!("/u{user}/data.tar");
                store.backup(user, &path, &data).unwrap();
                assert_eq!(store.restore(user, &path).unwrap(), data);
            });
        }
    });
    assert_eq!(store.stats().files, 4);
}
