//! Property tests for the wire codec, mirroring the PR-5 WAL torn-tail
//! property at the network layer:
//!
//! * arbitrary requests and responses round-trip encode → frame → decode;
//! * every strict byte-prefix of a frame is *incomplete* (wait for more
//!   bytes), never mis-parsed;
//! * single-byte corruption anywhere in a frame is rejected by the length /
//!   version / CRC checks — it never decodes back to the original message.

use cdstore_core::server::GcReport;
use cdstore_core::transport::{ServerProbe, ShareVerdict, StoreReceipt};
use cdstore_core::{FileRecipe, RecipeEntry, ShareMetadata};
use cdstore_crypto::Fingerprint;
use cdstore_net::frame::{decode_frame, encode_frame};
use cdstore_net::message::{decode_request, decode_response, encode_request, encode_response};
use cdstore_net::{Request, Response};
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};

fn fp(seed: u64) -> Fingerprint {
    Fingerprint::of(&seed.to_le_bytes())
}

fn fps(seeds: &[u64]) -> Vec<Fingerprint> {
    seeds.iter().map(|&s| fp(s)).collect()
}

/// Deterministically builds one of every request shape from generated raw
/// material (the shim has no enum strategies; selection-by-discriminant is
/// equivalent for coverage).
fn build_request(variant: u8, user: u64, seeds: &[u64], blob: &[u8], small: u32) -> Request {
    match variant % 12 {
        0 => Request::Ping,
        1 => Request::IntraUserQuery {
            user,
            fingerprints: fps(seeds),
        },
        2 => Request::StoreShares {
            user,
            shares: seeds
                .iter()
                .map(|&s| {
                    (
                        ShareMetadata {
                            fingerprint: fp(s),
                            share_size: blob.len() as u32,
                            secret_seq: s,
                            secret_size: small,
                        },
                        blob.to_vec(),
                    )
                })
                .collect(),
        },
        3 => Request::PutFile {
            user,
            encoded_pathname: blob.to_vec(),
            recipe: FileRecipe {
                file_size: user ^ 0x5555,
                entries: seeds
                    .iter()
                    .map(|&s| RecipeEntry {
                        share_fingerprint: fp(s),
                        secret_size: small,
                    })
                    .collect(),
            },
            uploaded: fps(seeds),
        },
        4 => Request::ReleaseUploads {
            user,
            fingerprints: fps(seeds),
        },
        5 => Request::HasFile {
            user,
            encoded_pathname: blob.to_vec(),
        },
        6 => Request::GetRecipe {
            user,
            encoded_pathname: blob.to_vec(),
        },
        7 => Request::DeleteFile {
            user,
            encoded_pathname: blob.to_vec(),
        },
        8 => Request::FetchShares {
            user,
            fingerprints: fps(seeds),
        },
        9 => Request::StreamShares {
            user,
            fingerprints: fps(seeds),
            window: small.max(1),
        },
        10 => Request::StreamCredit { grant: small },
        _ => Request::Gc {
            dead_ratio_bits: f64::from(small).to_bits(),
        },
    }
}

/// Same for responses.
fn build_response(variant: u8, user: u64, seeds: &[u64], blob: &[u8], small: u32) -> Response {
    match variant % 10 {
        0 => Response::Pong { cloud_index: small },
        1 => Response::Bools(seeds.iter().map(|s| s.is_multiple_of(2)).collect()),
        2 => Response::Receipt(StoreReceipt {
            new_bytes: user,
            verdicts: seeds
                .iter()
                .map(|s| match s % 3 {
                    0 => ShareVerdict::Stored,
                    1 => ShareVerdict::DuplicateInterUser,
                    _ => ShareVerdict::DuplicateIntraUser,
                })
                .collect(),
        }),
        3 => Response::Unit,
        4 => Response::Bool(user.is_multiple_of(2)),
        5 => Response::Shares(seeds.iter().map(|_| blob.to_vec()).collect()),
        6 => Response::StreamShare {
            seq: user,
            data: blob.to_vec(),
        },
        7 => Response::Gc(GcReport {
            containers_deleted: user,
            containers_compacted: u64::from(small),
            shares_rewritten: seeds.len() as u64,
            reclaimed_bytes: user ^ 7,
            rewritten_bytes: user ^ 13,
        }),
        8 => Response::Probe(ServerProbe::default()),
        _ => Response::Err {
            code: variant,
            needed: user,
            available: u64::from(small),
            msg: String::from_utf8_lossy(blob).into_owned(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn requests_round_trip_through_frames(
        variant in proptest::any::<u8>(),
        req_id in proptest::any::<u64>(),
        user in proptest::any::<u64>(),
        seeds in proptest::collection::vec(proptest::any::<u64>(), 0..12),
        blob in proptest::collection::vec(proptest::any::<u8>(), 0..512),
        small in 0u32..4096,
    ) {
        let req = build_request(variant, user, &seeds, &blob, small);
        let (msg_type, payload) = encode_request(req_id, &req);
        let frame = encode_frame(msg_type, &payload);
        let (mt, decoded_payload, consumed) = decode_frame(&frame).unwrap().unwrap();
        prop_assert_eq!(consumed, frame.len());
        let (back_id, back) = decode_request(mt, &decoded_payload).unwrap();
        prop_assert_eq!(back_id, req_id);
        prop_assert_eq!(back, req);
    }

    #[test]
    fn responses_round_trip_through_frames(
        variant in proptest::any::<u8>(),
        req_id in proptest::any::<u64>(),
        user in proptest::any::<u64>(),
        seeds in proptest::collection::vec(proptest::any::<u64>(), 0..12),
        blob in proptest::collection::vec(proptest::any::<u8>(), 0..512),
        small in 0u32..4096,
    ) {
        let resp = build_response(variant, user, &seeds, &blob, small);
        let (msg_type, payload) = encode_response(req_id, &resp);
        let frame = encode_frame(msg_type, &payload);
        let (mt, decoded_payload, _) = decode_frame(&frame).unwrap().unwrap();
        let (back_id, back) = decode_response(mt, &decoded_payload).unwrap();
        prop_assert_eq!(back_id, req_id);
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn every_strict_prefix_is_incomplete(
        variant in proptest::any::<u8>(),
        user in proptest::any::<u64>(),
        seeds in proptest::collection::vec(proptest::any::<u64>(), 0..8),
        blob in proptest::collection::vec(proptest::any::<u8>(), 0..256),
        small in 0u32..4096,
    ) {
        let req = build_request(variant, user, &seeds, &blob, small);
        let (msg_type, payload) = encode_request(7, &req);
        let frame = encode_frame(msg_type, &payload);
        for cut in 0..frame.len() {
            // A prefix must ask for more bytes — decoding it as a frame (or
            // worse, as a different message) would corrupt the stream.
            prop_assert!(
                matches!(decode_frame(&frame[..cut]), Ok(None)),
                "prefix of {} bytes mis-parsed", cut
            );
        }
    }

    #[test]
    fn single_byte_corruption_never_yields_the_original(
        variant in proptest::any::<u8>(),
        user in proptest::any::<u64>(),
        seeds in proptest::collection::vec(proptest::any::<u64>(), 0..8),
        blob in proptest::collection::vec(proptest::any::<u8>(), 0..256),
        small in 0u32..4096,
        target in proptest::any::<u16>(),
        flip in 1u8..=255,
    ) {
        let req = build_request(variant, user, &seeds, &blob, small);
        let (msg_type, payload) = encode_request(9, &req);
        let frame = encode_frame(msg_type, &payload);
        let mut bad = frame.clone();
        let idx = target as usize % bad.len();
        bad[idx] ^= flip;
        match decode_frame(&bad) {
            // Rejected outright or now incomplete (length grew): both safe.
            Err(_) | Ok(None) => {}
            Ok(Some((mt, decoded_payload, _))) => {
                // The CRC admits no single-byte flip of the checked content;
                // reaching here means the flip hit the length word in a way
                // that still framed — the re-framed content must then fail
                // the CRC... so decoding to the original is impossible.
                let survived = mt == msg_type
                    && decode_request(mt, &decoded_payload)
                        .is_some_and(|(id, back)| id == 9 && back == req);
                prop_assert!(!survived, "corruption at byte {} went unnoticed", idx);
            }
        }
    }
}
