//! [`NetClient`]: a pipelining connection pool, and [`RemoteServer`], the
//! [`ServerTransport`] implementation that speaks the wire protocol.
//!
//! Each pooled connection has a dedicated reader thread that dispatches
//! responses to waiting callers by request id, so any number of client
//! threads can keep requests in flight on the same connection — pipelining,
//! not one-request-per-round-trip. Failures are contained per call: a
//! timeout or connection loss kills the affected link, the next call
//! reconnects, and transport-level errors are retried a bounded number of
//! times (server-side errors are never retried — they would fail again).

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::Duration;

use cdstore_core::server::{GcConfig, GcReport};
use cdstore_core::transport::{ServerProbe, ServerTransport, StoreReceipt};
use cdstore_core::{CdStoreError, FileRecipe, ShareMetadata};
use cdstore_crypto::Fingerprint;
use parking_lot::Mutex;

use crate::frame::{write_frame, FrameReader, Polled};
use crate::message::{decode_response, encode_request, error_from_wire, Request, Response};

/// Tuning knobs of a [`NetClient`].
#[derive(Debug, Clone)]
pub struct NetClientConfig {
    /// Pooled connections per server (each pipelines independently).
    pub connections: usize,
    /// Per-request timeout; expiry kills the link and (within the retry
    /// budget) reconnects.
    pub request_timeout: Duration,
    /// TCP connect timeout.
    pub connect_timeout: Duration,
    /// Transport-failure retries per call (reconnect + resend).
    pub retries: u32,
    /// Credit window for streamed restores: the server keeps at most this
    /// many un-acknowledged shares in flight.
    pub stream_window: u32,
}

impl Default for NetClientConfig {
    fn default() -> Self {
        NetClientConfig {
            connections: 2,
            request_timeout: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(5),
            retries: 2,
            stream_window: 32,
        }
    }
}

/// One live connection: the write half plus the response-dispatch table
/// shared with its reader thread.
struct Link {
    stream: Mutex<TcpStream>,
    /// In-flight requests: req_id → channel to the waiting caller. Stream
    /// requests stay registered across many responses (removed at
    /// `StreamEnd`/`Err`); unary requests are removed at their single
    /// response.
    pending: Arc<Mutex<HashMap<u64, SyncSender<Response>>>>,
    dead: Arc<AtomicBool>,
}

impl Link {
    fn kill(&self) {
        self.dead.store(true, Ordering::SeqCst);
        let _ = self.stream.lock().shutdown(Shutdown::Both);
    }
}

impl Drop for Link {
    fn drop(&mut self) {
        // Close the socket for real (the reader thread holds a clone of the
        // handle) so the reader sees EOF and exits.
        self.kill();
    }
}

/// One pool slot; `None` until first use or after its link died.
struct Connection {
    link: Mutex<Option<Arc<Link>>>,
}

/// A pipelining RPC client for one CDStore server address.
pub struct NetClient {
    addr: SocketAddr,
    config: NetClientConfig,
    pool: Vec<Connection>,
    next_req_id: AtomicU64,
    next_conn: AtomicUsize,
}

fn remote_err(msg: impl std::fmt::Display) -> CdStoreError {
    CdStoreError::Remote(msg.to_string())
}

impl NetClient {
    /// Creates a client for the server at `addr`. Connections are opened
    /// lazily on first use.
    pub fn new(addr: impl ToSocketAddrs, config: NetClientConfig) -> Result<Self, CdStoreError> {
        let addr = addr
            .to_socket_addrs()
            .map_err(remote_err)?
            .next()
            .ok_or_else(|| remote_err("address resolved to nothing"))?;
        let pool = (0..config.connections.max(1))
            .map(|_| Connection {
                link: Mutex::new(None),
            })
            .collect();
        Ok(NetClient {
            addr,
            config,
            pool,
            next_req_id: AtomicU64::new(1),
            next_conn: AtomicUsize::new(0),
        })
    }

    /// The server address this client talks to.
    pub fn server_addr(&self) -> SocketAddr {
        self.addr
    }

    fn next_req_id(&self) -> u64 {
        self.next_req_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns a live link from the pool (round-robin), reconnecting the
    /// slot if its link is absent or dead.
    fn link(&self) -> Result<Arc<Link>, CdStoreError> {
        let slot = &self.pool[self.next_conn.fetch_add(1, Ordering::Relaxed) % self.pool.len()];
        let mut guard = slot.link.lock();
        if let Some(link) = guard.as_ref() {
            if !link.dead.load(Ordering::SeqCst) {
                return Ok(Arc::clone(link));
            }
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)
            .map_err(|e| remote_err(format!("connect to {}: {e}", self.addr)))?;
        let _ = stream.set_nodelay(true);
        let read_half = stream.try_clone().map_err(remote_err)?;
        let pending: Arc<Mutex<HashMap<u64, SyncSender<Response>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let dead = Arc::new(AtomicBool::new(false));
        {
            let pending = Arc::clone(&pending);
            let dead = Arc::clone(&dead);
            std::thread::spawn(move || {
                reader_loop(read_half, &pending);
                // Whatever ended the loop (EOF, reset, corrupt frame): fail
                // every waiter by dropping its sender, and poison the link.
                dead.store(true, Ordering::SeqCst);
                pending.lock().clear();
            });
        }
        let link = Arc::new(Link {
            stream: Mutex::new(stream),
            pending,
            dead,
        });
        *guard = Some(Arc::clone(&link));
        Ok(link)
    }

    /// Registers a waiter and sends one request on `link`.
    fn send(
        &self,
        link: &Link,
        req: &Request,
        channel_depth: usize,
    ) -> Result<(u64, Receiver<Response>), CdStoreError> {
        let req_id = self.next_req_id();
        let (tx, rx) = std::sync::mpsc::sync_channel(channel_depth);
        link.pending.lock().insert(req_id, tx);
        let (msg_type, payload) = encode_request(req_id, req);
        let write_result = {
            let mut stream = link.stream.lock();
            write_frame(&mut *stream, msg_type, &payload)
        };
        if let Err(e) = write_result {
            link.pending.lock().remove(&req_id);
            link.kill();
            return Err(remote_err(format!("send: {e}")));
        }
        Ok((req_id, rx))
    }

    /// One unary RPC with timeout, without retry.
    fn call_once(&self, req: &Request) -> Result<Response, CdStoreError> {
        let link = self.link()?;
        let (req_id, rx) = self.send(&link, req, 1)?;
        match rx.recv_timeout(self.config.request_timeout) {
            Ok(resp) => Ok(resp),
            Err(RecvTimeoutError::Timeout) => {
                link.pending.lock().remove(&req_id);
                link.kill();
                Err(remote_err(format!(
                    "request timed out after {:?}",
                    self.config.request_timeout
                )))
            }
            Err(RecvTimeoutError::Disconnected) => {
                Err(remote_err("connection lost awaiting response"))
            }
        }
    }

    /// One unary RPC with bounded retry on *transport* errors. Server-side
    /// errors come back as decoded [`CdStoreError`]s and are never retried.
    pub fn call(&self, req: &Request) -> Result<Response, CdStoreError> {
        let mut last = None;
        for _attempt in 0..=self.config.retries {
            match self.call_once(req) {
                Ok(Response::Err {
                    code,
                    needed,
                    available,
                    msg,
                }) => return Err(error_from_wire(code, needed, available, msg)),
                Ok(resp) => return Ok(resp),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| remote_err("retries exhausted")))
    }

    /// Streamed share download with windowed backpressure: consumes shares
    /// as the server sends them, granting credit in half-window steps so the
    /// server never has more than `stream_window` shares un-acknowledged.
    pub fn fetch_shares_streamed(
        &self,
        user: u64,
        fingerprints: &[Fingerprint],
    ) -> Result<Vec<Vec<u8>>, CdStoreError> {
        if fingerprints.is_empty() {
            return Ok(Vec::new());
        }
        let window = self.config.stream_window.max(2);
        let link = self.link()?;
        let (req_id, rx) = self.send(
            &link,
            &Request::StreamShares {
                user,
                fingerprints: fingerprints.to_vec(),
                window,
            },
            // The dispatch channel can hold a full window, so the reader
            // thread never blocks on a stream that respects its credit.
            window as usize + 1,
        )?;
        let mut shares: Vec<Vec<u8>> = Vec::with_capacity(fingerprints.len());
        let mut since_credit = 0u32;
        loop {
            let resp = match rx.recv_timeout(self.config.request_timeout) {
                Ok(resp) => resp,
                Err(RecvTimeoutError::Timeout) => {
                    link.pending.lock().remove(&req_id);
                    link.kill();
                    return Err(remote_err("stream timed out"));
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(remote_err("connection lost mid-stream"));
                }
            };
            match resp {
                Response::StreamShare { seq, data } => {
                    if seq != shares.len() as u64 {
                        link.pending.lock().remove(&req_id);
                        link.kill();
                        return Err(remote_err(format!(
                            "stream out of order: got seq {seq}, want {}",
                            shares.len()
                        )));
                    }
                    shares.push(data);
                    since_credit += 1;
                    // Grant in half-window steps: frequent enough that the
                    // server rarely stalls, coarse enough that credit frames
                    // stay a negligible fraction of the traffic.
                    if since_credit >= window / 2 && shares.len() < fingerprints.len() {
                        let (msg_type, payload) = encode_request(
                            req_id,
                            &Request::StreamCredit {
                                grant: since_credit,
                            },
                        );
                        let mut stream = link.stream.lock();
                        if let Err(e) = write_frame(&mut *stream, msg_type, &payload) {
                            drop(stream);
                            link.pending.lock().remove(&req_id);
                            link.kill();
                            return Err(remote_err(format!("send credit: {e}")));
                        }
                        since_credit = 0;
                    }
                }
                Response::StreamEnd { count } => {
                    if count != fingerprints.len() as u64 || shares.len() != fingerprints.len() {
                        return Err(remote_err(format!(
                            "stream ended early: {} of {} shares",
                            shares.len(),
                            fingerprints.len()
                        )));
                    }
                    return Ok(shares);
                }
                Response::Err {
                    code,
                    needed,
                    available,
                    msg,
                } => return Err(error_from_wire(code, needed, available, msg)),
                other => {
                    link.pending.lock().remove(&req_id);
                    link.kill();
                    return Err(remote_err(format!("unexpected stream response: {other:?}")));
                }
            }
        }
    }
}

/// Dispatches responses to waiting callers until the stream dies.
fn reader_loop(stream: TcpStream, pending: &Mutex<HashMap<u64, SyncSender<Response>>>) {
    let mut reader = FrameReader::new();
    let mut stream = stream;
    loop {
        match reader.poll(&mut stream) {
            Ok(Polled::Frame(msg_type, payload)) => {
                let Some((req_id, resp)) = decode_response(msg_type, &payload) else {
                    return; // protocol violation: poison the link
                };
                // Stream frames keep their waiter registered; everything
                // else (unary responses, StreamEnd, Err) completes it.
                let keep = matches!(resp, Response::StreamShare { .. });
                let mut map = pending.lock();
                if keep {
                    if let Some(tx) = map.get(&req_id) {
                        let tx = tx.clone();
                        drop(map);
                        // The channel holds a full credit window, so this
                        // send only blocks on a peer that overran its
                        // credit; the block then backpressures TCP itself.
                        let _ = tx.send(resp);
                    }
                } else if let Some(tx) = map.remove(&req_id) {
                    drop(map);
                    let _ = tx.send(resp);
                }
                // A response nobody waits for (timed-out caller) is dropped.
            }
            Ok(Polled::Idle) => continue, // no read timeout is set; defensive
            Ok(Polled::Closed) | Err(_) => return,
        }
    }
}

/// A remote CDStore server as a [`ServerTransport`]: the networked
/// counterpart of handing a [`cdstore_core::CdStoreServer`] to a client.
pub struct RemoteServer {
    cloud_index: usize,
    client: NetClient,
}

impl RemoteServer {
    /// Connects to the server at `addr` and learns its cloud index with an
    /// initial ping (which also validates protocol compatibility).
    pub fn connect(
        addr: impl ToSocketAddrs,
        config: NetClientConfig,
    ) -> Result<Self, CdStoreError> {
        let client = NetClient::new(addr, config)?;
        match client.call(&Request::Ping)? {
            Response::Pong { cloud_index } => Ok(RemoteServer {
                cloud_index: cloud_index as usize,
                client,
            }),
            other => Err(remote_err(format!("bad ping response: {other:?}"))),
        }
    }

    /// The underlying RPC client.
    pub fn client(&self) -> &NetClient {
        &self.client
    }
}

fn expect_unit(resp: Response) -> Result<(), CdStoreError> {
    match resp {
        Response::Unit => Ok(()),
        other => Err(remote_err(format!("expected unit response, got {other:?}"))),
    }
}

impl ServerTransport for RemoteServer {
    fn cloud_index(&self) -> usize {
        self.cloud_index
    }

    fn intra_user_query(
        &self,
        user: u64,
        fingerprints: &[Fingerprint],
    ) -> Result<Vec<bool>, CdStoreError> {
        match self.client.call(&Request::IntraUserQuery {
            user,
            fingerprints: fingerprints.to_vec(),
        })? {
            Response::Bools(bools) if bools.len() == fingerprints.len() => Ok(bools),
            other => Err(remote_err(format!("bad intra-user reply: {other:?}"))),
        }
    }

    fn store_shares(
        &self,
        user: u64,
        shares: &[(ShareMetadata, Vec<u8>)],
    ) -> Result<StoreReceipt, CdStoreError> {
        match self.client.call(&Request::StoreShares {
            user,
            shares: shares.to_vec(),
        })? {
            Response::Receipt(receipt) if receipt.verdicts.len() == shares.len() => Ok(receipt),
            other => Err(remote_err(format!("bad store reply: {other:?}"))),
        }
    }

    fn put_file(
        &self,
        user: u64,
        encoded_pathname: &[u8],
        recipe: &FileRecipe,
        uploaded: &[Fingerprint],
    ) -> Result<(), CdStoreError> {
        expect_unit(self.client.call(&Request::PutFile {
            user,
            encoded_pathname: encoded_pathname.to_vec(),
            recipe: recipe.clone(),
            uploaded: uploaded.to_vec(),
        })?)
    }

    fn release_uploads(&self, user: u64, fingerprints: &[Fingerprint]) -> Result<(), CdStoreError> {
        expect_unit(self.client.call(&Request::ReleaseUploads {
            user,
            fingerprints: fingerprints.to_vec(),
        })?)
    }

    fn has_file(&self, user: u64, encoded_pathname: &[u8]) -> Result<bool, CdStoreError> {
        match self.client.call(&Request::HasFile {
            user,
            encoded_pathname: encoded_pathname.to_vec(),
        })? {
            Response::Bool(b) => Ok(b),
            other => Err(remote_err(format!("bad has-file reply: {other:?}"))),
        }
    }

    fn get_recipe(&self, user: u64, encoded_pathname: &[u8]) -> Result<FileRecipe, CdStoreError> {
        match self.client.call(&Request::GetRecipe {
            user,
            encoded_pathname: encoded_pathname.to_vec(),
        })? {
            Response::Recipe(recipe) => Ok(recipe),
            other => Err(remote_err(format!("bad recipe reply: {other:?}"))),
        }
    }

    fn delete_file(&self, user: u64, encoded_pathname: &[u8]) -> Result<bool, CdStoreError> {
        match self.client.call(&Request::DeleteFile {
            user,
            encoded_pathname: encoded_pathname.to_vec(),
        })? {
            Response::Bool(b) => Ok(b),
            other => Err(remote_err(format!("bad delete reply: {other:?}"))),
        }
    }

    fn fetch_shares(
        &self,
        user: u64,
        fingerprints: &[Fingerprint],
    ) -> Result<Vec<Vec<u8>>, CdStoreError> {
        // Restores use the chunk-streamed path: bounded memory on both
        // sides, and the decode pipeline can start before the last share
        // arrives.
        self.client.fetch_shares_streamed(user, fingerprints)
    }

    fn flush(&self) -> Result<(), CdStoreError> {
        expect_unit(self.client.call(&Request::Flush)?)
    }

    fn gc_with(&self, config: GcConfig) -> Result<GcReport, CdStoreError> {
        match self.client.call(&Request::Gc {
            dead_ratio_bits: config.dead_ratio.to_bits(),
        })? {
            Response::Gc(report) => Ok(report),
            other => Err(remote_err(format!("bad gc reply: {other:?}"))),
        }
    }

    fn probe(&self) -> Result<ServerProbe, CdStoreError> {
        match self.client.call(&Request::Probe)? {
            Response::Probe(probe) => Ok(probe),
            other => Err(remote_err(format!("bad probe reply: {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connecting_to_a_dead_port_is_a_remote_error_not_a_hang() {
        // Bind-then-drop leaves a port with nothing listening.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let config = NetClientConfig {
            connect_timeout: Duration::from_millis(500),
            retries: 0,
            ..NetClientConfig::default()
        };
        match RemoteServer::connect(addr, config) {
            Err(CdStoreError::Remote(_)) => {}
            Err(other) => panic!("expected Remote error, got {other}"),
            Ok(_) => panic!("connected to a dead port"),
        }
    }
}
