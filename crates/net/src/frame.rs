//! The framed codec: `len | crc32 | version | msg_type | payload`.
//!
//! Every message on a CDStore connection travels in one frame:
//!
//! ```text
//! ┌────────────┬────────────┬─────────┬──────────┬────────────────┐
//! │ len: u32   │ crc: u32   │ ver: u8 │ type: u8 │ payload        │
//! │ LE         │ LE         │         │          │ len − 2 bytes  │
//! └────────────┴────────────┴─────────┴──────────┴────────────────┘
//! ```
//!
//! `len` counts everything after the two header words (version byte, type
//! byte, and payload), and `crc` is the IEEE CRC-32 of those same bytes —
//! the exact framing discipline of the metadata journal
//! ([`cdstore_storage::journal`]), whose `crc32` this module reuses. A
//! receiver therefore never acts on a corrupted or torn frame: anything
//! that fails the length sanity check, the version check, or the checksum
//! is rejected as [`FrameError::Corrupt`]/[`FrameError::Version`], and a
//! prefix of a frame simply waits for more bytes.

use std::io::{self, Read, Write};

use cdstore_storage::journal::crc32;

/// Version byte carried by every frame. Receivers reject frames with a
/// different version outright (see `docs/protocol.md` for the policy).
pub const PROTOCOL_VERSION: u8 = 1;

/// Upper bound on `len`. Shares are ≤ a few MB and batches are capped by the
/// client at [`cdstore_core::client::UPLOAD_BATCH_BYTES`] (4 MB), so a
/// well-formed frame is far below this; anything larger is a corrupt or
/// hostile length word and must not drive allocation.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Bytes preceding the versioned content: the length and checksum words.
pub const FRAME_HEADER_BYTES: usize = 8;

/// Decode-side failures of the codec.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed.
    Io(io::Error),
    /// A length or checksum violation: the bytes are not a valid frame.
    Corrupt(String),
    /// The peer speaks a different protocol version.
    Version(u8),
    /// The stream ended in the middle of a frame.
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
            FrameError::Corrupt(msg) => write!(f, "corrupt frame: {msg}"),
            FrameError::Version(v) => {
                write!(
                    f,
                    "protocol version mismatch: got {v}, want {PROTOCOL_VERSION}"
                )
            }
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Encodes one frame: header, version byte, message type, payload.
pub fn encode_frame(msg_type: u8, payload: &[u8]) -> Vec<u8> {
    let len = payload.len() + 2;
    assert!(len <= MAX_FRAME_BYTES, "frame exceeds MAX_FRAME_BYTES");
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + len);
    out.extend_from_slice(&(len as u32).to_le_bytes());
    // Checksum placeholder; filled in below once the content is in place.
    out.extend_from_slice(&[0u8; 4]);
    out.push(PROTOCOL_VERSION);
    out.push(msg_type);
    out.extend_from_slice(payload);
    let crc = crc32(&out[FRAME_HEADER_BYTES..]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Writes one frame to a stream as a single `write_all` (one syscall in the
/// common case, which is what makes batched RPCs cheap).
pub fn write_frame(w: &mut impl Write, msg_type: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(msg_type, payload))
}

/// Attempts to decode one frame from the front of `buf`.
///
/// * `Ok(Some((msg_type, payload, consumed)))` — a complete, checksum-valid
///   frame; the caller drains `consumed` bytes.
/// * `Ok(None)` — `buf` holds only a prefix of a frame; read more bytes.
/// * `Err(_)` — the bytes can never become a valid frame (bad length, bad
///   version, checksum failure); the connection must be dropped.
pub fn decode_frame(buf: &[u8]) -> Result<Option<(u8, Vec<u8>, usize)>, FrameError> {
    if buf.len() < FRAME_HEADER_BYTES {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    if len < 2 {
        return Err(FrameError::Corrupt(format!("length {len} below minimum 2")));
    }
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Corrupt(format!(
            "length {len} exceeds cap {MAX_FRAME_BYTES}"
        )));
    }
    if buf.len() < FRAME_HEADER_BYTES + len {
        return Ok(None);
    }
    let crc = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let content = &buf[FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len];
    if crc32(content) != crc {
        return Err(FrameError::Corrupt("checksum mismatch".into()));
    }
    if content[0] != PROTOCOL_VERSION {
        return Err(FrameError::Version(content[0]));
    }
    Ok(Some((
        content[1],
        content[2..].to_vec(),
        FRAME_HEADER_BYTES + len,
    )))
}

/// An accumulating frame reader over a byte stream.
///
/// Socket reads deliver arbitrary byte runs, and a read timeout can fire
/// with half a frame already buffered — so the reader owns an accumulation
/// buffer that survives `WouldBlock`/`TimedOut`, and [`FrameReader::poll`]
/// distinguishes "no complete frame yet" from "frame ready" without ever
/// losing bytes.
pub struct FrameReader {
    buf: Vec<u8>,
}

/// One [`FrameReader::poll`] outcome.
pub enum Polled {
    /// A complete frame: `(msg_type, payload)`.
    Frame(u8, Vec<u8>),
    /// The read timed out (or would block) before a frame completed;
    /// buffered bytes are retained for the next poll.
    Idle,
    /// The peer closed the stream cleanly (at a frame boundary).
    Closed,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        FrameReader { buf: Vec::new() }
    }

    /// Reads until one complete frame, a clean EOF, a timeout, or an error.
    ///
    /// Timeouts (`WouldBlock`/`TimedOut`) yield [`Polled::Idle`] so callers
    /// can check a shutdown flag and poll again; an EOF mid-frame is
    /// [`FrameError::Truncated`].
    pub fn poll(&mut self, r: &mut impl Read) -> Result<Polled, FrameError> {
        let mut chunk = [0u8; 64 * 1024];
        loop {
            if let Some((msg_type, payload, consumed)) = decode_frame(&self.buf)? {
                self.buf.drain(..consumed);
                return Ok(Polled::Frame(msg_type, payload));
            }
            match r.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(Polled::Closed)
                    } else {
                        Err(FrameError::Truncated)
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(Polled::Idle);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
    }
}

impl Default for FrameReader {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_the_codec() {
        let frame = encode_frame(0x42, b"hello shares");
        let (msg_type, payload, consumed) = decode_frame(&frame).unwrap().unwrap();
        assert_eq!(msg_type, 0x42);
        assert_eq!(payload, b"hello shares");
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn prefixes_are_incomplete_not_errors() {
        let frame = encode_frame(7, b"payload bytes");
        for cut in 0..frame.len() {
            assert!(
                matches!(decode_frame(&frame[..cut]), Ok(None)),
                "prefix of {cut} bytes must be incomplete"
            );
        }
    }

    #[test]
    fn corruption_is_rejected_by_the_checksum() {
        let frame = encode_frame(7, b"payload bytes");
        // Flip one bit anywhere in the content: the CRC (or the version /
        // length checks) must reject it.
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x01;
            if let Ok(Some((t, p, _))) = decode_frame(&bad) {
                assert!(
                    t != 7 || p != b"payload bytes",
                    "corruption at byte {i} decoded to the original"
                );
                unreachable!("a single bit flip cannot pass the CRC");
            }
        }
    }

    #[test]
    fn reader_reassembles_frames_from_dribbled_bytes() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&encode_frame(1, b"first"));
        wire.extend_from_slice(&encode_frame(2, b"second"));
        // Deliver one byte per read.
        struct Dribble<'a>(&'a [u8]);
        impl Read for Dribble<'_> {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() {
                    return Ok(0);
                }
                out[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let mut reader = FrameReader::new();
        let mut src = Dribble(&wire);
        match reader.poll(&mut src).unwrap() {
            Polled::Frame(t, p) => {
                assert_eq!((t, p.as_slice()), (1, &b"first"[..]));
            }
            _ => panic!("expected first frame"),
        }
        match reader.poll(&mut src).unwrap() {
            Polled::Frame(t, p) => {
                assert_eq!((t, p.as_slice()), (2, &b"second"[..]));
            }
            _ => panic!("expected second frame"),
        }
        assert!(matches!(reader.poll(&mut src).unwrap(), Polled::Closed));
    }

    #[test]
    fn eof_mid_frame_is_truncated() {
        let frame = encode_frame(9, b"will be cut");
        let cut = &frame[..frame.len() - 3];
        let mut reader = FrameReader::new();
        let mut src = io::Cursor::new(cut.to_vec());
        assert!(matches!(reader.poll(&mut src), Err(FrameError::Truncated)));
    }
}
