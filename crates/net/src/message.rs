//! Request/response messages for the full server API.
//!
//! Every payload begins with a `req_id: u64` envelope: the client assigns
//! request ids, pipelines many requests down one connection, and matches
//! responses back by id — responses may arrive in any order. Message types
//! occupy one byte: requests are `0x01..=0x7f`, responses have the top bit
//! set (`0x81..`). The full table lives in `docs/protocol.md`.

use cdstore_core::server::{GcReport, ServerStats};
use cdstore_core::transport::{ServerProbe, ShareVerdict, StoreReceipt};
use cdstore_core::{CdStoreError, FileRecipe, ShareMetadata};
use cdstore_crypto::Fingerprint;

use crate::wire::{WireReader, WireWriter};

/// A client → server request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness / version probe.
    Ping,
    /// Intra-user dedup query over a batch of client fingerprints.
    IntraUserQuery {
        /// Querying user.
        user: u64,
        /// Client-computed share fingerprints.
        fingerprints: Vec<Fingerprint>,
    },
    /// Batched share upload.
    StoreShares {
        /// Uploading user.
        user: u64,
        /// `(metadata, share bytes)` pairs.
        shares: Vec<(ShareMetadata, Vec<u8>)>,
    },
    /// Recipe put + reference settlement.
    PutFile {
        /// Owning user.
        user: u64,
        /// The user's encoded pathname share for this cloud.
        encoded_pathname: Vec<u8>,
        /// The per-cloud file recipe.
        recipe: FileRecipe,
        /// Fingerprints this upload physically sent (for ref settlement).
        uploaded: Vec<Fingerprint>,
    },
    /// Drops transient upload references of an abandoned upload.
    ReleaseUploads {
        /// Owning user.
        user: u64,
        /// Fingerprints whose per-upload references to drop.
        fingerprints: Vec<Fingerprint>,
    },
    /// Does the user have this file?
    HasFile {
        /// Owning user.
        user: u64,
        /// Encoded pathname share.
        encoded_pathname: Vec<u8>,
    },
    /// Fetches a file recipe.
    GetRecipe {
        /// Owning user.
        user: u64,
        /// Encoded pathname share.
        encoded_pathname: Vec<u8>,
    },
    /// Deletes a file.
    DeleteFile {
        /// Owning user.
        user: u64,
        /// Encoded pathname share.
        encoded_pathname: Vec<u8>,
    },
    /// Batched share download (one response frame).
    FetchShares {
        /// Owning user.
        user: u64,
        /// Client fingerprints from the recipe.
        fingerprints: Vec<Fingerprint>,
    },
    /// Chunk-streamed share download: the server answers with a sequence of
    /// `StreamShare` frames — at most `window` in flight beyond what
    /// `StreamCredit` has acknowledged — then `StreamEnd`.
    StreamShares {
        /// Owning user.
        user: u64,
        /// Client fingerprints from the recipe.
        fingerprints: Vec<Fingerprint>,
        /// Initial credit: shares the server may send before the first
        /// `StreamCredit`.
        window: u32,
    },
    /// Flow-control grant for an in-flight stream (same `req_id`).
    StreamCredit {
        /// Additional shares the server may send.
        grant: u32,
    },
    /// Seals open containers.
    Flush,
    /// Runs a garbage-collection pass.
    Gc {
        /// `GcConfig::dead_ratio`, IEEE-754 bits (floats never travel raw).
        dead_ratio_bits: u64,
    },
    /// Snapshots the server's counters.
    Probe,
}

/// A server → client response. Except for the stream frames, exactly one
/// response answers each request, carrying the request's id.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ping answer.
    Pong {
        /// The cloud index the server fronts.
        cloud_index: u32,
    },
    /// Answer to `IntraUserQuery`.
    Bools(Vec<bool>),
    /// Answer to `StoreShares`.
    Receipt(StoreReceipt),
    /// Success carrying no data (`PutFile`, `ReleaseUploads`, `Flush`).
    Unit,
    /// Answer to `HasFile` / `DeleteFile`.
    Bool(bool),
    /// Answer to `GetRecipe`.
    Recipe(FileRecipe),
    /// Answer to `FetchShares`.
    Shares(Vec<Vec<u8>>),
    /// One streamed share (`StreamShares` only; followed by more stream
    /// frames or `StreamEnd`).
    StreamShare {
        /// Position of this share in the requested fingerprint order.
        seq: u64,
        /// Share bytes.
        data: Vec<u8>,
    },
    /// Terminates a stream.
    StreamEnd {
        /// Total shares streamed (must equal the request's fingerprints).
        count: u64,
    },
    /// Answer to `Gc`.
    Gc(GcReport),
    /// Answer to `Probe`.
    Probe(ServerProbe),
    /// The request failed server-side; decodes back into a
    /// [`CdStoreError`].
    Err {
        /// Error discriminant (see `error_to_wire`).
        code: u8,
        /// `NotEnoughClouds::needed` (0 otherwise).
        needed: u64,
        /// `NotEnoughClouds::available` (0 otherwise).
        available: u64,
        /// Human-readable detail / the error's string payload.
        msg: String,
    },
}

// Request message types (0x01..=0x7f).
const MT_PING: u8 = 0x01;
const MT_INTRA_QUERY: u8 = 0x02;
const MT_STORE_SHARES: u8 = 0x03;
const MT_PUT_FILE: u8 = 0x04;
const MT_RELEASE_UPLOADS: u8 = 0x05;
const MT_HAS_FILE: u8 = 0x06;
const MT_GET_RECIPE: u8 = 0x07;
const MT_DELETE_FILE: u8 = 0x08;
const MT_FETCH_SHARES: u8 = 0x09;
const MT_STREAM_SHARES: u8 = 0x0a;
const MT_STREAM_CREDIT: u8 = 0x0b;
const MT_FLUSH: u8 = 0x0c;
const MT_GC: u8 = 0x0d;
const MT_PROBE: u8 = 0x0e;

// Response message types (top bit set).
const MT_PONG: u8 = 0x81;
const MT_BOOLS: u8 = 0x82;
const MT_RECEIPT: u8 = 0x83;
const MT_UNIT: u8 = 0x84;
const MT_BOOL: u8 = 0x85;
const MT_RECIPE: u8 = 0x86;
const MT_SHARES: u8 = 0x87;
const MT_STREAM_SHARE: u8 = 0x88;
const MT_STREAM_END: u8 = 0x89;
const MT_GC_REPORT: u8 = 0x8a;
const MT_PROBE_REPORT: u8 = 0x8b;
const MT_ERR: u8 = 0x8c;

fn write_fingerprints(w: &mut WireWriter, fps: &[Fingerprint]) {
    w.u32(fps.len() as u32);
    for fp in fps {
        w.fingerprint(fp);
    }
}

fn read_fingerprints(r: &mut WireReader<'_>) -> Option<Vec<Fingerprint>> {
    let n = r.u32()? as usize;
    // Cap pre-allocation by what the frame could physically carry.
    let mut fps = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        fps.push(r.fingerprint()?);
    }
    Some(fps)
}

fn write_share_metadata(w: &mut WireWriter, m: &ShareMetadata) {
    w.fingerprint(&m.fingerprint);
    w.u32(m.share_size);
    w.u64(m.secret_seq);
    w.u32(m.secret_size);
}

fn read_share_metadata(r: &mut WireReader<'_>) -> Option<ShareMetadata> {
    Some(ShareMetadata {
        fingerprint: r.fingerprint()?,
        share_size: r.u32()?,
        secret_seq: r.u64()?,
        secret_size: r.u32()?,
    })
}

/// Encodes one request as `(msg_type, payload)`; the payload leads with the
/// pipelining envelope (`req_id`).
pub fn encode_request(req_id: u64, req: &Request) -> (u8, Vec<u8>) {
    let mut w = WireWriter::new();
    w.u64(req_id);
    let msg_type = match req {
        Request::Ping => MT_PING,
        Request::IntraUserQuery { user, fingerprints } => {
            w.u64(*user);
            write_fingerprints(&mut w, fingerprints);
            MT_INTRA_QUERY
        }
        Request::StoreShares { user, shares } => {
            w.u64(*user);
            w.u32(shares.len() as u32);
            for (meta, data) in shares {
                write_share_metadata(&mut w, meta);
                w.bytes(data);
            }
            MT_STORE_SHARES
        }
        Request::PutFile {
            user,
            encoded_pathname,
            recipe,
            uploaded,
        } => {
            w.u64(*user);
            w.bytes(encoded_pathname);
            w.bytes(&recipe.to_bytes());
            write_fingerprints(&mut w, uploaded);
            MT_PUT_FILE
        }
        Request::ReleaseUploads { user, fingerprints } => {
            w.u64(*user);
            write_fingerprints(&mut w, fingerprints);
            MT_RELEASE_UPLOADS
        }
        Request::HasFile {
            user,
            encoded_pathname,
        } => {
            w.u64(*user);
            w.bytes(encoded_pathname);
            MT_HAS_FILE
        }
        Request::GetRecipe {
            user,
            encoded_pathname,
        } => {
            w.u64(*user);
            w.bytes(encoded_pathname);
            MT_GET_RECIPE
        }
        Request::DeleteFile {
            user,
            encoded_pathname,
        } => {
            w.u64(*user);
            w.bytes(encoded_pathname);
            MT_DELETE_FILE
        }
        Request::FetchShares { user, fingerprints } => {
            w.u64(*user);
            write_fingerprints(&mut w, fingerprints);
            MT_FETCH_SHARES
        }
        Request::StreamShares {
            user,
            fingerprints,
            window,
        } => {
            w.u64(*user);
            write_fingerprints(&mut w, fingerprints);
            w.u32(*window);
            MT_STREAM_SHARES
        }
        Request::StreamCredit { grant } => {
            w.u32(*grant);
            MT_STREAM_CREDIT
        }
        Request::Flush => MT_FLUSH,
        Request::Gc { dead_ratio_bits } => {
            w.u64(*dead_ratio_bits);
            MT_GC
        }
        Request::Probe => MT_PROBE,
    };
    (msg_type, w.finish())
}

/// Decodes a request payload; `None` on any malformation (wrong type byte,
/// short payload, trailing garbage).
pub fn decode_request(msg_type: u8, payload: &[u8]) -> Option<(u64, Request)> {
    let mut r = WireReader::new(payload);
    let req_id = r.u64()?;
    let req = match msg_type {
        MT_PING => Request::Ping,
        MT_INTRA_QUERY => Request::IntraUserQuery {
            user: r.u64()?,
            fingerprints: read_fingerprints(&mut r)?,
        },
        MT_STORE_SHARES => {
            let user = r.u64()?;
            let n = r.u32()? as usize;
            let mut shares = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                let meta = read_share_metadata(&mut r)?;
                let data = r.bytes()?;
                shares.push((meta, data));
            }
            Request::StoreShares { user, shares }
        }
        MT_PUT_FILE => Request::PutFile {
            user: r.u64()?,
            encoded_pathname: r.bytes()?,
            recipe: FileRecipe::from_bytes(&r.bytes()?)?,
            uploaded: read_fingerprints(&mut r)?,
        },
        MT_RELEASE_UPLOADS => Request::ReleaseUploads {
            user: r.u64()?,
            fingerprints: read_fingerprints(&mut r)?,
        },
        MT_HAS_FILE => Request::HasFile {
            user: r.u64()?,
            encoded_pathname: r.bytes()?,
        },
        MT_GET_RECIPE => Request::GetRecipe {
            user: r.u64()?,
            encoded_pathname: r.bytes()?,
        },
        MT_DELETE_FILE => Request::DeleteFile {
            user: r.u64()?,
            encoded_pathname: r.bytes()?,
        },
        MT_FETCH_SHARES => Request::FetchShares {
            user: r.u64()?,
            fingerprints: read_fingerprints(&mut r)?,
        },
        MT_STREAM_SHARES => Request::StreamShares {
            user: r.u64()?,
            fingerprints: read_fingerprints(&mut r)?,
            window: r.u32()?,
        },
        MT_STREAM_CREDIT => Request::StreamCredit { grant: r.u32()? },
        MT_FLUSH => Request::Flush,
        MT_GC => Request::Gc {
            dead_ratio_bits: r.u64()?,
        },
        MT_PROBE => Request::Probe,
        _ => return None,
    };
    r.is_empty().then_some((req_id, req))
}

fn write_server_stats(w: &mut WireWriter, s: &ServerStats) {
    w.u64(s.received_share_bytes);
    w.u64(s.physical_share_bytes);
    w.u64(s.shares_received);
    w.u64(s.inter_user_duplicates);
    w.u64(s.recipe_bytes);
    w.u64(s.served_share_bytes);
}

fn read_server_stats(r: &mut WireReader<'_>) -> Option<ServerStats> {
    Some(ServerStats {
        received_share_bytes: r.u64()?,
        physical_share_bytes: r.u64()?,
        shares_received: r.u64()?,
        inter_user_duplicates: r.u64()?,
        recipe_bytes: r.u64()?,
        served_share_bytes: r.u64()?,
    })
}

/// Encodes one response as `(msg_type, payload)`, same envelope as requests.
pub fn encode_response(req_id: u64, resp: &Response) -> (u8, Vec<u8>) {
    let mut w = WireWriter::new();
    w.u64(req_id);
    let msg_type = match resp {
        Response::Pong { cloud_index } => {
            w.u32(*cloud_index);
            MT_PONG
        }
        Response::Bools(bools) => {
            w.u32(bools.len() as u32);
            for &b in bools {
                w.bool(b);
            }
            MT_BOOLS
        }
        Response::Receipt(receipt) => {
            w.u64(receipt.new_bytes);
            w.u32(receipt.verdicts.len() as u32);
            for v in &receipt.verdicts {
                w.u8(match v {
                    ShareVerdict::Stored => 0,
                    ShareVerdict::DuplicateInterUser => 1,
                    ShareVerdict::DuplicateIntraUser => 2,
                });
            }
            MT_RECEIPT
        }
        Response::Unit => MT_UNIT,
        Response::Bool(b) => {
            w.bool(*b);
            MT_BOOL
        }
        Response::Recipe(recipe) => {
            w.bytes(&recipe.to_bytes());
            MT_RECIPE
        }
        Response::Shares(shares) => {
            w.u32(shares.len() as u32);
            for s in shares {
                w.bytes(s);
            }
            MT_SHARES
        }
        Response::StreamShare { seq, data } => {
            w.u64(*seq);
            w.bytes(data);
            MT_STREAM_SHARE
        }
        Response::StreamEnd { count } => {
            w.u64(*count);
            MT_STREAM_END
        }
        Response::Gc(report) => {
            w.u64(report.containers_deleted);
            w.u64(report.containers_compacted);
            w.u64(report.shares_rewritten);
            w.u64(report.reclaimed_bytes);
            w.u64(report.rewritten_bytes);
            MT_GC_REPORT
        }
        Response::Probe(probe) => {
            write_server_stats(&mut w, &probe.stats);
            w.u64(probe.backend_bytes);
            w.u64(probe.index_bytes);
            w.u64(probe.unique_shares);
            w.u64(probe.live_share_bytes);
            MT_PROBE_REPORT
        }
        Response::Err {
            code,
            needed,
            available,
            msg,
        } => {
            w.u8(*code);
            w.u64(*needed);
            w.u64(*available);
            w.bytes(msg.as_bytes());
            MT_ERR
        }
    };
    (msg_type, w.finish())
}

/// Decodes a response payload; `None` on any malformation.
pub fn decode_response(msg_type: u8, payload: &[u8]) -> Option<(u64, Response)> {
    let mut r = WireReader::new(payload);
    let req_id = r.u64()?;
    let resp = match msg_type {
        MT_PONG => Response::Pong {
            cloud_index: r.u32()?,
        },
        MT_BOOLS => {
            let n = r.u32()? as usize;
            let mut bools = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                bools.push(r.bool()?);
            }
            Response::Bools(bools)
        }
        MT_RECEIPT => {
            let new_bytes = r.u64()?;
            let n = r.u32()? as usize;
            let mut verdicts = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                verdicts.push(match r.u8()? {
                    0 => ShareVerdict::Stored,
                    1 => ShareVerdict::DuplicateInterUser,
                    2 => ShareVerdict::DuplicateIntraUser,
                    _ => return None,
                });
            }
            Response::Receipt(StoreReceipt {
                new_bytes,
                verdicts,
            })
        }
        MT_UNIT => Response::Unit,
        MT_BOOL => Response::Bool(r.bool()?),
        MT_RECIPE => Response::Recipe(FileRecipe::from_bytes(&r.bytes()?)?),
        MT_SHARES => {
            let n = r.u32()? as usize;
            let mut shares = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                shares.push(r.bytes()?);
            }
            Response::Shares(shares)
        }
        MT_STREAM_SHARE => Response::StreamShare {
            seq: r.u64()?,
            data: r.bytes()?,
        },
        MT_STREAM_END => Response::StreamEnd { count: r.u64()? },
        MT_GC_REPORT => Response::Gc(GcReport {
            containers_deleted: r.u64()?,
            containers_compacted: r.u64()?,
            shares_rewritten: r.u64()?,
            reclaimed_bytes: r.u64()?,
            rewritten_bytes: r.u64()?,
        }),
        MT_PROBE_REPORT => Response::Probe(ServerProbe {
            stats: read_server_stats(&mut r)?,
            backend_bytes: r.u64()?,
            index_bytes: r.u64()?,
            unique_shares: r.u64()?,
            live_share_bytes: r.u64()?,
        }),
        MT_ERR => Response::Err {
            code: r.u8()?,
            needed: r.u64()?,
            available: r.u64()?,
            msg: String::from_utf8(r.bytes()?).ok()?,
        },
        _ => return None,
    };
    r.is_empty().then_some((req_id, resp))
}

/// Maps a server-side error into the wire `Err` response.
///
/// The structured variants clients branch on (`NotEnoughClouds`,
/// `FileNotFound`, `MissingShare`, …) survive the crossing exactly; the
/// server-internal ones (`Sharing`, `Storage`, `Cloud`) arrive as
/// [`CdStoreError::Remote`] with the rendered message — their payloads are
/// meaningless outside the server process.
pub fn error_to_wire(e: &CdStoreError) -> Response {
    let (code, needed, available, msg) = match e {
        CdStoreError::InvalidConfig(m) => (1, 0, 0, m.clone()),
        CdStoreError::Sharing(inner) => (2, 0, 0, inner.to_string()),
        CdStoreError::Storage(inner) => (3, 0, 0, inner.to_string()),
        CdStoreError::Cloud(inner) => (4, 0, 0, inner.to_string()),
        CdStoreError::NotEnoughClouds { needed, available } => {
            (5, *needed as u64, *available as u64, String::new())
        }
        CdStoreError::FileNotFound(m) => (6, 0, 0, m.clone()),
        CdStoreError::MissingShare(m) => (7, 0, 0, m.clone()),
        CdStoreError::IntegrityFailure(m) => (8, 0, 0, m.clone()),
        CdStoreError::InconsistentMetadata(m) => (9, 0, 0, m.clone()),
        CdStoreError::Remote(m) => (10, 0, 0, m.clone()),
        // Server-side operations take no Read/Write streams; an Io error
        // crossing the wire is as server-internal as Sharing/Storage above.
        CdStoreError::Io(m) => (11, 0, 0, m.clone()),
    };
    Response::Err {
        code,
        needed,
        available,
        msg,
    }
}

/// Reconstructs the client-side error from a wire `Err` response.
pub fn error_from_wire(code: u8, needed: u64, available: u64, msg: String) -> CdStoreError {
    match code {
        1 => CdStoreError::InvalidConfig(msg),
        5 => CdStoreError::NotEnoughClouds {
            needed: needed as usize,
            available: available as usize,
        },
        6 => CdStoreError::FileNotFound(msg),
        7 => CdStoreError::MissingShare(msg),
        8 => CdStoreError::IntegrityFailure(msg),
        9 => CdStoreError::InconsistentMetadata(msg),
        // 2/3/4 (sharing/storage/cloud internals), 10 (already remote),
        // 11 (server-side I/O), and any future code the client does not know.
        _ => CdStoreError::Remote(msg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let fp = Fingerprint::of(b"share");
        let reqs = vec![
            Request::Ping,
            Request::IntraUserQuery {
                user: 9,
                fingerprints: vec![fp],
            },
            Request::StoreShares {
                user: 9,
                shares: vec![(
                    ShareMetadata {
                        fingerprint: fp,
                        share_size: 5,
                        secret_seq: 3,
                        secret_size: 15,
                    },
                    b"share".to_vec(),
                )],
            },
            Request::PutFile {
                user: 9,
                encoded_pathname: vec![1, 2, 3],
                recipe: FileRecipe {
                    file_size: 15,
                    entries: vec![],
                },
                uploaded: vec![fp],
            },
            Request::StreamShares {
                user: 9,
                fingerprints: vec![fp, fp],
                window: 32,
            },
            Request::StreamCredit { grant: 16 },
            Request::Gc {
                dead_ratio_bits: 0.5f64.to_bits(),
            },
            Request::Probe,
        ];
        for req in reqs {
            let (mt, payload) = encode_request(77, &req);
            let (req_id, back) = decode_request(mt, &payload).unwrap();
            assert_eq!(req_id, 77);
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = vec![
            Response::Pong { cloud_index: 2 },
            Response::Bools(vec![true, false, true]),
            Response::Receipt(StoreReceipt {
                new_bytes: 99,
                verdicts: vec![
                    ShareVerdict::Stored,
                    ShareVerdict::DuplicateInterUser,
                    ShareVerdict::DuplicateIntraUser,
                ],
            }),
            Response::Unit,
            Response::Bool(true),
            Response::Shares(vec![b"one".to_vec(), b"two".to_vec()]),
            Response::StreamShare {
                seq: 4,
                data: b"streamed".to_vec(),
            },
            Response::StreamEnd { count: 5 },
            Response::Gc(GcReport {
                containers_deleted: 1,
                containers_compacted: 2,
                shares_rewritten: 3,
                reclaimed_bytes: 4,
                rewritten_bytes: 5,
            }),
            Response::Probe(ServerProbe::default()),
            error_to_wire(&CdStoreError::FileNotFound("/x".into())),
        ];
        for resp in resps {
            let (mt, payload) = encode_response(5, &resp);
            let (req_id, back) = decode_response(mt, &payload).unwrap();
            assert_eq!(req_id, 5);
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn structured_errors_survive_the_wire() {
        let e = CdStoreError::NotEnoughClouds {
            needed: 3,
            available: 1,
        };
        if let Response::Err {
            code,
            needed,
            available,
            msg,
        } = error_to_wire(&e)
        {
            let back = error_from_wire(code, needed, available, msg);
            assert!(matches!(
                back,
                CdStoreError::NotEnoughClouds {
                    needed: 3,
                    available: 1
                }
            ));
        } else {
            panic!("expected Err response");
        }
        let e = CdStoreError::Storage(cdstore_storage::StorageError::NotFound("c1".into()));
        if let Response::Err { code, msg, .. } = error_to_wire(&e) {
            assert!(matches!(
                error_from_wire(code, 0, 0, msg),
                CdStoreError::Remote(_)
            ));
        } else {
            panic!("expected Err response");
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let (mt, mut payload) = encode_request(1, &Request::Ping);
        payload.push(0);
        assert!(decode_request(mt, &payload).is_none());
        assert!(decode_request(0x7f, &[0; 8]).is_none(), "unknown msg type");
    }
}
