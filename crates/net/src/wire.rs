//! Primitive value encoding used inside frame payloads.
//!
//! Fixed-width integers travel little-endian (matching the frame header);
//! variable-length byte strings are `u32` length-prefixed. The reader is
//! strict: running off the end of the payload or reading an out-of-range
//! discriminant is a decode failure, never a panic — a hostile peer can at
//! worst get its connection dropped.

use cdstore_crypto::Fingerprint;

/// Serialises primitives into a payload buffer.
#[derive(Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        WireWriter { buf: Vec::new() }
    }

    /// Consumes the writer, yielding the payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a fingerprint (fixed 32 bytes, no length prefix).
    pub fn fingerprint(&mut self, fp: &Fingerprint) {
        self.buf.extend_from_slice(fp.as_bytes());
    }
}

/// Deserialises primitives from a payload buffer.
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Wraps a payload.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf }
    }

    /// Whether every byte has been consumed (trailing garbage is a protocol
    /// violation the message decoders check for).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Some(head)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a `bool`; any byte other than 0/1 is a decode failure.
    pub fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<Vec<u8>> {
        let len = self.u32()? as usize;
        self.take(len).map(|b| b.to_vec())
    }

    /// Reads a fingerprint.
    pub fn fingerprint(&mut self) -> Option<Fingerprint> {
        let raw: [u8; 32] = self.take(Fingerprint::SIZE)?.try_into().ok()?;
        Some(Fingerprint::from_bytes(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.bool(true);
        w.bytes(b"variable");
        w.fingerprint(&Fingerprint::of(b"fp"));
        let buf = w.finish();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xdead_beef));
        assert_eq!(r.u64(), Some(u64::MAX - 3));
        assert_eq!(r.bool(), Some(true));
        assert_eq!(r.bytes().as_deref(), Some(&b"variable"[..]));
        assert_eq!(r.fingerprint(), Some(Fingerprint::of(b"fp")));
        assert!(r.is_empty());
    }

    #[test]
    fn short_reads_fail_cleanly() {
        let mut r = WireReader::new(&[1, 2, 3]);
        assert_eq!(r.u64(), None);
        let mut r = WireReader::new(&[255, 255, 255, 255, 0]);
        assert_eq!(r.bytes(), None, "length prefix beyond buffer");
        let mut r = WireReader::new(&[2]);
        assert_eq!(r.bool(), None, "out-of-range bool");
    }
}
