//! [`LoopbackCluster`]: `n` networked servers on loopback, in one process.
//!
//! The benches and many tests need a real TCP boundary (serialization,
//! syscalls, flow control) without the cost of spawning processes; this
//! helper binds `n` [`NetServer`]s on OS-assigned loopback ports and hands
//! out [`RemoteServer`] transports to them. For genuinely separate server
//! *processes*, see the `cdstore-serve` binary and `tests/net_e2e.rs`.

use std::net::SocketAddr;
use std::sync::Arc;

use cdstore_core::{CdStore, CdStoreConfig, CdStoreError, CdStoreServer, RecoveryReport};

use crate::client::{NetClientConfig, RemoteServer};
use crate::server::NetServer;

/// `n` wire-protocol servers on loopback ports, shut down on drop.
pub struct LoopbackCluster {
    servers: Vec<NetServer>,
    cores: Vec<Arc<CdStoreServer>>,
    addrs: Vec<SocketAddr>,
}

impl LoopbackCluster {
    /// Spawns `n` servers (cloud indices `0..n`) over in-memory backends.
    pub fn spawn(n: usize) -> std::io::Result<LoopbackCluster> {
        Self::spawn_with_servers((0..n).map(|i| Arc::new(CdStoreServer::new(i))).collect())
    }

    /// Spawns one wire-protocol server per prebuilt [`CdStoreServer`] —
    /// the chaos harness uses this to run networked deployments over
    /// fault-injecting backends it keeps handles to.
    pub fn spawn_with_servers(cores: Vec<Arc<CdStoreServer>>) -> std::io::Result<LoopbackCluster> {
        let mut servers = Vec::with_capacity(cores.len());
        let mut addrs = Vec::with_capacity(cores.len());
        for core in &cores {
            let server = NetServer::bind(Arc::clone(core), "127.0.0.1:0")?;
            addrs.push(server.local_addr());
            servers.push(server);
        }
        Ok(LoopbackCluster {
            servers,
            cores,
            addrs,
        })
    }

    /// Crash-restarts server `i`: tears the wire server down (in-flight
    /// connections drop, clients see transport errors), rebuilds the
    /// CDStore server from its backend through the full recovery path, and
    /// rebinds on the same address so existing transports reconnect.
    ///
    /// Unlike `CdStore::restart_server`, nothing is flushed first — open
    /// containers are torn away exactly as a process crash would, which is
    /// the shape the chaos suite wants.
    pub fn restart(&mut self, i: usize) -> Result<RecoveryReport, CdStoreError> {
        self.servers[i].shutdown();
        let backend = self.cores[i].backend();
        let (core, report) = CdStoreServer::open(i, backend)?;
        let core = Arc::new(core);
        self.cores[i] = Arc::clone(&core);
        // Rebinding the just-freed port can transiently fail while the old
        // listener's connections drain; retry briefly before giving up.
        let mut bound = NetServer::bind(Arc::clone(&core), self.addrs[i]);
        for _ in 0..40 {
            if bound.is_ok() {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
            bound = NetServer::bind(Arc::clone(&core), self.addrs[i]);
        }
        self.servers[i] = bound.map_err(|e| CdStoreError::Remote(e.to_string()))?;
        Ok(report)
    }

    /// The in-process server behind wire server `i` (for state assertions).
    pub fn core(&self, i: usize) -> Arc<CdStoreServer> {
        Arc::clone(&self.cores[i])
    }

    /// The listening addresses, indexed by cloud.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Connects one transport per server.
    pub fn transports(&self, config: NetClientConfig) -> Result<Vec<RemoteServer>, CdStoreError> {
        self.addrs
            .iter()
            .map(|addr| RemoteServer::connect(addr, config.clone()))
            .collect()
    }

    /// Builds a [`CdStore`] deployment running entirely over the wire.
    pub fn store(
        &self,
        config: CdStoreConfig,
        client_config: NetClientConfig,
    ) -> Result<CdStore<RemoteServer>, CdStoreError> {
        CdStore::from_transports(config, self.transports(client_config)?)
    }

    /// Shuts every server down (also happens on drop).
    pub fn shutdown(&mut self) {
        for server in &mut self.servers {
            server.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backup_and_restore_run_over_real_sockets() {
        let cluster = LoopbackCluster::spawn(4).unwrap();
        let store = cluster
            .store(
                CdStoreConfig::new(4, 3).unwrap(),
                NetClientConfig::default(),
            )
            .unwrap();
        let data: Vec<u8> = (0..120_000u32)
            .map(|i| ((i / 600) as u8).wrapping_mul(23).wrapping_add(5))
            .collect();
        store.backup(1, "/wire/backup.tar", &data).unwrap();
        assert_eq!(store.restore(1, "/wire/backup.tar").unwrap(), data);
        // Dedup counters crossed the wire too.
        let stats = store.stats();
        assert_eq!(stats.servers.len(), 4);
        assert!(stats.servers.iter().all(|s| s.received_share_bytes > 0));
        // k-of-n still holds with a cloud marked unavailable client-side.
        store.fail_cloud(3);
        assert_eq!(store.restore(1, "/wire/backup.tar").unwrap(), data);
    }

    #[test]
    fn crash_restart_recovers_a_server_on_the_same_address() {
        let mut cluster = LoopbackCluster::spawn(4).unwrap();
        let store = cluster
            .store(
                CdStoreConfig::new(4, 3).unwrap(),
                NetClientConfig::default(),
            )
            .unwrap();
        let data: Vec<u8> = (0..90_000u32)
            .map(|i| ((i / 512) as u8).wrapping_mul(29).wrapping_add(3))
            .collect();
        store.backup(2, "/wire/crash.tar", &data).unwrap();
        // Flush so the backup survives the crash-style restart (an unflushed
        // tail torn away mid-upload is exercised by the chaos suite).
        store.flush().unwrap();
        let addr_before = cluster.addrs()[1];
        cluster.restart(1).unwrap();
        assert_eq!(cluster.addrs()[1], addr_before);
        // Existing transports reconnect and the restored data is byte-exact.
        assert_eq!(store.restore(2, "/wire/crash.tar").unwrap(), data);
        assert!(cluster.core(1).unique_shares() > 0);
    }
}
