//! [`LoopbackCluster`]: `n` networked servers on loopback, in one process.
//!
//! The benches and many tests need a real TCP boundary (serialization,
//! syscalls, flow control) without the cost of spawning processes; this
//! helper binds `n` [`NetServer`]s on OS-assigned loopback ports and hands
//! out [`RemoteServer`] transports to them. For genuinely separate server
//! *processes*, see the `cdstore-serve` binary and `tests/net_e2e.rs`.

use std::net::SocketAddr;
use std::sync::Arc;

use cdstore_core::{CdStore, CdStoreConfig, CdStoreError, CdStoreServer};

use crate::client::{NetClientConfig, RemoteServer};
use crate::server::NetServer;

/// `n` wire-protocol servers on loopback ports, shut down on drop.
pub struct LoopbackCluster {
    servers: Vec<NetServer>,
    addrs: Vec<SocketAddr>,
}

impl LoopbackCluster {
    /// Spawns `n` servers (cloud indices `0..n`) over in-memory backends.
    pub fn spawn(n: usize) -> std::io::Result<LoopbackCluster> {
        let mut servers = Vec::with_capacity(n);
        let mut addrs = Vec::with_capacity(n);
        for i in 0..n {
            let server = NetServer::bind(Arc::new(CdStoreServer::new(i)), "127.0.0.1:0")?;
            addrs.push(server.local_addr());
            servers.push(server);
        }
        Ok(LoopbackCluster { servers, addrs })
    }

    /// The listening addresses, indexed by cloud.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Connects one transport per server.
    pub fn transports(&self, config: NetClientConfig) -> Result<Vec<RemoteServer>, CdStoreError> {
        self.addrs
            .iter()
            .map(|addr| RemoteServer::connect(addr, config.clone()))
            .collect()
    }

    /// Builds a [`CdStore`] deployment running entirely over the wire.
    pub fn store(
        &self,
        config: CdStoreConfig,
        client_config: NetClientConfig,
    ) -> Result<CdStore<RemoteServer>, CdStoreError> {
        CdStore::from_transports(config, self.transports(client_config)?)
    }

    /// Shuts every server down (also happens on drop).
    pub fn shutdown(&mut self) {
        for server in &mut self.servers {
            server.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backup_and_restore_run_over_real_sockets() {
        let cluster = LoopbackCluster::spawn(4).unwrap();
        let store = cluster
            .store(
                CdStoreConfig::new(4, 3).unwrap(),
                NetClientConfig::default(),
            )
            .unwrap();
        let data: Vec<u8> = (0..120_000u32)
            .map(|i| ((i / 600) as u8).wrapping_mul(23).wrapping_add(5))
            .collect();
        store.backup(1, "/wire/backup.tar", &data).unwrap();
        assert_eq!(store.restore(1, "/wire/backup.tar").unwrap(), data);
        // Dedup counters crossed the wire too.
        let stats = store.stats();
        assert_eq!(stats.servers.len(), 4);
        assert!(stats.servers.iter().all(|s| s.received_share_bytes > 0));
        // k-of-n still holds with a cloud marked unavailable client-side.
        store.fail_cloud(3);
        assert_eq!(store.restore(1, "/wire/backup.tar").unwrap(), data);
    }
}
