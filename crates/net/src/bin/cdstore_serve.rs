//! `cdstore-serve`: one CDStore server as a standalone process.
//!
//! ```text
//! cdstore-serve --cloud 0 [--addr 127.0.0.1:0] [--dir /var/lib/cdstore0]
//! ```
//!
//! Prints `LISTENING <addr>` on stdout once the listener is up (the e2e
//! harness parses this to learn OS-assigned ports), then serves until stdin
//! reaches EOF — so a child process dies with its parent instead of
//! lingering as an orphan.

use std::io::Read;
use std::process::exit;
use std::sync::Arc;

use cdstore_core::CdStoreServer;
use cdstore_net::NetServer;
use cdstore_storage::{DirBackend, StorageBackend};

fn usage() -> ! {
    eprintln!(
        "usage: cdstore-serve --cloud <index> [--addr <host:port>] [--dir <path>]\n\
         \n\
         --cloud <index>    cloud index this server fronts (required)\n\
         --addr <host:port> listen address (default 127.0.0.1:0)\n\
         --dir <path>       durable storage directory (default: in-memory)"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cloud: Option<usize> = None;
    let mut addr = String::from("127.0.0.1:0");
    let mut dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cloud" => cloud = it.next().and_then(|v| v.parse().ok()),
            "--addr" => addr = it.next().cloned().unwrap_or_else(|| usage()),
            "--dir" => dir = it.next().cloned(),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let Some(cloud) = cloud else { usage() };

    let server = match &dir {
        Some(path) => {
            let backend = match DirBackend::new(path) {
                Ok(b) => Arc::new(b) as Arc<dyn StorageBackend>,
                Err(e) => {
                    eprintln!("cdstore-serve: cannot open {path}: {e}");
                    exit(1);
                }
            };
            // Recover whatever a previous incarnation left behind.
            match CdStoreServer::open(cloud, backend) {
                Ok((server, report)) => {
                    eprintln!(
                        "cdstore-serve: cloud {cloud} recovered \
                         (checkpoint: {}, replayed: {})",
                        report.used_checkpoint, report.records_replayed
                    );
                    server
                }
                Err(e) => {
                    eprintln!("cdstore-serve: recovery failed: {e}");
                    exit(1);
                }
            }
        }
        None => CdStoreServer::new(cloud),
    };

    let mut net = match NetServer::bind(Arc::new(server), addr.as_str()) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("cdstore-serve: cannot bind {addr}: {e}");
            exit(1);
        }
    };
    // The harness contract: exactly one LISTENING line, immediately flushed.
    println!("LISTENING {}", net.local_addr());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    // Serve until the parent closes our stdin (or sends any byte stream
    // ending in EOF). This is the whole lifecycle protocol: no signals, no
    // pid files.
    let mut sink = [0u8; 1024];
    let mut stdin = std::io::stdin();
    while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
    net.shutdown();
}
