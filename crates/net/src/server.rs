//! [`NetServer`]: a CDStore server behind a TCP listener.
//!
//! One `NetServer` wraps an `Arc<CdStoreServer>` and serves the full wire
//! protocol: a thread-per-connection accept loop (the server object itself
//! is `Send + Sync` and internally sharded, so connections run genuinely
//! concurrently), pipelined request handling (each connection answers
//! requests in arrival order but the client may keep many in flight), the
//! credit-windowed share streaming of restores, and graceful shutdown that
//! joins every connection thread.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cdstore_core::server::GcConfig;
use cdstore_core::transport::ServerTransport;
use cdstore_core::{CdStoreError, CdStoreServer};

use crate::frame::{write_frame, FrameError, FrameReader, Polled};
use crate::message::{decode_request, encode_response, error_to_wire, Request, Response};

/// How often a blocked connection read wakes up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A CDStore server listening on a TCP address.
pub struct NetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and starts serving
    /// `server` on a background accept loop.
    pub fn bind(server: Arc<CdStoreServer>, addr: impl ToSocketAddrs) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        // Non-blocking accept polled on an interval: shutdown then needs no
        // self-connect trick to unwedge a blocking accept.
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || accept_loop(listener, server, shutdown))
        };
        Ok(NetServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains every connection thread, and returns once all
    /// of them have exited. In-flight requests complete; idle connections
    /// close at their next poll tick.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, server: Arc<CdStoreServer>, shutdown: Arc<AtomicBool>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let server = Arc::clone(&server);
                let shutdown = Arc::clone(&shutdown);
                connections.push(std::thread::spawn(move || {
                    // A connection failing (corrupt frame, peer reset) only
                    // drops that connection; the server keeps serving.
                    let _ = serve_connection(stream, server, shutdown);
                }));
                // Opportunistically reap finished connection threads so a
                // long-lived server does not accumulate handles.
                connections.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL);
            }
            Err(_) => break,
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// Serves one connection until the peer closes, a protocol violation, or
/// shutdown.
fn serve_connection(
    stream: TcpStream,
    server: Arc<CdStoreServer>,
    shutdown: Arc<AtomicBool>,
) -> Result<(), FrameError> {
    // Small frames (queries, credits) must not sit in Nagle buffers behind
    // an RTT: batching is done explicitly at the message layer.
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let mut reader = FrameReader::new();
    let mut stream = stream;
    // Requests that arrived while a stream was waiting for credit.
    let mut queued: VecDeque<(u64, Request)> = VecDeque::new();
    loop {
        let (req_id, request) = match queued.pop_front() {
            Some(next) => next,
            None => match reader.poll(&mut { &stream })? {
                Polled::Frame(msg_type, payload) => match decode_request(msg_type, &payload) {
                    Some(decoded) => decoded,
                    None => {
                        return Err(FrameError::Corrupt(format!(
                            "malformed request (type {msg_type:#04x})"
                        )))
                    }
                },
                Polled::Idle => {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                    continue;
                }
                Polled::Closed => return Ok(()),
            },
        };
        match request {
            Request::StreamShares {
                user,
                fingerprints,
                window,
            } => {
                stream_shares(
                    &mut stream,
                    &mut reader,
                    &mut queued,
                    &server,
                    &shutdown,
                    req_id,
                    user,
                    &fingerprints,
                    window,
                )?;
            }
            // A credit with no stream in flight: stale (its stream already
            // ended, e.g. after an error response). Ignore.
            Request::StreamCredit { .. } => {}
            other => {
                let response = handle_request(&server, other);
                let (msg_type, payload) = encode_response(req_id, &response);
                write_frame(&mut stream, msg_type, &payload)?;
            }
        }
    }
}

/// Executes one non-streaming request against the server.
fn handle_request(server: &Arc<CdStoreServer>, request: Request) -> Response {
    fn or_err(result: Result<Response, CdStoreError>) -> Response {
        result.unwrap_or_else(|e| error_to_wire(&e))
    }
    let t: &CdStoreServer = server;
    match request {
        Request::Ping => Response::Pong {
            cloud_index: ServerTransport::cloud_index(t) as u32,
        },
        Request::IntraUserQuery { user, fingerprints } => {
            or_err(ServerTransport::intra_user_query(t, user, &fingerprints).map(Response::Bools))
        }
        Request::StoreShares { user, shares } => {
            or_err(ServerTransport::store_shares(t, user, &shares).map(Response::Receipt))
        }
        Request::PutFile {
            user,
            encoded_pathname,
            recipe,
            uploaded,
        } => or_err(
            ServerTransport::put_file(t, user, &encoded_pathname, &recipe, &uploaded)
                .map(|()| Response::Unit),
        ),
        Request::ReleaseUploads { user, fingerprints } => or_err(
            ServerTransport::release_uploads(t, user, &fingerprints).map(|()| Response::Unit),
        ),
        Request::HasFile {
            user,
            encoded_pathname,
        } => or_err(ServerTransport::has_file(t, user, &encoded_pathname).map(Response::Bool)),
        Request::GetRecipe {
            user,
            encoded_pathname,
        } => or_err(ServerTransport::get_recipe(t, user, &encoded_pathname).map(Response::Recipe)),
        Request::DeleteFile {
            user,
            encoded_pathname,
        } => or_err(ServerTransport::delete_file(t, user, &encoded_pathname).map(Response::Bool)),
        Request::FetchShares { user, fingerprints } => {
            or_err(ServerTransport::fetch_shares(t, user, &fingerprints).map(Response::Shares))
        }
        Request::Flush => or_err(ServerTransport::flush(t).map(|()| Response::Unit)),
        Request::Gc { dead_ratio_bits } => or_err(
            ServerTransport::gc_with(
                t,
                GcConfig {
                    dead_ratio: f64::from_bits(dead_ratio_bits),
                },
            )
            .map(Response::Gc),
        ),
        Request::Probe => or_err(ServerTransport::probe(t).map(Response::Probe)),
        // Handled by the connection loop, never here.
        Request::StreamShares { .. } | Request::StreamCredit { .. } => error_to_wire(
            &CdStoreError::Remote("stream request out of context".into()),
        ),
    }
}

/// Streams shares back under the credit window: at most `window` shares may
/// be un-acknowledged (un-credited) at any time, so a slow client reading at
/// its own pace bounds the server's send queue — backpressure, not buffering.
/// Requests arriving on the connection while the stream waits for credit are
/// queued and answered afterwards.
#[allow(clippy::too_many_arguments)]
fn stream_shares(
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    queued: &mut VecDeque<(u64, Request)>,
    server: &Arc<CdStoreServer>,
    shutdown: &Arc<AtomicBool>,
    req_id: u64,
    user: u64,
    fingerprints: &[cdstore_crypto::Fingerprint],
    window: u32,
) -> Result<(), FrameError> {
    let mut credit: u64 = window.max(1) as u64;
    for (seq, fp) in fingerprints.iter().enumerate() {
        // Exhausted credit: wait for the client's grant, servicing any
        // pipelined non-stream requests that arrive in the meantime.
        while credit == 0 {
            match reader.poll(&mut { &*stream })? {
                Polled::Frame(msg_type, payload) => match decode_request(msg_type, &payload) {
                    Some((credit_req, Request::StreamCredit { grant })) if credit_req == req_id => {
                        credit += grant as u64;
                    }
                    Some(other) => queued.push_back(other),
                    None => {
                        return Err(FrameError::Corrupt(format!(
                            "malformed request (type {msg_type:#04x})"
                        )))
                    }
                },
                Polled::Idle => {
                    if shutdown.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                }
                Polled::Closed => return Ok(()),
            }
        }
        // One share per frame: the fetch is per-fingerprint so the server
        // never materialises the whole restore in memory.
        let share = match ServerTransport::fetch_shares(&**server, user, std::slice::from_ref(fp)) {
            Ok(mut shares) => shares.remove(0),
            Err(e) => {
                let (msg_type, payload) = encode_response(req_id, &error_to_wire(&e));
                return write_frame(stream, msg_type, &payload).map_err(FrameError::Io);
            }
        };
        let (msg_type, payload) = encode_response(
            req_id,
            &Response::StreamShare {
                seq: seq as u64,
                data: share,
            },
        );
        write_frame(stream, msg_type, &payload)?;
        credit -= 1;
    }
    let (msg_type, payload) = encode_response(
        req_id,
        &Response::StreamEnd {
            count: fingerprints.len() as u64,
        },
    );
    write_frame(stream, msg_type, &payload)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::PROTOCOL_VERSION;
    use crate::message::encode_request;

    fn connect(server: &NetServer) -> TcpStream {
        TcpStream::connect(server.local_addr()).unwrap()
    }

    fn roundtrip(stream: &mut TcpStream, req_id: u64, req: &Request) -> (u64, Response) {
        let (msg_type, payload) = encode_request(req_id, req);
        write_frame(stream, msg_type, &payload).unwrap();
        let mut reader = FrameReader::new();
        loop {
            match reader.poll(&mut { &*stream }).unwrap() {
                Polled::Frame(mt, payload) => {
                    return crate::message::decode_response(mt, &payload).unwrap()
                }
                Polled::Idle => continue,
                Polled::Closed => panic!("server closed the connection"),
            }
        }
    }

    #[test]
    fn ping_reports_the_cloud_index() {
        let core = Arc::new(CdStoreServer::new(3));
        let mut server = NetServer::bind(core, "127.0.0.1:0").unwrap();
        let mut stream = connect(&server);
        let (req_id, resp) = roundtrip(&mut stream, 11, &Request::Ping);
        assert_eq!(req_id, 11);
        assert_eq!(resp, Response::Pong { cloud_index: 3 });
        server.shutdown();
    }

    #[test]
    fn malformed_frames_drop_the_connection_but_not_the_server() {
        let core = Arc::new(CdStoreServer::new(0));
        let mut server = NetServer::bind(core, "127.0.0.1:0").unwrap();
        {
            use std::io::Write;
            let mut bad = connect(&server);
            // Valid frame envelope, unknown message type.
            write_frame(&mut bad, 0x7f, &[0u8; 8]).unwrap();
            // The server must close this connection.
            let mut reader = FrameReader::new();
            loop {
                match reader.poll(&mut { &bad }) {
                    Ok(Polled::Closed) | Err(_) => break,
                    Ok(Polled::Idle) | Ok(Polled::Frame(..)) => continue,
                }
            }
            let _ = bad.flush();
        }
        // A fresh connection still works.
        let mut good = connect(&server);
        let (_, resp) = roundtrip(&mut good, 1, &Request::Ping);
        assert!(matches!(resp, Response::Pong { .. }));
        server.shutdown();
        let _ = PROTOCOL_VERSION;
    }

    #[test]
    fn shutdown_joins_and_refuses_new_traffic() {
        let core = Arc::new(CdStoreServer::new(0));
        let mut server = NetServer::bind(core, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let mut stream = connect(&server);
        let (_, resp) = roundtrip(&mut stream, 1, &Request::Ping);
        assert!(matches!(resp, Response::Pong { .. }));
        server.shutdown();
        // After shutdown the port no longer accepts (the listener is gone);
        // allow for connect either failing outright or being reset on use.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut s) => {
                let (msg_type, payload) = encode_request(2, &Request::Ping);
                let _ = write_frame(&mut s, msg_type, &payload);
                let mut reader = FrameReader::new();
                loop {
                    match reader.poll(&mut { &s }) {
                        Ok(Polled::Closed) | Err(_) => break,
                        Ok(Polled::Frame(..)) => panic!("served after shutdown"),
                        Ok(Polled::Idle) => continue,
                    }
                }
            }
        }
    }
}
