//! `cdstore_net`: the CDStore wire protocol over TCP.
//!
//! The paper's deployment model (§4) is clients speaking to one CDStore
//! server per cloud *over a network*; this crate makes that boundary real:
//!
//! * [`frame`] — the framed codec (`len | crc32 | version | msg_type |
//!   payload`), reusing the checksum discipline of the metadata journal.
//! * [`wire`] — primitive value encoding inside payloads.
//! * [`message`] — request/response messages covering the full server API:
//!   batched share upload with per-share dedup verdicts, batched and
//!   chunk-streamed share download with windowed backpressure, recipe
//!   put/get, delete, gc, flush, and statistics.
//! * [`server`] — [`NetServer`]: a thread-per-connection listener wrapping
//!   an `Arc<CdStoreServer>`, with graceful shutdown.
//! * [`client`] — [`NetClient`]: a pipelining connection pool with timeouts
//!   and bounded reconnect-retry, and [`RemoteServer`], the
//!   [`cdstore_core::ServerTransport`] implementation it powers.
//! * [`cluster`] — [`LoopbackCluster`]: `n` networked servers on loopback
//!   for benches and tests.
//!
//! The `cdstore-serve` binary serves one cloud's server as a standalone
//! process; `tests/net_e2e.rs` drives four of them end-to-end.
//!
//! # Quick start
//!
//! ```
//! use cdstore_core::{CdStoreConfig};
//! use cdstore_net::{LoopbackCluster, NetClientConfig};
//!
//! let cluster = LoopbackCluster::spawn(4).unwrap();
//! let store = cluster
//!     .store(CdStoreConfig::new(4, 3).unwrap(), NetClientConfig::default())
//!     .unwrap();
//! let data = vec![7u8; 100_000];
//! store.backup(1, "/docs.tar", &data).unwrap();       // over TCP
//! assert_eq!(store.restore(1, "/docs.tar").unwrap(), data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod frame;
pub mod message;
pub mod server;
pub mod wire;

pub use client::{NetClient, NetClientConfig, RemoteServer};
pub use cluster::LoopbackCluster;
pub use frame::{FrameError, FrameReader, PROTOCOL_VERSION};
pub use message::{Request, Response};
pub use server::NetServer;
