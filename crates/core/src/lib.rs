//! CDStore: reliable, secure, and cost-efficient multi-cloud backup storage
//! via convergent dispersal (Li, Qin, Lee — USENIX ATC 2015).
//!
//! CDStore disperses users' backup data across `n` clouds with the
//! convergent-dispersal scheme CAONT-RS, so that:
//!
//! * **reliability** — any `k` of the `n` clouds suffice to restore the data
//!   and to rebuild the shares lost on failed clouds;
//! * **security** — no `k − 1` clouds learn anything about the data, without
//!   any encryption keys to manage (keyless security), and the embedded hash
//!   provides integrity checking;
//! * **cost efficiency** — because the dispersal is *convergent*
//!   (deterministic in the content), identical chunks produce identical
//!   shares, and two-stage deduplication removes them: intra-user dedup on
//!   the client saves upload bandwidth, inter-user dedup on each server saves
//!   storage, and neither leaks cross-user dedup patterns to clients
//!   (side-channel resistance, §3.3).
//!
//! The crate mirrors the paper's architecture (§4):
//!
//! * [`client`] — the CDStore client: chunking, CAONT-RS encoding, intra-user
//!   deduplication, batched uploads, restores.
//! * [`server`] — the CDStore server co-located with each cloud: inter-user
//!   deduplication, share/file indices, container storage.
//! * [`metadata`] — file recipes and share metadata exchanged between the two.
//! * [`dedup`] — the two-stage deduplication bookkeeping used by the
//!   deduplication-efficiency experiments.
//! * [`pipeline`] — multi-threaded encode/decode used by the performance
//!   experiments (§4.6).
//! * [`system`] — [`CdStore`], a façade wiring one client to `n` servers; the
//!   entry point for most users. Generic over [`transport::ServerTransport`],
//!   defaulting to in-process servers over simulated clouds.
//! * [`transport`] — the client ⇄ server boundary as a trait, so the same
//!   client code runs against in-process servers or over `cdstore_net`'s TCP
//!   protocol.
//!
//! # Quick start
//!
//! ```
//! use cdstore_core::{CdStore, CdStoreConfig};
//!
//! let config = CdStoreConfig::new(4, 3).unwrap();
//! let store = CdStore::new(config);
//!
//! let user = 1;
//! let backup = vec![42u8; 200_000];
//! let report = store.backup(user, "/home/alice/docs.tar", &backup).unwrap();
//! assert!(report.logical_bytes() > 0);
//!
//! // Restore even with one cloud down.
//! store.fail_cloud(2);
//! let restored = store.restore(user, "/home/alice/docs.tar").unwrap();
//! assert_eq!(restored, backup);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod dedup;
pub mod error;
pub mod metadata;
pub mod pipeline;
pub mod retry;
pub mod server;
pub mod system;
pub mod transport;
pub mod wal;

pub use client::{
    CdStoreClient, PreparedUpload, UploadReport, RESTORE_WINDOW_SECRETS, UPLOAD_BATCH_BYTES,
};
pub use dedup::DedupStats;
pub use error::CdStoreError;
pub use metadata::{FileRecipe, RecipeEntry, ShareMetadata};
pub use pipeline::{
    encode_stream, EncodeStreamReport, EncodedSecret, ParallelCoder, PipelineConfig,
};
pub use retry::{is_transient, RetryPolicy};
pub use server::{CdStoreServer, GcConfig, GcReport, IndexMode, RecoveryReport, ServerStats};
pub use system::{CdStore, CdStoreConfig, SystemStats};
pub use transport::{ServerProbe, ServerTransport, ShareVerdict, StoreReceipt};
pub use wal::{MetaRecord, Snapshot};
