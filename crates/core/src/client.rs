//! The CDStore client (§4.1–§4.3): chunking, CAONT-RS encoding, intra-user
//! deduplication, batched uploads, and restores.
//!
//! Two data paths share every protocol decision:
//!
//! * the buffered path ([`CdStoreClient::prepare`] → [`CdStoreClient::commit`])
//!   materialises the whole file, and remains available so callers can split
//!   the CPU and server halves of an upload;
//! * the streaming path ([`CdStoreClient::upload_stream`] /
//!   [`CdStoreClient::download_stream`]) pulls from any [`std::io::Read`] and
//!   pushes to any [`std::io::Write`], keeping peak memory bounded by the
//!   pipeline depth and the 4 MB per-cloud batches instead of the file size.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::sync::Arc;

use cdstore_chunking::{Chunker, ChunkerConfig, ChunkerKind};
use cdstore_crypto::Fingerprint;
use cdstore_secretsharing::{BufferPool, CaontRs, SecretSharing};

use crate::dedup::DedupStats;
use crate::error::CdStoreError;
use crate::metadata::{FileRecipe, RecipeEntry, ShareMetadata};
use crate::pipeline::{encode_stream, EncodedSecret, PipelineConfig};
use crate::retry::{is_transient, RetryPolicy};
use crate::transport::ServerTransport;

/// Size of the per-cloud upload buffer: shares are batched into 4 MB units
/// before being sent over the Internet (§4.1).
pub const UPLOAD_BATCH_BYTES: u64 = 4 * 1024 * 1024;

/// Number of secrets a streamed restore fetches per window. With the default
/// 8 KB average chunk size this keeps roughly 8 MB of shares in flight per
/// chosen cloud — enough to amortise the RPC, bounded regardless of file
/// size.
pub const RESTORE_WINDOW_SECRETS: usize = 1024;

/// The result of one file upload.
#[derive(Debug, Clone, PartialEq)]
pub struct UploadReport {
    /// Number of secrets (chunks) the file produced.
    pub num_secrets: usize,
    /// Deduplication byte counters for this upload.
    pub dedup: DedupStats,
    /// Share bytes transferred to each cloud after intra-user deduplication.
    pub transferred_per_cloud: Vec<u64>,
    /// Number of 4 MB upload batches sent to each cloud.
    pub batches_per_cloud: Vec<u64>,
    /// Share bytes newly stored at each cloud after inter-user deduplication.
    pub physical_per_cloud: Vec<u64>,
}

impl UploadReport {
    /// Convenience accessor mirroring §5.4's "logical data".
    pub fn logical_bytes(&self) -> u64 {
        self.dedup.logical_bytes
    }
}

/// The output of the CPU half of an upload ([`CdStoreClient::prepare`]):
/// encoded shares staged per cloud plus the recipe entries, ready to be
/// committed to the servers with [`CdStoreClient::commit`].
pub struct PreparedUpload {
    num_secrets: usize,
    file_size: u64,
    dedup: DedupStats,
    recipes: Vec<Vec<RecipeEntry>>,
    pending: Vec<Vec<(ShareMetadata, Vec<u8>)>>,
}

impl PreparedUpload {
    /// Number of secrets (chunks) the file produced.
    pub fn num_secrets(&self) -> usize {
        self.num_secrets
    }

    /// Logical size of the file in bytes.
    pub fn file_size(&self) -> u64 {
        self.file_size
    }
}

/// The CDStore client run by each user machine.
pub struct CdStoreClient {
    user: u64,
    n: usize,
    k: usize,
    scheme: CaontRs,
    chunker: Box<dyn Chunker + Send + Sync>,
    retry: RetryPolicy,
}

impl CdStoreClient {
    /// Creates a client for `user` dispersing across `n` clouds with
    /// threshold `k`, using the default 8 KB average chunk size.
    pub fn new(user: u64, n: usize, k: usize) -> Result<Self, CdStoreError> {
        Self::with_chunker(user, n, k, ChunkerConfig::default())
    }

    /// Creates a client with an explicit chunking configuration (Rabin
    /// content-defined chunking, the paper's default algorithm).
    pub fn with_chunker(
        user: u64,
        n: usize,
        k: usize,
        chunker: ChunkerConfig,
    ) -> Result<Self, CdStoreError> {
        Self::with_chunker_kind(user, n, k, ChunkerKind::Rabin, chunker)
    }

    /// Creates a client with an explicit chunking algorithm and size bounds
    /// (e.g. [`ChunkerKind::FastCdc`] for gear-hash chunking).
    pub fn with_chunker_kind(
        user: u64,
        n: usize,
        k: usize,
        kind: ChunkerKind,
        chunker: ChunkerConfig,
    ) -> Result<Self, CdStoreError> {
        let scheme = CaontRs::new(n, k).map_err(CdStoreError::Sharing)?;
        Ok(CdStoreClient {
            user,
            n,
            k,
            scheme,
            chunker: kind.build(chunker),
            retry: RetryPolicy::default(),
        })
    }

    /// Sets the bounded retry-with-backoff policy applied to transient cloud
    /// faults during uploads and restores (see [`crate::retry`]).
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The transient-fault retry policy in use.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The user this client acts for.
    pub fn user(&self) -> u64 {
        self.user
    }

    /// The convergent dispersal scheme in use.
    pub fn scheme(&self) -> &CaontRs {
        &self.scheme
    }

    /// The chunking algorithm in use.
    pub fn chunker(&self) -> &dyn Chunker {
        self.chunker.as_ref()
    }

    /// Encodes a pathname into its per-cloud shares. Pathnames are sensitive
    /// metadata, so they are dispersed via secret sharing rather than
    /// replicated (§4.3); because convergent dispersal is deterministic, the
    /// client can recompute the same encoded pathname at restore time.
    pub fn encode_pathname(&self, pathname: &str) -> Result<Vec<Vec<u8>>, CdStoreError> {
        Ok(self.scheme.split(pathname.as_bytes())?)
    }

    /// Uploads a file: chunk → encode → intra-user dedup → batched upload →
    /// metadata offload. `servers[i]` must be the server co-located with
    /// cloud `i` — either in-process [`crate::server::CdStoreServer`]s or any
    /// other [`ServerTransport`] (e.g. `cdstore_net`'s remote handles).
    /// Uploads require all `n` clouds so redundancy is not silently degraded.
    ///
    /// Thin wrapper over [`CdStoreClient::upload_stream`] — an in-memory
    /// slice is just one shape of `Read` source. Callers that need the CPU
    /// and server halves split (e.g. to encode outside a lock) can still use
    /// [`CdStoreClient::prepare`] + [`CdStoreClient::commit`].
    pub fn upload<T: ServerTransport>(
        &self,
        servers: &[T],
        pathname: &str,
        data: &[u8],
    ) -> Result<UploadReport, CdStoreError> {
        self.upload_stream(servers, pathname, data, &PipelineConfig::default())
    }

    /// Uploads a file pulled incrementally from `reader`: the streaming
    /// counterpart of [`CdStoreClient::upload`].
    ///
    /// Chunks are cut as bytes arrive, encoded by the staged pipeline (see
    /// [`encode_stream`]), deduplicated intra-user, and shipped to each cloud
    /// in [`UPLOAD_BATCH_BYTES`] batches *while later chunks are still being
    /// encoded* — CPU and network overlap, and peak memory is bounded by the
    /// pipeline depth plus the per-cloud batch buffers, never the file size.
    pub fn upload_stream<T: ServerTransport, R: Read + Send>(
        &self,
        servers: &[T],
        pathname: &str,
        reader: R,
        config: &PipelineConfig,
    ) -> Result<UploadReport, CdStoreError> {
        self.upload_stream_with_batch(servers, pathname, reader, config, UPLOAD_BATCH_BYTES)
    }

    /// [`CdStoreClient::upload_stream`] with an explicit per-cloud batch
    /// size, for tests and benchmarks that want to observe batching.
    pub fn upload_stream_with_batch<T: ServerTransport, R: Read + Send>(
        &self,
        servers: &[T],
        pathname: &str,
        reader: R,
        config: &PipelineConfig,
        batch_bytes: u64,
    ) -> Result<UploadReport, CdStoreError> {
        self.check_server_count(servers)?;
        // Resolve the buffer pool here so the committer can keep recycling
        // batch buffers after the encode pipeline itself has shut down.
        let pool = config
            .pool
            .clone()
            .unwrap_or_else(|| Arc::new(BufferPool::new()));
        let mut pipeline_config = config.clone();
        pipeline_config.pool = Some(Arc::clone(&pool));
        let mut committer = StreamCommitter::new(self, servers, pool, batch_bytes.max(1));
        let streamed = encode_stream(
            &self.scheme,
            self.chunker.as_ref(),
            reader,
            &pipeline_config,
            |enc, _| committer.absorb(enc),
        );
        let report = match streamed {
            Ok(_) => committer.finalize(pathname),
            Err(e) => Err(e),
        };
        report.inspect_err(|_| committer.abandon())
    }

    /// Uploads a file already divided into secrets (chunks). Used directly by
    /// the trace-driven experiments, where the datasets provide chunk
    /// boundaries (§5.2).
    pub fn upload_chunks<T: ServerTransport>(
        &self,
        servers: &[T],
        pathname: &str,
        chunks: &[Vec<u8>],
    ) -> Result<UploadReport, CdStoreError> {
        self.check_server_count(servers)?;
        let prepared = self.prepare_chunks(chunks)?;
        self.commit(servers, pathname, prepared)
    }

    /// Rejects a server slice of the wrong length before any encoding work.
    fn check_server_count<T: ServerTransport>(&self, servers: &[T]) -> Result<(), CdStoreError> {
        if servers.len() != self.n {
            return Err(CdStoreError::InvalidConfig(format!(
                "expected {} servers, got {}",
                self.n,
                servers.len()
            )));
        }
        Ok(())
    }

    /// The CPU half of an upload: chunks the data and runs
    /// [`CdStoreClient::prepare_chunks`]. Touches no server, so callers
    /// (e.g. `CdStore`) can run it outside any per-file ordering lock.
    pub fn prepare(&self, data: &[u8]) -> Result<PreparedUpload, CdStoreError> {
        let chunks = self.chunker.chunk(data);
        let chunk_data: Vec<Vec<u8>> = chunks.into_iter().map(|c| c.data).collect();
        self.prepare_chunks(&chunk_data)
    }

    /// The CPU half of an upload for pre-chunked data: CAONT-RS encodes
    /// every secret, fingerprints the shares, builds the per-cloud recipes,
    /// and stages the candidate shares (first stage of intra-user dedup).
    pub fn prepare_chunks(&self, chunks: &[Vec<u8>]) -> Result<PreparedUpload, CdStoreError> {
        let mut dedup = DedupStats::new();
        let mut recipes: Vec<Vec<RecipeEntry>> = vec![Vec::with_capacity(chunks.len()); self.n];
        // Per-cloud upload staging: (metadata, share bytes).
        let mut pending: Vec<Vec<(ShareMetadata, Vec<u8>)>> = vec![Vec::new(); self.n];
        // Client-local view of what this user has already scheduled in this
        // upload (first stage of intra-user dedup, before asking the server).
        let mut scheduled: Vec<std::collections::HashSet<Fingerprint>> =
            vec![std::collections::HashSet::new(); self.n];

        for (seq, secret) in chunks.iter().enumerate() {
            dedup.logical_bytes += secret.len() as u64;
            let shares = self.scheme.split(secret)?;
            // Fingerprint all n shares in one batch so the multi-lane SHA-256
            // path can interleave them instead of hashing one at a time.
            let share_refs: Vec<&[u8]> = shares.iter().map(|s| s.as_slice()).collect();
            let fingerprints = Fingerprint::of_batch(&share_refs);
            for (cloud, (share, fp)) in shares.into_iter().zip(fingerprints).enumerate() {
                dedup.logical_share_bytes += share.len() as u64;
                recipes[cloud].push(RecipeEntry {
                    share_fingerprint: fp,
                    secret_size: secret.len() as u32,
                });
                if scheduled[cloud].contains(&fp) {
                    continue;
                }
                scheduled[cloud].insert(fp);
                pending[cloud].push((
                    ShareMetadata {
                        fingerprint: fp,
                        share_size: share.len() as u32,
                        secret_seq: seq as u64,
                        secret_size: secret.len() as u32,
                    },
                    share,
                ));
            }
        }

        Ok(PreparedUpload {
            num_secrets: chunks.len(),
            file_size: chunks.iter().map(|c| c.len() as u64).sum(),
            dedup,
            recipes,
            pending,
        })
    }

    /// The server half of an upload: second-stage intra-user dedup queries,
    /// batched share transfer, and the per-cloud metadata offload. Callers
    /// serialising writes per file need to hold their ordering lock only
    /// around this call.
    pub fn commit<T: ServerTransport>(
        &self,
        servers: &[T],
        pathname: &str,
        prepared: PreparedUpload,
    ) -> Result<UploadReport, CdStoreError> {
        self.check_server_count(servers)?;
        let PreparedUpload {
            num_secrets,
            file_size,
            mut dedup,
            mut recipes,
            mut pending,
        } = prepared;

        let mut transferred_per_cloud = vec![0u64; self.n];
        let mut physical_per_cloud = vec![0u64; self.n];
        let mut batches_per_cloud = vec![0u64; self.n];
        // Which shares this upload physically sent per cloud: put_file needs
        // them to settle the reference counts (the per-upload references are
        // swapped for per-recipe-entry references).
        let mut uploaded_per_cloud: Vec<Vec<Fingerprint>> = vec![Vec::new(); self.n];

        for (cloud, server) in servers.iter().enumerate() {
            // Second-stage intra-user dedup query + share transfer, with
            // bounded retry on transient faults (each retry rolls the failed
            // attempt's references back and redoes the query).
            match ship_batch(server, self.user, &self.retry, &mut pending[cloud], None) {
                Ok(shipment) => {
                    transferred_per_cloud[cloud] = shipment.transferred;
                    batches_per_cloud[cloud] =
                        shipment.transferred.div_ceil(UPLOAD_BATCH_BYTES).max(1);
                    dedup.transferred_share_bytes += shipment.transferred;
                    physical_per_cloud[cloud] = shipment.new_bytes;
                    dedup.physical_share_bytes += shipment.new_bytes;
                    uploaded_per_cloud[cloud] = shipment.uploaded;
                }
                Err(e) => {
                    // Abandon the upload without leaking: the failing cloud
                    // holds no references (ship_batch rolled them back), but
                    // earlier clouds still hold their transient per-upload
                    // references — drop those so the shares become
                    // reclaimable.
                    for done in 0..cloud {
                        let _ = servers[done].release_uploads(self.user, &uploaded_per_cloud[done]);
                    }
                    return Err(e);
                }
            }
        }

        // Offload file metadata: each server gets its own recipe, keyed by its
        // own share of the encoded pathname.
        let encoded_paths = self.encode_pathname(pathname)?;
        for (cloud, server) in servers.iter().enumerate() {
            let recipe = FileRecipe {
                file_size,
                entries: std::mem::take(&mut recipes[cloud]),
            };
            if let Err(e) = server.put_file(
                self.user,
                &encoded_paths[cloud],
                &recipe,
                &uploaded_per_cloud[cloud],
            ) {
                // Abandon the upload without leaking: the failing server
                // rolled its own references back, but the clouds not yet
                // reached still hold the transient per-upload references
                // store_shares took — drop those so the shares become
                // reclaimable. (Clouds already committed keep their recipes;
                // a retried backup supersedes them.)
                for later in cloud + 1..self.n {
                    let _ = servers[later].release_uploads(self.user, &uploaded_per_cloud[later]);
                }
                return Err(e);
            }
        }

        Ok(UploadReport {
            num_secrets,
            dedup,
            transferred_per_cloud,
            batches_per_cloud,
            physical_per_cloud,
        })
    }

    /// Restores a file by contacting any `k` of the `n` servers.
    /// `available[i]` states whether cloud `i` (and its server) is reachable.
    ///
    /// Thin wrapper over [`CdStoreClient::download_stream`] collecting into
    /// a `Vec<u8>`.
    pub fn download<T: ServerTransport>(
        &self,
        servers: &[T],
        available: &[bool],
        pathname: &str,
    ) -> Result<Vec<u8>, CdStoreError> {
        let mut out = Vec::new();
        self.download_stream(servers, available, pathname, &mut out)?;
        Ok(out)
    }

    /// Restores a file into any [`Write`] destination, fetching shares in
    /// bounded windows of [`RESTORE_WINDOW_SECRETS`] secrets per chosen cloud
    /// — the whole file is never buffered. Over `cdstore_net` each window
    /// drains through the credit-window `StreamShares` protocol, so the
    /// server side stays bounded too. Returns the number of bytes written.
    pub fn download_stream<T: ServerTransport, W: Write + ?Sized>(
        &self,
        servers: &[T],
        available: &[bool],
        pathname: &str,
        out: &mut W,
    ) -> Result<u64, CdStoreError> {
        if servers.len() != self.n || available.len() != self.n {
            return Err(CdStoreError::InvalidConfig(format!(
                "expected {} servers/availability flags",
                self.n
            )));
        }
        let mut candidates: Vec<usize> = (0..self.n).filter(|&i| available[i]).collect();
        if candidates.len() < self.k {
            return Err(CdStoreError::NotEnoughClouds {
                needed: self.k,
                available: candidates.len(),
            });
        }
        // The first k available clouds serve the restore; the rest stand by
        // as spares. When a chosen cloud keeps failing transiently (its
        // availability flag lagging behind reality), the restore fails over
        // to a spare instead of giving up — k-of-n reads survive a
        // single-cloud outage even when nobody flagged the cloud down.
        let mut spares: Vec<usize> = candidates.split_off(self.k);
        spares.reverse(); // pop() takes the lowest index first
        let encoded_paths = self.encode_pathname(pathname)?;

        // Fetch the per-cloud recipes. (Metadata is a few dozen bytes per
        // secret; only share payloads are windowed.)
        let fetch_recipe = |cloud: usize| {
            self.retry
                .run(|_| servers[cloud].get_recipe(self.user, &encoded_paths[cloud]))
        };
        let mut recipes: Vec<(usize, FileRecipe)> = Vec::with_capacity(self.k);
        for mut cloud in candidates {
            let recipe = loop {
                match fetch_recipe(cloud) {
                    Ok(recipe) => break recipe,
                    Err(e) if is_transient(&e) => match spares.pop() {
                        Some(spare) => cloud = spare,
                        None => return Err(e),
                    },
                    Err(e) => return Err(e),
                }
            };
            recipes.push((cloud, recipe));
        }
        let num_secrets = recipes[0].1.num_secrets();
        let file_size = recipes[0].1.file_size;
        if recipes
            .iter()
            .any(|(_, r)| r.num_secrets() != num_secrets || r.file_size != file_size)
        {
            return Err(CdStoreError::InconsistentMetadata(
                "servers disagree on the file recipe".into(),
            ));
        }

        // Fetch a window of shares from each chosen cloud, decode secret by
        // secret, write out, repeat.
        let mut written = 0u64;
        let mut window_start = 0usize;
        while window_start < num_secrets {
            let window_end = (window_start + RESTORE_WINDOW_SECRETS).min(num_secrets);
            let mut shares_by_cloud: Vec<(usize, Vec<Vec<u8>>)> = Vec::with_capacity(self.k);
            // Indexing, not iterating: the failover arm below reassigns
            // `recipes[slot]`, which an element iterator would hold borrowed.
            #[allow(clippy::needless_range_loop)]
            for slot in 0..self.k {
                let shares = loop {
                    let (cloud, fps) = {
                        let (cloud, recipe) = &recipes[slot];
                        let fps: Vec<Fingerprint> = recipe.entries[window_start..window_end]
                            .iter()
                            .map(|e| e.share_fingerprint)
                            .collect();
                        (*cloud, fps)
                    };
                    match self
                        .retry
                        .run(|_| servers[cloud].fetch_shares(self.user, &fps))
                    {
                        Ok(shares) => break shares,
                        Err(e) if is_transient(&e) => {
                            // Mid-file failover: swap the failing cloud for a
                            // spare whose recipe agrees, then refetch this
                            // window from it. Earlier windows are already
                            // decoded and written; every window decodes from
                            // any k clouds independently.
                            let Some(spare) = spares.pop() else {
                                return Err(e);
                            };
                            let recipe = fetch_recipe(spare)?;
                            if recipe.num_secrets() != num_secrets || recipe.file_size != file_size
                            {
                                return Err(CdStoreError::InconsistentMetadata(
                                    "failover server disagrees on the file recipe".into(),
                                ));
                            }
                            recipes[slot] = (spare, recipe);
                        }
                        Err(e) => return Err(e),
                    }
                };
                shares_by_cloud.push((recipes[slot].0, shares));
            }
            for seq in window_start..window_end {
                let mut share_slots: Vec<Option<Vec<u8>>> = vec![None; self.n];
                for (cloud, shares) in &mut shares_by_cloud {
                    // Each share is decoded exactly once: move, don't clone.
                    share_slots[*cloud] = Some(std::mem::take(&mut shares[seq - window_start]));
                }
                let secret_size = recipes[0].1.entries[seq].secret_size as usize;
                let secret =
                    self.scheme
                        .reconstruct(&share_slots, secret_size)
                        .map_err(|e| match e {
                            cdstore_secretsharing::SharingError::IntegrityCheckFailed => {
                                CdStoreError::IntegrityFailure(format!(
                                    "secret {seq} failed its hash check"
                                ))
                            }
                            other => CdStoreError::Sharing(other),
                        })?;
                out.write_all(&secret)?;
                written += secret.len() as u64;
            }
            window_start = window_end;
        }
        Ok(written)
    }
}

/// What one successfully shipped batch did: the fingerprints physically
/// sent (holding transient per-upload references), the share bytes
/// transferred, and the bytes newly stored after inter-user dedup.
#[derive(Default)]
struct BatchShipment {
    uploaded: Vec<Fingerprint>,
    transferred: u64,
    new_bytes: u64,
}

/// Ships one batch of candidate shares to one server: second-stage
/// intra-user dedup query, then `store_shares` for the survivors, with
/// bounded retry-with-backoff on transient faults.
///
/// A failed `store_shares` may have taken per-upload references on shares it
/// reached before the fault, and a blind replay would double-count them
/// (duplicate outcomes still add references). Every retry therefore first
/// releases the failed attempt's references and redoes the dedup query from
/// scratch — release is a tolerant no-op for shares the attempt never
/// reached.
///
/// On success the batch is consumed (buffers recycled through `pool` when
/// given); on a permanent failure the batch is left intact and the failing
/// server holds no references from it.
fn ship_batch<T: ServerTransport>(
    server: &T,
    user: u64,
    retry: &RetryPolicy,
    batch: &mut Vec<(ShareMetadata, Vec<u8>)>,
    pool: Option<&BufferPool>,
) -> Result<BatchShipment, CdStoreError> {
    if batch.is_empty() {
        return Ok(BatchShipment::default());
    }
    let shipment = retry.run(|_| {
        let fps: Vec<Fingerprint> = batch.iter().map(|(m, _)| m.fingerprint).collect();
        let already = server.intra_user_query(user, &fps)?;
        // Move the non-duplicate shares out of the batch for the transfer;
        // the slots stay in place so a failed attempt can put them back.
        let mut to_upload: Vec<(ShareMetadata, Vec<u8>)> = Vec::new();
        let mut taken: Vec<usize> = Vec::new();
        for (i, dup) in already.into_iter().enumerate() {
            if !dup {
                to_upload.push((batch[i].0.clone(), std::mem::take(&mut batch[i].1)));
                taken.push(i);
            }
        }
        match server.store_shares(user, &to_upload) {
            Ok(receipt) => {
                let transferred: u64 = to_upload.iter().map(|(_, d)| d.len() as u64).sum();
                let uploaded: Vec<Fingerprint> =
                    to_upload.iter().map(|(m, _)| m.fingerprint).collect();
                if let Some(pool) = pool {
                    for (_, share) in to_upload {
                        pool.put(share);
                    }
                }
                Ok(BatchShipment {
                    uploaded,
                    transferred,
                    new_bytes: receipt.new_bytes,
                })
            }
            Err(e) => {
                let sent: Vec<Fingerprint> = to_upload.iter().map(|(m, _)| m.fingerprint).collect();
                let _ = server.release_uploads(user, &sent);
                for (idx, (_, share)) in taken.into_iter().zip(to_upload) {
                    batch[idx].1 = share;
                }
                Err(e)
            }
        }
    })?;
    // Recycle the remaining (duplicate) share buffers and empty the batch.
    for (_, share) in batch.drain(..) {
        if let Some(pool) = pool {
            if !share.is_empty() {
                pool.put(share);
            }
        }
    }
    Ok(shipment)
}

/// The store half of a streamed upload: accumulates per-cloud 4 MB batches
/// of non-duplicate shares as the encode pipeline emits secrets, flushes
/// each batch through second-stage intra-user dedup + `store_shares`, and
/// offloads the per-cloud recipes once the stream ends.
///
/// Mirrors [`CdStoreClient::commit`]'s protocol exactly — same dedup stages,
/// same accounting, same rollback obligations — restructured from
/// cloud-major (whole file to cloud 0, then cloud 1, …) to stream-major
/// (every cloud fed as secrets arrive).
struct StreamCommitter<'a, T: ServerTransport> {
    client: &'a CdStoreClient,
    servers: &'a [T],
    pool: Arc<BufferPool>,
    batch_bytes: u64,
    dedup: DedupStats,
    recipes: Vec<Vec<RecipeEntry>>,
    /// First-stage intra-user dedup: shares already scheduled in this upload.
    scheduled: Vec<HashSet<Fingerprint>>,
    /// Per-cloud batch under construction (pooled share buffers).
    batches: Vec<Vec<(ShareMetadata, Vec<u8>)>>,
    batch_fill: Vec<u64>,
    /// Shares physically sent per cloud, for put_file / rollback.
    uploaded: Vec<Vec<Fingerprint>>,
    transferred_per_cloud: Vec<u64>,
    physical_per_cloud: Vec<u64>,
    batches_per_cloud: Vec<u64>,
    num_secrets: usize,
    file_size: u64,
}

impl<'a, T: ServerTransport> StreamCommitter<'a, T> {
    fn new(
        client: &'a CdStoreClient,
        servers: &'a [T],
        pool: Arc<BufferPool>,
        batch_bytes: u64,
    ) -> Self {
        let n = client.n;
        StreamCommitter {
            client,
            servers,
            pool,
            batch_bytes,
            dedup: DedupStats::new(),
            recipes: vec![Vec::new(); n],
            scheduled: vec![HashSet::new(); n],
            batches: vec![Vec::new(); n],
            batch_fill: vec![0; n],
            uploaded: vec![Vec::new(); n],
            transferred_per_cloud: vec![0; n],
            physical_per_cloud: vec![0; n],
            batches_per_cloud: vec![0; n],
            num_secrets: 0,
            file_size: 0,
        }
    }

    /// Absorbs one encoded secret from the pipeline (in input order).
    fn absorb(&mut self, enc: EncodedSecret) -> Result<(), CdStoreError> {
        self.num_secrets += 1;
        self.file_size += enc.secret_size as u64;
        self.dedup.logical_bytes += enc.secret_size as u64;
        let EncodedSecret {
            seq,
            secret_size,
            shares,
            fingerprints,
        } = enc;
        for (cloud, (share, fp)) in shares.into_iter().zip(fingerprints).enumerate() {
            self.dedup.logical_share_bytes += share.len() as u64;
            self.recipes[cloud].push(RecipeEntry {
                share_fingerprint: fp,
                secret_size,
            });
            // First-stage intra-user dedup: drop shares already scheduled in
            // this upload before they ever hit a batch.
            if !self.scheduled[cloud].insert(fp) {
                self.pool.put(share);
                continue;
            }
            self.batch_fill[cloud] += share.len() as u64;
            self.batches[cloud].push((
                ShareMetadata {
                    fingerprint: fp,
                    share_size: share.len() as u32,
                    secret_seq: seq,
                    secret_size,
                },
                share,
            ));
            if self.batch_fill[cloud] >= self.batch_bytes {
                self.flush(cloud)?;
            }
        }
        Ok(())
    }

    /// Ships cloud `cloud`'s current batch: second-stage intra-user dedup
    /// query, then `store_shares` for the survivors, with bounded retry on
    /// transient faults (see [`ship_batch`]).
    fn flush(&mut self, cloud: usize) -> Result<(), CdStoreError> {
        let mut batch = std::mem::take(&mut self.batches[cloud]);
        self.batch_fill[cloud] = 0;
        if batch.is_empty() {
            return Ok(());
        }
        let shipment = ship_batch(
            &self.servers[cloud],
            self.client.user,
            &self.client.retry,
            &mut batch,
            Some(&self.pool),
        )?;
        self.transferred_per_cloud[cloud] += shipment.transferred;
        self.dedup.transferred_share_bytes += shipment.transferred;
        self.batches_per_cloud[cloud] += 1;
        self.uploaded[cloud].extend(shipment.uploaded);
        self.physical_per_cloud[cloud] += shipment.new_bytes;
        self.dedup.physical_share_bytes += shipment.new_bytes;
        Ok(())
    }

    /// Stream ended cleanly: flush the final partial batches and offload the
    /// per-cloud recipes. On error the caller must still call
    /// [`StreamCommitter::abandon`].
    fn finalize(&mut self, pathname: &str) -> Result<UploadReport, CdStoreError> {
        for cloud in 0..self.client.n {
            self.flush(cloud)?;
        }
        let encoded_paths = self.client.encode_pathname(pathname)?;
        for (cloud, server) in self.servers.iter().enumerate() {
            let recipe = FileRecipe {
                file_size: self.file_size,
                entries: std::mem::take(&mut self.recipes[cloud]),
            };
            if let Err(e) = server.put_file(
                self.client.user,
                &encoded_paths[cloud],
                &recipe,
                &self.uploaded[cloud],
            ) {
                // Same semantics as the buffered commit: the failing server
                // rolled its own references back and earlier clouds keep
                // their committed recipes (a retried backup supersedes
                // them); only clouds not yet reached still hold transient
                // per-upload references — drop exactly those.
                for later in cloud + 1..self.client.n {
                    let _ = self.servers[later]
                        .release_uploads(self.client.user, &self.uploaded[later]);
                }
                // Everything is settled; make the caller's abandon a no-op.
                self.uploaded.iter_mut().for_each(Vec::clear);
                return Err(e);
            }
        }
        Ok(UploadReport {
            num_secrets: self.num_secrets,
            dedup: self.dedup,
            transferred_per_cloud: std::mem::take(&mut self.transferred_per_cloud),
            // A zero-secret upload still costs one (empty) batch per cloud,
            // matching the buffered path's accounting.
            batches_per_cloud: self.batches_per_cloud.iter().map(|&b| b.max(1)).collect(),
            physical_per_cloud: std::mem::take(&mut self.physical_per_cloud),
        })
    }

    /// Abandons the upload after a failure without leaking: drops the
    /// transient per-upload references taken by every `store_shares` batch
    /// that was sent but never settled by `put_file`.
    fn abandon(&self) {
        for (cloud, server) in self.servers.iter().enumerate() {
            if !self.uploaded[cloud].is_empty() {
                let _ = server.release_uploads(self.client.user, &self.uploaded[cloud]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::CdStoreServer;

    fn make_servers(n: usize) -> Vec<CdStoreServer> {
        (0..n).map(CdStoreServer::new).collect()
    }

    fn test_data(len: usize, seed: u8) -> Vec<u8> {
        // Low-entropy but position-dependent data so chunking finds stable
        // boundaries and dedup behaves deterministically.
        (0..len)
            .map(|i| ((i / 512) as u8).wrapping_mul(31).wrapping_add(seed))
            .collect()
    }

    #[test]
    fn upload_then_download_round_trips() {
        let servers = make_servers(4);
        let client = CdStoreClient::new(1, 4, 3).unwrap();
        let data = test_data(300_000, 1);
        let report = client.upload(&servers, "/backup/a.tar", &data).unwrap();
        assert!(report.num_secrets > 1);
        assert_eq!(report.dedup.logical_bytes, data.len() as u64);
        let restored = client
            .download(&servers, &[true; 4], "/backup/a.tar")
            .unwrap();
        assert_eq!(restored, data);
    }

    #[test]
    fn download_works_with_any_k_clouds() {
        let servers = make_servers(4);
        let client = CdStoreClient::new(1, 4, 3).unwrap();
        let data = test_data(150_000, 2);
        client.upload(&servers, "/f", &data).unwrap();
        for down in 0..4 {
            let mut available = [true; 4];
            available[down] = false;
            let restored = client.download(&servers, &available, "/f").unwrap();
            assert_eq!(restored, data, "cloud {down} down");
        }
        // Two clouds down is too many for k = 3.
        assert!(matches!(
            client.download(&servers, &[true, true, false, false], "/f"),
            Err(CdStoreError::NotEnoughClouds { .. })
        ));
    }

    #[test]
    fn second_identical_upload_transfers_no_share_data() {
        let servers = make_servers(4);
        let client = CdStoreClient::new(1, 4, 3).unwrap();
        let data = test_data(200_000, 3);
        let first = client.upload(&servers, "/weekly/v1", &data).unwrap();
        assert!(first.dedup.transferred_share_bytes > 0);
        // The same content under a new pathname: intra-user dedup removes
        // every share transfer.
        let second = client.upload(&servers, "/weekly/v2", &data).unwrap();
        assert_eq!(second.dedup.transferred_share_bytes, 0);
        assert!((second.dedup.intra_user_saving() - 1.0).abs() < 1e-9);
        // Both versions remain restorable.
        assert_eq!(
            client.download(&servers, &[true; 4], "/weekly/v1").unwrap(),
            data
        );
        assert_eq!(
            client.download(&servers, &[true; 4], "/weekly/v2").unwrap(),
            data
        );
    }

    #[test]
    fn cross_user_duplicates_are_removed_server_side_only() {
        let servers = make_servers(4);
        let alice = CdStoreClient::new(1, 4, 3).unwrap();
        let bob = CdStoreClient::new(2, 4, 3).unwrap();
        let data = test_data(120_000, 4);
        let a = alice.upload(&servers, "/a", &data).unwrap();
        let b = bob.upload(&servers, "/b", &data).unwrap();
        // Bob still transfers his shares (no client-side global dedup — that
        // would open the side channel)...
        assert!(b.dedup.transferred_share_bytes > 0);
        assert_eq!(
            b.dedup.transferred_share_bytes,
            a.dedup.transferred_share_bytes
        );
        // ...but the servers store nothing new for Bob.
        assert_eq!(b.dedup.physical_share_bytes, 0);
        assert!((b.dedup.inter_user_saving() - 1.0).abs() < 1e-9);
        // Both users can restore independently.
        assert_eq!(alice.download(&servers, &[true; 4], "/a").unwrap(), data);
        assert_eq!(bob.download(&servers, &[true; 4], "/b").unwrap(), data);
    }

    #[test]
    fn modified_backup_transfers_only_changed_chunks() {
        let servers = make_servers(4);
        let client = CdStoreClient::new(1, 4, 3).unwrap();
        let week1 = test_data(400_000, 5);
        let mut week2 = week1.clone();
        // Modify a small region (simulating an incremental change).
        for b in &mut week2[100_000..101_000] {
            *b ^= 0xff;
        }
        let r1 = client.upload(&servers, "/w1", &week1).unwrap();
        let r2 = client.upload(&servers, "/w2", &week2).unwrap();
        assert!(r2.dedup.transferred_share_bytes < r1.dedup.transferred_share_bytes / 4);
        assert!(r2.dedup.intra_user_saving() > 0.7);
        assert_eq!(client.download(&servers, &[true; 4], "/w2").unwrap(), week2);
    }

    #[test]
    fn unknown_file_and_wrong_user_are_rejected() {
        let servers = make_servers(4);
        let client = CdStoreClient::new(1, 4, 3).unwrap();
        let data = test_data(50_000, 6);
        client.upload(&servers, "/mine", &data).unwrap();
        assert!(matches!(
            client.download(&servers, &[true; 4], "/missing"),
            Err(CdStoreError::FileNotFound(_))
        ));
        // Another user cannot restore the file even if they guess the path.
        let eve = CdStoreClient::new(66, 4, 3).unwrap();
        assert!(eve.download(&servers, &[true; 4], "/mine").is_err());
    }

    #[test]
    fn upload_requires_matching_server_count() {
        let servers = make_servers(3);
        let client = CdStoreClient::new(1, 4, 3).unwrap();
        assert!(matches!(
            client.upload(&servers, "/f", b"data"),
            Err(CdStoreError::InvalidConfig(_))
        ));
    }

    #[test]
    fn empty_file_round_trips() {
        let servers = make_servers(4);
        let client = CdStoreClient::new(1, 4, 3).unwrap();
        let report = client.upload(&servers, "/empty", b"").unwrap();
        assert_eq!(report.num_secrets, 0);
        assert_eq!(
            client.download(&servers, &[true; 4], "/empty").unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn logical_share_bytes_reflect_dispersal_blowup() {
        let servers = make_servers(4);
        let client = CdStoreClient::new(1, 4, 3).unwrap();
        let data = test_data(256_000, 7);
        let report = client.upload(&servers, "/blowup", &data).unwrap();
        let blowup = report.dedup.logical_share_bytes as f64 / report.dedup.logical_bytes as f64;
        // n/k = 4/3 plus the per-secret CAONT tail overhead.
        assert!(blowup > 1.33 && blowup < 1.40, "blowup {blowup}");
    }
}
