//! Bounded retry with exponential backoff for transient cloud faults.
//!
//! The paper's stance (§3.1) is that clouds misbehave routinely — requests
//! time out, connections drop, writes land partially — and that the client
//! must ride through such *transient* faults so a degraded cloud causes
//! slowdown, not failure. This module centralises that policy: what counts
//! as transient ([`is_transient`]), and how often/how long to retry
//! ([`RetryPolicy`]). The upload path retries per 4 MB batch (after rolling
//! back the failed batch's share references), the façade retries whole
//! replayable operations, and restores fail over to spare clouds — all
//! driven by the same policy carried in `CdStoreConfig::retry`.

use std::time::Duration;

use crate::error::CdStoreError;

/// How many times to attempt an operation and how long to sleep in between.
///
/// Backoff is exponential: attempt `i` (1-based) sleeps
/// `base_delay * 2^(i-1)` before retrying, capped at `max_delay`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` disables retries).
    pub max_attempts: u32,
    /// Sleep before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// Three attempts, 5 ms → 10 ms backoff: enough to ride out transient
    /// request failures without stalling a genuinely dead cloud for long
    /// (outages are handled by availability flags and restore failover, not
    /// by retrying forever).
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (every fault surfaces immediately).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// A policy with `max_attempts` attempts and the default backoff.
    pub fn with_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..Default::default()
        }
    }

    /// The backoff sleep after 1-based attempt `attempt` failed.
    pub fn backoff_delay(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(16);
        self.base_delay.saturating_mul(factor).min(self.max_delay)
    }

    /// Whether 1-based attempt `attempt` failing with `error` should be
    /// retried, i.e. the error is transient and attempts remain.
    pub fn should_retry(&self, error: &CdStoreError, attempt: u32) -> bool {
        attempt < self.max_attempts && is_transient(error)
    }

    /// Runs `op` under this policy: `op` is called with the 1-based attempt
    /// number and re-invoked (after a backoff sleep) while it fails with a
    /// transient error and attempts remain. `op` must leave the system in a
    /// replayable state whenever it fails — roll back partial effects first.
    pub fn run<R>(
        &self,
        mut op: impl FnMut(u32) -> Result<R, CdStoreError>,
    ) -> Result<R, CdStoreError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match op(attempt) {
                Ok(value) => return Ok(value),
                Err(e) if self.should_retry(&e, attempt) => {
                    std::thread::sleep(self.backoff_delay(attempt));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Whether an error is plausibly transient — the fault classes a retry can
/// ride out:
///
/// * [`CdStoreError::Storage`] with an I/O error — a backend request failed
///   (injected faults, network hiccups to the object store);
/// * [`CdStoreError::Remote`] — the TCP transport failed or timed out; the
///   wire protocol also folds server-side storage/cloud errors into this
///   variant, so it covers the same classes over `cdstore_net`.
///
/// Everything else — corrupt data, missing files or shares, integrity or
/// metadata failures, configuration errors, unavailable-cloud counts — is a
/// state the retry would only reproduce, and surfaces immediately.
pub fn is_transient(error: &CdStoreError) -> bool {
    matches!(
        error,
        CdStoreError::Storage(cdstore_storage::StorageError::Io(_)) | CdStoreError::Remote(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdstore_storage::StorageError;

    fn transient() -> CdStoreError {
        CdStoreError::Storage(StorageError::Io(std::io::Error::other("flaky")))
    }

    #[test]
    fn transient_classification() {
        assert!(is_transient(&transient()));
        assert!(is_transient(&CdStoreError::Remote("timeout".into())));
        assert!(!is_transient(&CdStoreError::FileNotFound("/f".into())));
        assert!(!is_transient(&CdStoreError::Storage(
            StorageError::NotFound("k".into())
        )));
        assert!(!is_transient(&CdStoreError::NotEnoughClouds {
            needed: 3,
            available: 2
        }));
        assert!(!is_transient(&CdStoreError::IntegrityFailure("bad".into())));
    }

    #[test]
    fn run_retries_transient_failures_up_to_the_attempt_budget() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        };
        // Succeeds on the third attempt.
        let mut calls = 0;
        let out = policy.run(|attempt| {
            calls += 1;
            assert_eq!(attempt, calls);
            if attempt < 3 {
                Err(transient())
            } else {
                Ok("done")
            }
        });
        assert_eq!(out.unwrap(), "done");
        assert_eq!(calls, 3);

        // Never succeeds: exactly max_attempts calls, then the error.
        let mut calls = 0;
        let out: Result<(), _> = policy.run(|_| {
            calls += 1;
            Err(transient())
        });
        assert!(out.is_err());
        assert_eq!(calls, 4);
    }

    #[test]
    fn run_does_not_retry_permanent_errors() {
        let mut calls = 0;
        let out: Result<(), _> = RetryPolicy::default().run(|_| {
            calls += 1;
            Err(CdStoreError::FileNotFound("/gone".into()))
        });
        assert!(matches!(out, Err(CdStoreError::FileNotFound(_))));
        assert_eq!(calls, 1);
    }

    #[test]
    fn none_policy_surfaces_the_first_failure() {
        let mut calls = 0;
        let out: Result<(), _> = RetryPolicy::none().run(|_| {
            calls += 1;
            Err(transient())
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(60),
        };
        assert_eq!(policy.backoff_delay(1), Duration::from_millis(10));
        assert_eq!(policy.backoff_delay(2), Duration::from_millis(20));
        assert_eq!(policy.backoff_delay(3), Duration::from_millis(40));
        assert_eq!(policy.backoff_delay(4), Duration::from_millis(60));
        assert_eq!(policy.backoff_delay(31), Duration::from_millis(60));
    }
}
