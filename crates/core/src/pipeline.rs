//! Multi-threaded encode/decode of secrets (§4.6).
//!
//! The CDStore client parallelises the CPU-intensive CAONT-RS operations at
//! the secret level: each secret produced by the chunking module is handed to
//! one of a pool of coding threads. This module provides that parallel coder
//! for any [`SecretSharing`] scheme; the encoding-speed experiments
//! (Figure 5) sweep its thread count.

use cdstore_secretsharing::{SecretSharing, SharingError};

/// A parallel encoder/decoder over a secret sharing scheme.
pub struct ParallelCoder<'a> {
    scheme: &'a (dyn SecretSharing + Sync),
    threads: usize,
}

impl<'a> ParallelCoder<'a> {
    /// Creates a coder that uses `threads` worker threads (at least 1).
    pub fn new(scheme: &'a (dyn SecretSharing + Sync), threads: usize) -> Self {
        ParallelCoder {
            scheme,
            threads: threads.max(1),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Encodes a batch of secrets into per-secret share vectors, preserving
    /// input order.
    pub fn encode_batch(&self, secrets: &[Vec<u8>]) -> Result<Vec<Vec<Vec<u8>>>, SharingError> {
        self.run(secrets, |scheme, secret| scheme.split(secret))
    }

    /// Decodes a batch of `(share-slots, secret_len)` items, preserving order.
    pub fn decode_batch(
        &self,
        items: &[(Vec<Option<Vec<u8>>>, usize)],
    ) -> Result<Vec<Vec<u8>>, SharingError> {
        self.run(items, |scheme, (shares, len)| {
            scheme.reconstruct(shares, *len)
        })
    }

    fn run<I, O, F>(&self, items: &[I], op: F) -> Result<Vec<O>, SharingError>
    where
        I: Sync,
        O: Send,
        F: Fn(&dyn SecretSharing, &I) -> Result<O, SharingError> + Sync,
    {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        if self.threads == 1 {
            return items.iter().map(|item| op(self.scheme, item)).collect();
        }
        let threads = self.threads.min(items.len());
        let chunk_size = items.len().div_ceil(threads);
        let results: Vec<Result<Vec<O>, SharingError>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for chunk in items.chunks(chunk_size) {
                let op = &op;
                let scheme = self.scheme;
                handles.push(scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|item| op(scheme, item))
                        .collect::<Result<Vec<O>, _>>()
                }));
            }
            // A panicking worker must not take the whole process down with
            // it: surface the panic as a SharingError to the caller instead.
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|payload| Err(panic_error(payload))))
                .collect()
        });
        let mut out = Vec::with_capacity(items.len());
        for r in results {
            out.extend(r?);
        }
        Ok(out)
    }
}

/// Converts a worker thread's panic payload into a [`SharingError`],
/// preserving `panic!` string messages where possible.
fn panic_error(payload: Box<dyn std::any::Any + Send>) -> SharingError {
    let message = payload
        .downcast_ref::<&'static str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic payload".to_string());
    SharingError::WorkerPanic(message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdstore_secretsharing::CaontRs;

    fn secrets(count: usize) -> Vec<Vec<u8>> {
        (0..count)
            .map(|i| (0..2048usize).map(|j| ((i * 31 + j) % 256) as u8).collect())
            .collect()
    }

    #[test]
    fn parallel_encoding_matches_sequential() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let batch = secrets(37);
        let sequential = ParallelCoder::new(&scheme, 1).encode_batch(&batch).unwrap();
        for threads in [2, 3, 4, 8] {
            let parallel = ParallelCoder::new(&scheme, threads)
                .encode_batch(&batch)
                .unwrap();
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn decode_batch_round_trips() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let batch = secrets(20);
        let coder = ParallelCoder::new(&scheme, 4);
        let encoded = coder.encode_batch(&batch).unwrap();
        let items: Vec<(Vec<Option<Vec<u8>>>, usize)> = encoded
            .into_iter()
            .zip(&batch)
            .map(|(shares, secret)| {
                let mut slots: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
                slots[1] = None; // one cloud missing
                (slots, secret.len())
            })
            .collect();
        let decoded = coder.decode_batch(&items).unwrap();
        assert_eq!(decoded, batch);
    }

    #[test]
    fn empty_batch_is_fine() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let coder = ParallelCoder::new(&scheme, 4);
        assert!(coder.encode_batch(&[]).unwrap().is_empty());
        assert!(coder.decode_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let batch = secrets(3);
        let coder = ParallelCoder::new(&scheme, 16);
        assert_eq!(coder.encode_batch(&batch).unwrap().len(), 3);
        assert_eq!(coder.threads(), 16);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let coder = ParallelCoder::new(&scheme, 0);
        assert_eq!(coder.threads(), 1);
        assert_eq!(coder.encode_batch(&secrets(2)).unwrap().len(), 2);
    }

    #[test]
    fn errors_propagate_from_workers() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let coder = ParallelCoder::new(&scheme, 2);
        // Reconstructing from too few shares must surface the error.
        let items = vec![(vec![None, None, None, None], 10usize); 4];
        assert!(coder.decode_batch(&items).is_err());
    }

    /// A scheme that fails to split any secret whose first byte is the
    /// poison marker, for exercising partial-failure paths.
    struct PoisonScheme {
        inner: CaontRs,
    }

    const POISON: u8 = 0xFF;

    impl SecretSharing for PoisonScheme {
        fn name(&self) -> &'static str {
            "poison"
        }

        fn n(&self) -> usize {
            self.inner.n()
        }

        fn k(&self) -> usize {
            self.inner.k()
        }

        fn confidentiality_degree(&self) -> usize {
            self.inner.confidentiality_degree()
        }

        fn total_share_size(&self, secret_len: usize) -> usize {
            self.inner.total_share_size(secret_len)
        }

        fn split(&self, secret: &[u8]) -> Result<Vec<Vec<u8>>, SharingError> {
            if secret.first() == Some(&POISON) {
                return Err(SharingError::InvalidParameters("poisoned secret".into()));
            }
            self.inner.split(secret)
        }

        fn reconstruct(
            &self,
            shares: &[Option<Vec<u8>>],
            secret_len: usize,
        ) -> Result<Vec<u8>, SharingError> {
            self.inner.reconstruct(shares, secret_len)
        }
    }

    #[test]
    fn one_failing_secret_mid_batch_fails_the_whole_batch() {
        let scheme = PoisonScheme {
            inner: CaontRs::new(4, 3).unwrap(),
        };
        let mut batch = secrets(24);
        batch[13][0] = POISON;
        for threads in [1, 2, 4, 8] {
            let err = ParallelCoder::new(&scheme, threads)
                .encode_batch(&batch)
                .expect_err("poisoned batch must not encode");
            assert!(
                matches!(err, SharingError::InvalidParameters(_)),
                "threads={threads}: unexpected error {err:?}"
            );
        }
        // The same batch without the poisoned secret encodes fine, so the
        // failure above really came from the one bad item.
        batch.remove(13);
        assert!(ParallelCoder::new(&scheme, 4).encode_batch(&batch).is_ok());
    }

    /// A scheme that panics while splitting any secret whose first byte is
    /// the marker, for exercising worker-panic recovery.
    struct PanicScheme {
        inner: CaontRs,
    }

    impl SecretSharing for PanicScheme {
        fn name(&self) -> &'static str {
            "panic"
        }

        fn n(&self) -> usize {
            self.inner.n()
        }

        fn k(&self) -> usize {
            self.inner.k()
        }

        fn confidentiality_degree(&self) -> usize {
            self.inner.confidentiality_degree()
        }

        fn total_share_size(&self, secret_len: usize) -> usize {
            self.inner.total_share_size(secret_len)
        }

        fn split(&self, secret: &[u8]) -> Result<Vec<Vec<u8>>, SharingError> {
            if secret.first() == Some(&POISON) {
                panic!("injected worker panic");
            }
            self.inner.split(secret)
        }

        fn reconstruct(
            &self,
            shares: &[Option<Vec<u8>>],
            secret_len: usize,
        ) -> Result<Vec<u8>, SharingError> {
            self.inner.reconstruct(shares, secret_len)
        }
    }

    #[test]
    fn worker_panic_surfaces_as_a_sharing_error() {
        let scheme = PanicScheme {
            inner: CaontRs::new(4, 3).unwrap(),
        };
        let mut batch = secrets(24);
        batch[13][0] = POISON;
        for threads in [2, 4, 8] {
            let err = ParallelCoder::new(&scheme, threads)
                .encode_batch(&batch)
                .expect_err("a panicking worker must fail the batch, not the process");
            match err {
                SharingError::WorkerPanic(msg) => {
                    assert!(msg.contains("injected worker panic"), "message: {msg}")
                }
                other => panic!("threads={threads}: unexpected error {other:?}"),
            }
        }
        // The same coder still works on a clean batch afterwards.
        batch.remove(13);
        assert!(ParallelCoder::new(&scheme, 4).encode_batch(&batch).is_ok());
    }

    #[test]
    fn one_failing_item_mid_batch_fails_decode() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let coder = ParallelCoder::new(&scheme, 3);
        let batch = secrets(9);
        let encoded = coder.encode_batch(&batch).unwrap();
        let mut items: Vec<(Vec<Option<Vec<u8>>>, usize)> = encoded
            .into_iter()
            .zip(&batch)
            .map(|(shares, secret)| (shares.into_iter().map(Some).collect(), secret.len()))
            .collect();
        // Drop every share of one mid-batch item: below threshold k.
        items[5].0.iter_mut().for_each(|slot| *slot = None);
        assert!(
            matches!(
                coder.decode_batch(&items),
                Err(SharingError::NotEnoughShares { .. })
            ),
            "unreconstructable mid-batch item must surface NotEnoughShares"
        );
    }

    #[test]
    fn more_threads_than_items_matches_sequential_output() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let batch = secrets(2);
        let sequential = ParallelCoder::new(&scheme, 1).encode_batch(&batch).unwrap();
        // 16 threads for 2 secrets: workers are capped at the batch size and
        // the output must be identical, element for element, to sequential.
        let parallel = ParallelCoder::new(&scheme, 16)
            .encode_batch(&batch)
            .unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn single_item_batch_encodes_on_many_threads() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let coder = ParallelCoder::new(&scheme, 8);
        let batch = secrets(1);
        let encoded = coder.encode_batch(&batch).unwrap();
        assert_eq!(encoded.len(), 1);
        assert_eq!(encoded[0].len(), 4);
    }
}
