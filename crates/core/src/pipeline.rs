//! Multi-threaded encode/decode of secrets (§4.6).
//!
//! The CDStore client parallelises the CPU-intensive CAONT-RS operations at
//! the secret level: each secret produced by the chunking module is handed to
//! one of a pool of coding threads. This module provides two shapes of that
//! parallelism:
//!
//! * [`ParallelCoder`] — batch-at-once encode/decode of an in-memory slice of
//!   secrets, used by the buffered APIs and the Figure 5 thread sweeps.
//! * [`encode_stream`] — a bounded-channel staged pipeline (chunk →
//!   fingerprint → parallel encode → in-order sink) that pulls chunks
//!   straight off an [`std::io::Read`] source, so encoding of chunk *i+1*
//!   overlaps the store RPC for chunk *i* and peak memory is set by
//!   [`PipelineConfig`] depths rather than file size. Chunk and share
//!   buffers cycle through a [`BufferPool`], making the steady state
//!   allocation-free.

use std::collections::BTreeMap;
use std::io::Read;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver};
use std::sync::Arc;

use cdstore_chunking::{ChunkStream, Chunker};
use cdstore_crypto::Fingerprint;
use cdstore_secretsharing::{BufferPool, SecretSharing, SharingError};
use parking_lot::Mutex;

use crate::error::CdStoreError;

/// Shape of the streaming encode pipeline: worker count and queue depths.
///
/// The queue depths are the memory bound: at most
/// [`max_live_secrets`](PipelineConfig::max_live_secrets) secrets (each one
/// chunk buffer plus `n` share buffers) are alive inside the pipeline at any
/// instant, enforced with a ticket window between the chunker and the
/// in-order sink.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Number of CAONT-RS encode workers (clamped to at least 1).
    pub encode_threads: usize,
    /// Bounded-queue depth between the chunker and the encode workers.
    pub chunk_queue: usize,
    /// Bounded-queue depth between the encode workers and the in-order sink.
    pub encoded_queue: usize,
    /// Read-buffer size handed to [`ChunkStream`].
    pub read_buffer: usize,
    /// Buffer pool shared by chunk and share buffers. `None` lets the
    /// pipeline create a private pool; pass an explicit pool to observe
    /// reuse/peak counters or share buffers across uploads.
    pub pool: Option<Arc<BufferPool>>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            encode_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(8),
            chunk_queue: 8,
            encoded_queue: 8,
            read_buffer: 64 * 1024,
            pool: None,
        }
    }
}

impl PipelineConfig {
    /// Upper bound on secrets simultaneously alive inside the pipeline: one
    /// being cut, the two queues, one per worker, and one at the sink.
    pub fn max_live_secrets(&self) -> usize {
        self.chunk_queue + self.encoded_queue + self.encode_threads.max(1) + 2
    }

    /// Upper bound on pool buffers simultaneously checked out by the
    /// pipeline itself (excluding any the sink retains): each live secret
    /// holds one chunk buffer and `n` share buffers.
    pub fn max_live_buffers(&self, n: usize) -> usize {
        self.max_live_secrets() * (n + 1)
    }
}

/// One secret after the encode stage: its `n` shares (index `i` = cloud `i`)
/// and their fingerprints, tagged with the chunk sequence number.
///
/// The share buffers come from the pipeline's [`BufferPool`]; the sink must
/// return them (e.g. [`BufferPool::put_all`]) once consumed, or reuse stops.
#[derive(Debug)]
pub struct EncodedSecret {
    /// Position of the source chunk in the input stream (0-based).
    pub seq: u64,
    /// Size of the source chunk in bytes.
    pub secret_size: u32,
    /// The `n` encoded shares.
    pub shares: Vec<Vec<u8>>,
    /// `Fingerprint::of` each share, computed on the worker.
    pub fingerprints: Vec<Fingerprint>,
}

/// Totals returned by a completed [`encode_stream`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeStreamReport {
    /// Number of secrets (chunks) cut and encoded.
    pub num_secrets: u64,
    /// Total bytes read from the source.
    pub logical_bytes: u64,
}

/// Message from the encode workers to the in-order sink loop.
type EncodedMessage = Result<EncodedSecret, SharingError>;

/// The chunk queue's receive side, shared by the encode workers.
type SharedChunkReceiver = Arc<Mutex<Receiver<(u64, Vec<u8>)>>>;

/// Streams `reader` through chunk → encode → sink with bounded memory.
///
/// A chunker thread cuts chunks into pooled buffers and feeds a bounded
/// queue; `encode_threads` workers pull chunks, run
/// [`SecretSharing::split_into`] into pooled share buffers, fingerprint the
/// shares, and feed a second bounded queue; the calling thread reorders by
/// sequence number and hands each [`EncodedSecret`] to `sink` in input
/// order. The sink overlaps whatever it does (batching, store RPCs) with the
/// encoding of later chunks — the pipelining that lets CPU and network run
/// concurrently.
///
/// Error handling: the first failure anywhere — a read error, an encode
/// error, a worker panic (surfaced as [`SharingError::WorkerPanic`]), or a
/// sink error — aborts the pipeline promptly; in-flight buffers drain back
/// to the pool and the error is returned. On success the sink has seen every
/// secret exactly once, in order.
///
/// With `encode_threads <= 1` there is no parallelism to exploit, so the
/// stages run inline on the calling thread (same semantics, no channel or
/// context-switch cost) — mirroring [`ParallelCoder`]'s single-thread mode.
pub fn encode_stream<R: Read + Send>(
    scheme: &(dyn SecretSharing + Sync),
    chunker: &dyn Chunker,
    reader: R,
    config: &PipelineConfig,
    mut sink: impl FnMut(EncodedSecret, &BufferPool) -> Result<(), CdStoreError>,
) -> Result<EncodeStreamReport, CdStoreError> {
    let pool = config
        .pool
        .clone()
        .unwrap_or_else(|| Arc::new(BufferPool::new()));
    let threads = config.encode_threads.max(1);
    let n = scheme.n();
    if threads == 1 {
        return encode_stream_inline(scheme, chunker, reader, config, &pool, &mut sink);
    }
    let abort = AtomicBool::new(false);

    // The chunker is only borrowed to build the stream; the stream itself
    // (cutter + reader) moves into the chunker thread.
    let mut chunk_stream =
        ChunkStream::with_buffer_size(chunker, reader, config.read_buffer.max(1));

    let (chunk_tx, chunk_rx) = sync_channel::<(u64, Vec<u8>)>(config.chunk_queue.max(1));
    let chunk_rx: SharedChunkReceiver = Arc::new(Mutex::new(chunk_rx));
    let (enc_tx, enc_rx) = sync_channel::<EncodedMessage>(config.encoded_queue.max(1));
    // Ticket window capping secrets alive between the chunker and the sink.
    let (ticket_tx, ticket_rx) = sync_channel::<()>(config.max_live_secrets());

    let mut result: Result<(), CdStoreError> = Ok(());
    let mut report = EncodeStreamReport {
        num_secrets: 0,
        logical_bytes: 0,
    };

    std::thread::scope(|scope| {
        // --- Stage 1: the chunker thread. ---
        let chunker_handle = scope.spawn({
            let pool = Arc::clone(&pool);
            let abort = &abort;
            move || -> std::io::Result<()> {
                let mut seq = 0u64;
                loop {
                    if abort.load(Ordering::Acquire) {
                        return Ok(());
                    }
                    // Acquire a ticket first: blocks while the pipeline is
                    // full, errors when the sink loop has torn the window
                    // down (abort) — either way no unbounded buffering.
                    if ticket_tx.send(()).is_err() {
                        return Ok(());
                    }
                    let mut buf = pool.get();
                    match chunk_stream.next_chunk_into(&mut buf) {
                        Ok(true) => {
                            if chunk_tx.send((seq, buf)).is_err() {
                                return Ok(()); // workers gone: abort path
                            }
                            seq += 1;
                        }
                        Ok(false) => {
                            pool.put(buf);
                            return Ok(());
                        }
                        Err(e) => {
                            pool.put(buf);
                            return Err(e);
                        }
                    }
                }
                // chunk_tx drops here, disconnecting the workers.
            }
        });

        // --- Stage 2: the encode workers. ---
        for _ in 0..threads {
            let chunk_rx = Arc::clone(&chunk_rx);
            let enc_tx = enc_tx.clone();
            let pool = Arc::clone(&pool);
            let abort = &abort;
            scope.spawn(move || {
                loop {
                    let msg = chunk_rx.lock().recv();
                    let (seq, chunk) = match msg {
                        Ok(item) => item,
                        Err(_) => return, // chunker done or aborted
                    };
                    if abort.load(Ordering::Acquire) {
                        // Keep draining so a full queue never wedges the
                        // chunker; just recycle the buffers.
                        pool.put(chunk);
                        continue;
                    }
                    // A panicking scheme must fail the upload, not the
                    // process. The crate forbids unsafe code and the closure
                    // only touches owned data, so unwinding here is benign.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let mut shares: Vec<Vec<u8>> = (0..n).map(|_| pool.get()).collect();
                        match scheme.split_into(&chunk, &mut shares) {
                            Ok(()) => {
                                let refs: Vec<&[u8]> =
                                    shares.iter().map(|s| s.as_slice()).collect();
                                let fingerprints = Fingerprint::of_batch(&refs);
                                Ok(EncodedSecret {
                                    seq,
                                    secret_size: chunk.len() as u32,
                                    shares,
                                    fingerprints,
                                })
                            }
                            Err(e) => {
                                pool.put_all(&mut shares);
                                Err(e)
                            }
                        }
                    }));
                    pool.put(chunk);
                    let message = outcome.unwrap_or_else(|payload| Err(panic_error(payload)));
                    if enc_tx.send(message).is_err() {
                        return; // sink loop gone
                    }
                }
            });
        }
        // The sink loop must observe disconnect once the workers finish.
        drop(enc_tx);

        // --- Stage 3: reorder by sequence and sink in input order. ---
        let mut next_seq = 0u64;
        let mut out_of_order: BTreeMap<u64, EncodedSecret> = BTreeMap::new();
        // Hold the ticket receiver in an Option so the abort path can drop
        // it, which unblocks/terminates the chunker's ticket acquisition.
        let mut window = Some(ticket_rx);
        for message in enc_rx.iter() {
            if result.is_err() {
                // Drain mode: recycle buffers until the workers exit.
                if let Ok(mut enc) = message {
                    pool.put_all(&mut enc.shares);
                }
                continue;
            }
            match message {
                Ok(enc) => {
                    out_of_order.insert(enc.seq, enc);
                    while let Some(enc) = out_of_order.remove(&next_seq) {
                        report.logical_bytes += enc.secret_size as u64;
                        match sink(enc, &pool) {
                            Ok(()) => {
                                next_seq += 1;
                                // One ticket per sunk secret; its token was
                                // deposited before the chunk was cut, so
                                // this never blocks.
                                if let Some(rx) = &window {
                                    let _ = rx.recv();
                                }
                            }
                            Err(e) => {
                                result = Err(e);
                                abort.store(true, Ordering::Release);
                                window = None;
                                break;
                            }
                        }
                    }
                }
                Err(e) => {
                    result = Err(e.into());
                    abort.store(true, Ordering::Release);
                    window = None;
                }
            }
        }
        // Return any still-buffered out-of-order secrets (error paths).
        for (_, mut enc) in out_of_order {
            pool.put_all(&mut enc.shares);
        }
        report.num_secrets = next_seq;

        // Surface a chunker I/O failure unless an earlier error already won.
        match chunker_handle.join() {
            Ok(Ok(())) => {}
            Ok(Err(io_err)) => {
                if result.is_ok() {
                    result = Err(io_err.into());
                }
            }
            Err(payload) => {
                if result.is_ok() {
                    result = Err(panic_error(payload).into());
                }
            }
        }
    });

    result.map(|()| report)
}

/// The single-threaded body of [`encode_stream`]: chunk → encode → sink run
/// inline with one reused chunk buffer, preserving the threaded path's
/// semantics (in-order delivery, pooled buffers, typed errors) without any
/// cross-thread handoffs.
fn encode_stream_inline<R: Read>(
    scheme: &(dyn SecretSharing + Sync),
    chunker: &dyn Chunker,
    reader: R,
    config: &PipelineConfig,
    pool: &Arc<BufferPool>,
    sink: &mut impl FnMut(EncodedSecret, &BufferPool) -> Result<(), CdStoreError>,
) -> Result<EncodeStreamReport, CdStoreError> {
    let n = scheme.n();
    let mut chunk_stream =
        ChunkStream::with_buffer_size(chunker, reader, config.read_buffer.max(1));
    let mut report = EncodeStreamReport {
        num_secrets: 0,
        logical_bytes: 0,
    };
    let mut chunk = pool.get();
    loop {
        match chunk_stream.next_chunk_into(&mut chunk) {
            Ok(true) => {}
            Ok(false) => {
                pool.put(chunk);
                return Ok(report);
            }
            Err(e) => {
                pool.put(chunk);
                return Err(e.into());
            }
        }
        // Same unwind shield as the worker threads: a panicking scheme must
        // fail the upload, not the process.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut shares: Vec<Vec<u8>> = (0..n).map(|_| pool.get()).collect();
            match scheme.split_into(&chunk, &mut shares) {
                Ok(()) => {
                    let refs: Vec<&[u8]> = shares.iter().map(|s| s.as_slice()).collect();
                    let fingerprints = Fingerprint::of_batch(&refs);
                    Ok((shares, fingerprints))
                }
                Err(e) => {
                    pool.put_all(&mut shares);
                    Err(e)
                }
            }
        }));
        let (shares, fingerprints) =
            match outcome.unwrap_or_else(|payload| Err(panic_error(payload))) {
                Ok(encoded) => encoded,
                Err(e) => {
                    pool.put(chunk);
                    return Err(e.into());
                }
            };
        let enc = EncodedSecret {
            seq: report.num_secrets,
            secret_size: chunk.len() as u32,
            shares,
            fingerprints,
        };
        report.logical_bytes += enc.secret_size as u64;
        report.num_secrets += 1;
        if let Err(e) = sink(enc, pool) {
            pool.put(chunk);
            return Err(e);
        }
    }
}

/// A parallel encoder/decoder over a secret sharing scheme.
pub struct ParallelCoder<'a> {
    scheme: &'a (dyn SecretSharing + Sync),
    threads: usize,
}

impl<'a> ParallelCoder<'a> {
    /// Creates a coder that uses `threads` worker threads (at least 1).
    pub fn new(scheme: &'a (dyn SecretSharing + Sync), threads: usize) -> Self {
        ParallelCoder {
            scheme,
            threads: threads.max(1),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Encodes a batch of secrets into per-secret share vectors, preserving
    /// input order.
    pub fn encode_batch(&self, secrets: &[Vec<u8>]) -> Result<Vec<Vec<Vec<u8>>>, SharingError> {
        self.run(secrets, |scheme, secret| scheme.split(secret))
    }

    /// Decodes a batch of `(share-slots, secret_len)` items, preserving order.
    pub fn decode_batch(
        &self,
        items: &[(Vec<Option<Vec<u8>>>, usize)],
    ) -> Result<Vec<Vec<u8>>, SharingError> {
        self.run(items, |scheme, (shares, len)| {
            scheme.reconstruct(shares, *len)
        })
    }

    fn run<I, O, F>(&self, items: &[I], op: F) -> Result<Vec<O>, SharingError>
    where
        I: Sync,
        O: Send,
        F: Fn(&dyn SecretSharing, &I) -> Result<O, SharingError> + Sync,
    {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        if self.threads == 1 {
            return items.iter().map(|item| op(self.scheme, item)).collect();
        }
        let threads = self.threads.min(items.len());
        let chunk_size = items.len().div_ceil(threads);
        let results: Vec<Result<Vec<O>, SharingError>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for chunk in items.chunks(chunk_size) {
                let op = &op;
                let scheme = self.scheme;
                handles.push(scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|item| op(scheme, item))
                        .collect::<Result<Vec<O>, _>>()
                }));
            }
            // A panicking worker must not take the whole process down with
            // it: surface the panic as a SharingError to the caller instead.
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|payload| Err(panic_error(payload))))
                .collect()
        });
        let mut out = Vec::with_capacity(items.len());
        for r in results {
            out.extend(r?);
        }
        Ok(out)
    }
}

/// Converts a worker thread's panic payload into a [`SharingError`],
/// preserving `panic!` string messages where possible.
fn panic_error(payload: Box<dyn std::any::Any + Send>) -> SharingError {
    let message = payload
        .downcast_ref::<&'static str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic payload".to_string());
    SharingError::WorkerPanic(message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdstore_secretsharing::CaontRs;

    fn secrets(count: usize) -> Vec<Vec<u8>> {
        (0..count)
            .map(|i| (0..2048usize).map(|j| ((i * 31 + j) % 256) as u8).collect())
            .collect()
    }

    #[test]
    fn parallel_encoding_matches_sequential() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let batch = secrets(37);
        let sequential = ParallelCoder::new(&scheme, 1).encode_batch(&batch).unwrap();
        for threads in [2, 3, 4, 8] {
            let parallel = ParallelCoder::new(&scheme, threads)
                .encode_batch(&batch)
                .unwrap();
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn decode_batch_round_trips() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let batch = secrets(20);
        let coder = ParallelCoder::new(&scheme, 4);
        let encoded = coder.encode_batch(&batch).unwrap();
        let items: Vec<(Vec<Option<Vec<u8>>>, usize)> = encoded
            .into_iter()
            .zip(&batch)
            .map(|(shares, secret)| {
                let mut slots: Vec<Option<Vec<u8>>> = shares.into_iter().map(Some).collect();
                slots[1] = None; // one cloud missing
                (slots, secret.len())
            })
            .collect();
        let decoded = coder.decode_batch(&items).unwrap();
        assert_eq!(decoded, batch);
    }

    #[test]
    fn empty_batch_is_fine() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let coder = ParallelCoder::new(&scheme, 4);
        assert!(coder.encode_batch(&[]).unwrap().is_empty());
        assert!(coder.decode_batch(&[]).unwrap().is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let batch = secrets(3);
        let coder = ParallelCoder::new(&scheme, 16);
        assert_eq!(coder.encode_batch(&batch).unwrap().len(), 3);
        assert_eq!(coder.threads(), 16);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let coder = ParallelCoder::new(&scheme, 0);
        assert_eq!(coder.threads(), 1);
        assert_eq!(coder.encode_batch(&secrets(2)).unwrap().len(), 2);
    }

    #[test]
    fn errors_propagate_from_workers() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let coder = ParallelCoder::new(&scheme, 2);
        // Reconstructing from too few shares must surface the error.
        let items = vec![(vec![None, None, None, None], 10usize); 4];
        assert!(coder.decode_batch(&items).is_err());
    }

    /// A scheme that fails to split any secret whose first byte is the
    /// poison marker, for exercising partial-failure paths.
    struct PoisonScheme {
        inner: CaontRs,
    }

    const POISON: u8 = 0xFF;

    impl SecretSharing for PoisonScheme {
        fn name(&self) -> &'static str {
            "poison"
        }

        fn n(&self) -> usize {
            self.inner.n()
        }

        fn k(&self) -> usize {
            self.inner.k()
        }

        fn confidentiality_degree(&self) -> usize {
            self.inner.confidentiality_degree()
        }

        fn total_share_size(&self, secret_len: usize) -> usize {
            self.inner.total_share_size(secret_len)
        }

        fn split(&self, secret: &[u8]) -> Result<Vec<Vec<u8>>, SharingError> {
            if secret.first() == Some(&POISON) {
                return Err(SharingError::InvalidParameters("poisoned secret".into()));
            }
            self.inner.split(secret)
        }

        fn reconstruct(
            &self,
            shares: &[Option<Vec<u8>>],
            secret_len: usize,
        ) -> Result<Vec<u8>, SharingError> {
            self.inner.reconstruct(shares, secret_len)
        }
    }

    #[test]
    fn one_failing_secret_mid_batch_fails_the_whole_batch() {
        let scheme = PoisonScheme {
            inner: CaontRs::new(4, 3).unwrap(),
        };
        let mut batch = secrets(24);
        batch[13][0] = POISON;
        for threads in [1, 2, 4, 8] {
            let err = ParallelCoder::new(&scheme, threads)
                .encode_batch(&batch)
                .expect_err("poisoned batch must not encode");
            assert!(
                matches!(err, SharingError::InvalidParameters(_)),
                "threads={threads}: unexpected error {err:?}"
            );
        }
        // The same batch without the poisoned secret encodes fine, so the
        // failure above really came from the one bad item.
        batch.remove(13);
        assert!(ParallelCoder::new(&scheme, 4).encode_batch(&batch).is_ok());
    }

    /// A scheme that panics while splitting any secret whose first byte is
    /// the marker, for exercising worker-panic recovery.
    struct PanicScheme {
        inner: CaontRs,
    }

    impl SecretSharing for PanicScheme {
        fn name(&self) -> &'static str {
            "panic"
        }

        fn n(&self) -> usize {
            self.inner.n()
        }

        fn k(&self) -> usize {
            self.inner.k()
        }

        fn confidentiality_degree(&self) -> usize {
            self.inner.confidentiality_degree()
        }

        fn total_share_size(&self, secret_len: usize) -> usize {
            self.inner.total_share_size(secret_len)
        }

        fn split(&self, secret: &[u8]) -> Result<Vec<Vec<u8>>, SharingError> {
            if secret.first() == Some(&POISON) {
                panic!("injected worker panic");
            }
            self.inner.split(secret)
        }

        fn reconstruct(
            &self,
            shares: &[Option<Vec<u8>>],
            secret_len: usize,
        ) -> Result<Vec<u8>, SharingError> {
            self.inner.reconstruct(shares, secret_len)
        }
    }

    #[test]
    fn worker_panic_surfaces_as_a_sharing_error() {
        let scheme = PanicScheme {
            inner: CaontRs::new(4, 3).unwrap(),
        };
        let mut batch = secrets(24);
        batch[13][0] = POISON;
        for threads in [2, 4, 8] {
            let err = ParallelCoder::new(&scheme, threads)
                .encode_batch(&batch)
                .expect_err("a panicking worker must fail the batch, not the process");
            match err {
                SharingError::WorkerPanic(msg) => {
                    assert!(msg.contains("injected worker panic"), "message: {msg}")
                }
                other => panic!("threads={threads}: unexpected error {other:?}"),
            }
        }
        // The same coder still works on a clean batch afterwards.
        batch.remove(13);
        assert!(ParallelCoder::new(&scheme, 4).encode_batch(&batch).is_ok());
    }

    #[test]
    fn one_failing_item_mid_batch_fails_decode() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let coder = ParallelCoder::new(&scheme, 3);
        let batch = secrets(9);
        let encoded = coder.encode_batch(&batch).unwrap();
        let mut items: Vec<(Vec<Option<Vec<u8>>>, usize)> = encoded
            .into_iter()
            .zip(&batch)
            .map(|(shares, secret)| (shares.into_iter().map(Some).collect(), secret.len()))
            .collect();
        // Drop every share of one mid-batch item: below threshold k.
        items[5].0.iter_mut().for_each(|slot| *slot = None);
        assert!(
            matches!(
                coder.decode_batch(&items),
                Err(SharingError::NotEnoughShares { .. })
            ),
            "unreconstructable mid-batch item must surface NotEnoughShares"
        );
    }

    #[test]
    fn more_threads_than_items_matches_sequential_output() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let batch = secrets(2);
        let sequential = ParallelCoder::new(&scheme, 1).encode_batch(&batch).unwrap();
        // 16 threads for 2 secrets: workers are capped at the batch size and
        // the output must be identical, element for element, to sequential.
        let parallel = ParallelCoder::new(&scheme, 16)
            .encode_batch(&batch)
            .unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn single_item_batch_encodes_on_many_threads() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let coder = ParallelCoder::new(&scheme, 8);
        let batch = secrets(1);
        let encoded = coder.encode_batch(&batch).unwrap();
        assert_eq!(encoded.len(), 1);
        assert_eq!(encoded[0].len(), 4);
    }

    // ---- encode_stream ----

    use cdstore_chunking::{ChunkerConfig, ChunkerKind};

    /// Deterministic pseudo-random bytes so the Rabin/FastCDC chunkers cut
    /// realistic variable-size chunks.
    fn stream_data(len: usize) -> Vec<u8> {
        let mut state = 0x2545_f491_4f6c_dd1du64;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 24) as u8
            })
            .collect()
    }

    fn small_chunk_config() -> ChunkerConfig {
        ChunkerConfig {
            min_size: 512,
            avg_size: 1024,
            max_size: 4096,
        }
    }

    fn test_pipeline_config(pool: Arc<BufferPool>) -> PipelineConfig {
        PipelineConfig {
            encode_threads: 3,
            chunk_queue: 4,
            encoded_queue: 4,
            read_buffer: 777, // deliberately odd: boundaries must not care
            pool: Some(pool),
        }
    }

    #[test]
    fn encode_stream_matches_buffered_split_for_every_chunker() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let data = stream_data(200 * 1024);
        for kind in ChunkerKind::ALL {
            let chunker = kind.build(small_chunk_config());
            let expected_chunks = chunker.chunk(&data);
            let pool = Arc::new(BufferPool::new());
            let mut streamed: Vec<EncodedSecret> = Vec::new();
            let report = encode_stream(
                &scheme,
                chunker.as_ref(),
                &data[..],
                &test_pipeline_config(Arc::clone(&pool)),
                |mut enc, pool| {
                    let shares = enc.shares.clone();
                    pool.put_all(&mut enc.shares);
                    enc.shares = shares;
                    streamed.push(enc);
                    Ok(())
                },
            )
            .unwrap();

            assert_eq!(report.num_secrets, expected_chunks.len() as u64);
            assert_eq!(report.logical_bytes, data.len() as u64);
            let mut offset = 0usize;
            for (i, (enc, chunk)) in streamed.iter().zip(&expected_chunks).enumerate() {
                assert_eq!(
                    enc.seq,
                    i as u64,
                    "{}: sink saw secrets out of order",
                    kind.name()
                );
                assert_eq!(enc.secret_size as usize, chunk.data.len());
                let expected_shares = scheme.split(&chunk.data).unwrap();
                assert_eq!(
                    enc.shares,
                    expected_shares,
                    "{}: share mismatch at {i}",
                    kind.name()
                );
                let expected_fps: Vec<Fingerprint> =
                    expected_shares.iter().map(|s| Fingerprint::of(s)).collect();
                assert_eq!(enc.fingerprints, expected_fps);
                offset += chunk.data.len();
            }
            assert_eq!(offset, data.len());
            assert_eq!(
                pool.stats().outstanding,
                0,
                "{}: buffers leaked",
                kind.name()
            );
        }
    }

    #[test]
    fn encode_stream_live_buffers_bounded_by_pipeline_depth_not_file_size() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let chunker = ChunkerKind::FastCdc.build(small_chunk_config());
        let pool = Arc::new(BufferPool::new());
        let config = test_pipeline_config(Arc::clone(&pool));
        // ~1 MiB at ~1 KiB chunks: ~1000 secrets, far above max_live_secrets.
        let data = stream_data(1024 * 1024);
        let report = encode_stream(
            &scheme,
            chunker.as_ref(),
            &data[..],
            &config,
            |mut enc, pool| {
                pool.put_all(&mut enc.shares);
                Ok(())
            },
        )
        .unwrap();
        assert!(
            report.num_secrets as usize > 4 * config.max_live_secrets(),
            "need far more chunks ({}) than the window to make the bound meaningful",
            report.num_secrets
        );
        let stats = pool.stats();
        assert!(
            stats.peak_outstanding <= config.max_live_buffers(scheme.n()),
            "peak live buffers {} exceeded the pipeline bound {}",
            stats.peak_outstanding,
            config.max_live_buffers(scheme.n())
        );
        assert_eq!(stats.outstanding, 0);
        assert!(
            stats.reuses > stats.allocations,
            "steady state must be dominated by reuse (allocs={}, reuses={})",
            stats.allocations,
            stats.reuses
        );
    }

    #[test]
    fn encode_stream_propagates_scheme_errors_and_returns_buffers() {
        let scheme = PoisonScheme {
            inner: CaontRs::new(4, 3).unwrap(),
        };
        let chunker = ChunkerKind::Fixed.build(small_chunk_config());
        let mut data = stream_data(64 * 1024);
        data[20 * 1024] = POISON; // first byte of some mid-stream chunk
        let pool = Arc::new(BufferPool::new());
        let err = encode_stream(
            &scheme,
            chunker.as_ref(),
            &data[..],
            &test_pipeline_config(Arc::clone(&pool)),
            |mut enc, pool| {
                pool.put_all(&mut enc.shares);
                Ok(())
            },
        )
        .expect_err("poisoned chunk must fail the stream");
        assert!(
            matches!(
                err,
                CdStoreError::Sharing(SharingError::InvalidParameters(_))
            ),
            "unexpected error {err:?}"
        );
        assert_eq!(
            pool.stats().outstanding,
            0,
            "error path must drain the pool"
        );
    }

    #[test]
    fn encode_stream_surfaces_worker_panics_as_typed_errors() {
        let scheme = PanicScheme {
            inner: CaontRs::new(4, 3).unwrap(),
        };
        let chunker = ChunkerKind::Fixed.build(small_chunk_config());
        let mut data = stream_data(64 * 1024);
        data[32 * 1024] = POISON;
        let err = encode_stream(
            &scheme,
            chunker.as_ref(),
            &data[..],
            &PipelineConfig::default(),
            |mut enc, pool| {
                pool.put_all(&mut enc.shares);
                Ok(())
            },
        )
        .expect_err("a panicking worker must fail the stream, not the process");
        match err {
            CdStoreError::Sharing(SharingError::WorkerPanic(msg)) => {
                assert!(msg.contains("injected worker panic"), "message: {msg}")
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn encode_stream_aborts_promptly_on_sink_error() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let chunker = ChunkerKind::Fixed.build(small_chunk_config());
        let data = stream_data(512 * 1024);
        let pool = Arc::new(BufferPool::new());
        let mut sunk = 0u64;
        let err = encode_stream(
            &scheme,
            chunker.as_ref(),
            &data[..],
            &test_pipeline_config(Arc::clone(&pool)),
            |mut enc, pool| {
                pool.put_all(&mut enc.shares);
                sunk += 1;
                if sunk == 5 {
                    return Err(CdStoreError::Remote("simulated store failure".into()));
                }
                Ok(())
            },
        )
        .expect_err("sink error must abort the stream");
        assert!(matches!(err, CdStoreError::Remote(_)));
        assert_eq!(sunk, 5, "nothing may be sunk after the error");
        assert_eq!(pool.stats().outstanding, 0);
    }

    /// Reader that fails with an I/O error after yielding some bytes.
    struct FailingReader {
        remaining: usize,
    }

    impl Read for FailingReader {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.remaining == 0 {
                return Err(std::io::Error::other("disk on fire"));
            }
            let take = self.remaining.min(buf.len());
            buf[..take].fill(0xAB);
            self.remaining -= take;
            Ok(take)
        }
    }

    #[test]
    fn encode_stream_propagates_read_errors() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let chunker = ChunkerKind::Fixed.build(small_chunk_config());
        let pool = Arc::new(BufferPool::new());
        let err = encode_stream(
            &scheme,
            chunker.as_ref(),
            FailingReader { remaining: 8192 },
            &test_pipeline_config(Arc::clone(&pool)),
            |mut enc, pool| {
                pool.put_all(&mut enc.shares);
                Ok(())
            },
        )
        .expect_err("read failure must surface");
        match err {
            CdStoreError::Io(msg) => assert!(msg.contains("disk on fire"), "message: {msg}"),
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(pool.stats().outstanding, 0);
    }

    #[test]
    fn encode_stream_of_empty_input_yields_no_secrets() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let chunker = ChunkerKind::Rabin.build(small_chunk_config());
        let report = encode_stream(
            &scheme,
            chunker.as_ref(),
            std::io::empty(),
            &PipelineConfig::default(),
            |_, _| panic!("no secrets expected"),
        )
        .unwrap();
        assert_eq!(report.num_secrets, 0);
        assert_eq!(report.logical_bytes, 0);
    }

    #[test]
    fn encode_stream_single_thread_inline_mode_matches_threaded() {
        let scheme = CaontRs::new(4, 3).unwrap();
        let data = stream_data(128 * 1024);
        for kind in ChunkerKind::ALL {
            let chunker = kind.build(small_chunk_config());
            let run = |threads: usize| {
                let pool = Arc::new(BufferPool::new());
                let config = PipelineConfig {
                    encode_threads: threads,
                    ..test_pipeline_config(Arc::clone(&pool))
                };
                let mut out: Vec<(u64, Vec<Vec<u8>>, Vec<Fingerprint>)> = Vec::new();
                let report = encode_stream(
                    &scheme,
                    chunker.as_ref(),
                    &data[..],
                    &config,
                    |mut enc, pool| {
                        let shares = enc.shares.clone();
                        pool.put_all(&mut enc.shares);
                        out.push((enc.seq, shares, enc.fingerprints));
                        Ok(())
                    },
                )
                .unwrap();
                assert_eq!(
                    pool.stats().outstanding,
                    0,
                    "{}: leaked buffers",
                    kind.name()
                );
                (report, out)
            };
            let (inline_report, inline_out) = run(1);
            let (threaded_report, threaded_out) = run(3);
            assert_eq!(inline_report.num_secrets, threaded_report.num_secrets);
            assert_eq!(inline_report.logical_bytes, threaded_report.logical_bytes);
            assert_eq!(inline_out, threaded_out, "{}: path divergence", kind.name());
        }
    }

    #[test]
    fn encode_stream_single_thread_inline_mode_handles_every_failure() {
        let chunker = ChunkerKind::Fixed.build(small_chunk_config());
        let single = |pool: Arc<BufferPool>| PipelineConfig {
            encode_threads: 1,
            ..test_pipeline_config(pool)
        };

        // Sink error: nothing more is sunk, buffers drain.
        let scheme = CaontRs::new(4, 3).unwrap();
        let pool = Arc::new(BufferPool::new());
        let mut sunk = 0u64;
        let err = encode_stream(
            &scheme,
            chunker.as_ref(),
            &stream_data(512 * 1024)[..],
            &single(Arc::clone(&pool)),
            |mut enc, pool| {
                pool.put_all(&mut enc.shares);
                sunk += 1;
                if sunk == 5 {
                    return Err(CdStoreError::Remote("simulated store failure".into()));
                }
                Ok(())
            },
        )
        .expect_err("sink error must abort the stream");
        assert!(matches!(err, CdStoreError::Remote(_)));
        assert_eq!(sunk, 5);
        assert_eq!(pool.stats().outstanding, 0);

        // Scheme error mid-stream.
        let poison = PoisonScheme {
            inner: CaontRs::new(4, 3).unwrap(),
        };
        let mut data = stream_data(64 * 1024);
        data[20 * 1024] = POISON;
        let pool = Arc::new(BufferPool::new());
        let err = encode_stream(
            &poison,
            chunker.as_ref(),
            &data[..],
            &single(Arc::clone(&pool)),
            |mut enc, pool| {
                pool.put_all(&mut enc.shares);
                Ok(())
            },
        )
        .expect_err("poisoned chunk must fail the stream");
        assert!(matches!(
            err,
            CdStoreError::Sharing(SharingError::InvalidParameters(_))
        ));
        assert_eq!(pool.stats().outstanding, 0);

        // Encode panic becomes a typed error.
        let panicky = PanicScheme {
            inner: CaontRs::new(4, 3).unwrap(),
        };
        let mut data = stream_data(64 * 1024);
        data[32 * 1024] = POISON;
        let pool = Arc::new(BufferPool::new());
        let err = encode_stream(
            &panicky,
            chunker.as_ref(),
            &data[..],
            &single(Arc::clone(&pool)),
            |mut enc, pool| {
                pool.put_all(&mut enc.shares);
                Ok(())
            },
        )
        .expect_err("a panicking encode must fail the stream, not the process");
        assert!(matches!(
            err,
            CdStoreError::Sharing(SharingError::WorkerPanic(_))
        ));
        // The share buffers alive at the panic were freed by the unwind, not
        // returned, so the pool's outstanding counter keeps them: only the
        // panicking encode's own shares (n = 4) may be unaccounted for.
        assert!(pool.stats().outstanding <= 4);

        // Read error surfaces as Io.
        let pool = Arc::new(BufferPool::new());
        let err = encode_stream(
            &scheme,
            chunker.as_ref(),
            FailingReader { remaining: 8192 },
            &single(Arc::clone(&pool)),
            |mut enc, pool| {
                pool.put_all(&mut enc.shares);
                Ok(())
            },
        )
        .expect_err("read failure must surface");
        assert!(matches!(err, CdStoreError::Io(_)));
        assert_eq!(pool.stats().outstanding, 0);
    }

    #[test]
    fn pipeline_config_budget_accounts_for_every_stage() {
        let config = PipelineConfig {
            encode_threads: 3,
            chunk_queue: 4,
            encoded_queue: 5,
            read_buffer: 1,
            pool: None,
        };
        assert_eq!(config.max_live_secrets(), 4 + 5 + 3 + 2);
        assert_eq!(config.max_live_buffers(4), (4 + 5 + 3 + 2) * 5);
        let default = PipelineConfig::default();
        assert!(default.encode_threads >= 1);
        assert!(default.max_live_secrets() > default.encode_threads);
    }
}
