//! The CDStore server (§4): one per cloud, co-located with the storage
//! backend, performing inter-user deduplication and index/container
//! management on behalf of all clients.
//!
//! The server is built for concurrent multi-client traffic (§5.4, Figure 8):
//! every entry point takes `&self`, the indices are striped over per-shard
//! mutexes ([`cdstore_index::sharded`]), containers take per-user append
//! locks, and the traffic counters are atomics. `CdStoreServer` is
//! `Send + Sync`, so any number of client threads may upload, restore, and
//! delete against it simultaneously. Exactly-once physical storage under
//! races is guaranteed by
//! [`ShardedShareIndex::add_reference_or_store`], which holds the
//! fingerprint's stripe lock across the dedup test and the container append.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cdstore_crypto::Fingerprint;
use cdstore_index::{
    FileEntry, FileKey, ShardedFileIndex, ShardedKvStore, ShardedShareIndex, StoreOutcome,
};
use cdstore_storage::{ContainerStore, MemoryBackend, StorageBackend};

use crate::error::CdStoreError;
use crate::metadata::{FileRecipe, ShareMetadata};

/// Traffic and deduplication counters of one server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Share bytes received from clients (after intra-user dedup).
    pub received_share_bytes: u64,
    /// Share bytes actually written as unique shares (after inter-user dedup).
    pub physical_share_bytes: u64,
    /// Number of shares received.
    pub shares_received: u64,
    /// Number of shares that were inter-user duplicates.
    pub inter_user_duplicates: u64,
    /// Recipe bytes stored.
    pub recipe_bytes: u64,
    /// Share bytes served to clients during restores.
    pub served_share_bytes: u64,
}

/// Lock-free counterpart of [`ServerStats`].
#[derive(Default)]
struct AtomicServerStats {
    received_share_bytes: AtomicU64,
    physical_share_bytes: AtomicU64,
    shares_received: AtomicU64,
    inter_user_duplicates: AtomicU64,
    recipe_bytes: AtomicU64,
    served_share_bytes: AtomicU64,
}

impl AtomicServerStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            received_share_bytes: self.received_share_bytes.load(Ordering::Relaxed),
            physical_share_bytes: self.physical_share_bytes.load(Ordering::Relaxed),
            shares_received: self.shares_received.load(Ordering::Relaxed),
            inter_user_duplicates: self.inter_user_duplicates.load(Ordering::Relaxed),
            recipe_bytes: self.recipe_bytes.load(Ordering::Relaxed),
            served_share_bytes: self.served_share_bytes.load(Ordering::Relaxed),
        }
    }
}

/// One CDStore server. `Send + Sync`; all entry points take `&self`.
pub struct CdStoreServer {
    cloud_index: usize,
    /// Server-side fingerprint tag: inter-user deduplication never trusts the
    /// client-computed fingerprint (it re-fingerprints the share content with
    /// this tag), which defeats the ownership side-channel attack (§3.3).
    tag: Vec<u8>,
    share_index: ShardedShareIndex,
    file_index: ShardedFileIndex,
    /// `(user || client fingerprint)` → server fingerprint. Answers intra-user
    /// dedup queries and resolves recipe entries at restore time; because the
    /// key embeds the user id, a user can only ever resolve shares they own.
    user_shares: ShardedKvStore,
    containers: ContainerStore,
    stats: AtomicServerStats,
    next_version: AtomicU64,
}

impl CdStoreServer {
    /// Creates a server for cloud `cloud_index` with an in-memory backend.
    pub fn new(cloud_index: usize) -> Self {
        Self::with_backend(cloud_index, Arc::new(MemoryBackend::new()))
    }

    /// Creates a server over an explicit storage backend (e.g. a directory,
    /// or the backend of a simulated cloud).
    pub fn with_backend(cloud_index: usize, backend: Arc<dyn StorageBackend>) -> Self {
        CdStoreServer {
            cloud_index,
            tag: format!("cdstore-server-{cloud_index}").into_bytes(),
            share_index: ShardedShareIndex::new(),
            file_index: ShardedFileIndex::new(),
            user_shares: ShardedKvStore::new(),
            containers: ContainerStore::new(backend),
            stats: AtomicServerStats::default(),
            next_version: AtomicU64::new(1),
        }
    }

    /// The index of the cloud this server runs in.
    pub fn cloud_index(&self) -> usize {
        self.cloud_index
    }

    /// Traffic and deduplication counters.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Approximate size of the server's indices in bytes (drives the EC2
    /// instance choice in the cost model, §5.6).
    pub fn index_bytes(&self) -> usize {
        self.share_index.approximate_size()
            + self.file_index.approximate_size()
            + self.user_shares.approximate_size()
    }

    /// Number of globally unique shares stored.
    pub fn unique_shares(&self) -> usize {
        self.share_index.unique_shares()
    }

    /// Physical bytes stored for unique shares.
    pub fn physical_share_bytes(&self) -> u64 {
        self.stats.physical_share_bytes.load(Ordering::Relaxed)
    }

    fn user_share_key(user: u64, fp: &Fingerprint) -> Vec<u8> {
        let mut key = Vec::with_capacity(40);
        key.extend_from_slice(&user.to_be_bytes());
        key.extend_from_slice(fp.as_bytes());
        key
    }

    /// Answers an intra-user deduplication query: for each client-computed
    /// share fingerprint, has this user already uploaded the share to this
    /// server? (§3.3, intra-user deduplication.)
    pub fn intra_user_query(&self, user: u64, fingerprints: &[Fingerprint]) -> Vec<bool> {
        fingerprints
            .iter()
            .map(|fp| self.user_shares.contains(&Self::user_share_key(user, fp)))
            .collect()
    }

    /// Receives a batch of shares from a client and performs inter-user
    /// deduplication: the server recomputes its own fingerprint from the
    /// share content, stores only globally unique shares into containers, and
    /// records ownership (§3.3, inter-user deduplication).
    ///
    /// When two clients race on the same share content, the fingerprint's
    /// stripe lock serialises them: exactly one performs the container
    /// append, the other only gains a reference.
    ///
    /// Returns the number of bytes that were new (physically stored).
    pub fn store_shares(
        &self,
        user: u64,
        shares: &[(ShareMetadata, Vec<u8>)],
    ) -> Result<u64, CdStoreError> {
        let mut new_bytes = 0u64;
        for (meta, data) in shares {
            self.stats.shares_received.fetch_add(1, Ordering::Relaxed);
            self.stats
                .received_share_bytes
                .fetch_add(data.len() as u64, Ordering::Relaxed);
            // Server-side fingerprint: never reuse the client's.
            let server_fp = Fingerprint::tagged(&self.tag, data);
            let (_, outcome) = self
                .share_index
                .add_reference_or_store(&server_fp, user, || {
                    self.containers.store_share(user, server_fp, data)
                })
                .map_err(CdStoreError::Storage)?;
            match outcome {
                StoreOutcome::DedupInterUser => {
                    self.stats
                        .inter_user_duplicates
                        .fetch_add(1, Ordering::Relaxed);
                }
                // The user's own uploads raced past the intra-user query
                // stage; not an inter-user duplicate.
                StoreOutcome::DedupIntraUser => {}
                StoreOutcome::Stored => {
                    self.stats
                        .physical_share_bytes
                        .fetch_add(data.len() as u64, Ordering::Relaxed);
                    new_bytes += data.len() as u64;
                }
            }
            // Record the user's client-fingerprint → server-fingerprint link.
            self.user_shares.put(
                Self::user_share_key(user, &meta.fingerprint),
                server_fp.as_bytes().to_vec(),
            );
        }
        Ok(new_bytes)
    }

    /// Stores the file recipe and registers the file in the file index.
    pub fn put_file(
        &self,
        user: u64,
        encoded_pathname: &[u8],
        recipe: &FileRecipe,
    ) -> Result<(), CdStoreError> {
        let key = FileKey::new(user, encoded_pathname);
        let recipe_bytes = recipe.to_bytes();
        let recipe_fp = Fingerprint::tagged(b"recipe", key.as_bytes());
        let location = self
            .containers
            .store_recipe(user, recipe_fp, &recipe_bytes)?;
        self.stats
            .recipe_bytes
            .fetch_add(recipe_bytes.len() as u64, Ordering::Relaxed);
        // Store the location inside the file entry: the container id plus the
        // offset/size packed into the remaining fields. The version is
        // allocated before the index stripe lock, so racing re-uploads of the
        // same file may arrive out of order; put_if_newer keeps the highest
        // *on this server*. Cross-server consistency of a file's n recipes is
        // the caller's job: `CdStore` serialises whole-file writes per
        // (user, pathname), since each server orders versions independently.
        self.file_index.put_if_newer(
            key,
            FileEntry {
                recipe_container_id: location.container_id,
                file_size: ((location.offset as u64) << 32) | location.size as u64,
                num_secrets: recipe.num_secrets() as u64,
                version: self.next_version.fetch_add(1, Ordering::Relaxed),
            },
        );
        Ok(())
    }

    /// Whether the server knows the given file of the given user.
    pub fn has_file(&self, user: u64, encoded_pathname: &[u8]) -> bool {
        let key = FileKey::new(user, encoded_pathname);
        self.file_index.get(&key).is_some()
    }

    /// Fetches the file recipe for a user's file.
    pub fn get_recipe(
        &self,
        user: u64,
        encoded_pathname: &[u8],
    ) -> Result<FileRecipe, CdStoreError> {
        let key = FileKey::new(user, encoded_pathname);
        let entry = self.file_index.get(&key).ok_or_else(|| {
            CdStoreError::FileNotFound(format!("user {user} on cloud {}", self.cloud_index))
        })?;
        let location = cdstore_index::ShareLocation {
            container_id: entry.recipe_container_id,
            offset: (entry.file_size >> 32) as u32,
            size: (entry.file_size & 0xffff_ffff) as u32,
        };
        let bytes = self.containers.fetch(&location)?;
        FileRecipe::from_bytes(&bytes)
            .ok_or_else(|| CdStoreError::InconsistentMetadata("corrupt file recipe".into()))
    }

    /// Removes a file from the file index (garbage collection of the shares
    /// themselves is future work, as in the paper §4.7).
    pub fn delete_file(&self, user: u64, encoded_pathname: &[u8]) -> bool {
        let key = FileKey::new(user, encoded_pathname);
        self.file_index.remove(&key).is_some()
    }

    /// Fetches one share owned by `user`, identified by the *client*
    /// fingerprint recorded in the file recipe. Ownership is enforced: a user
    /// who never uploaded the share cannot retrieve it by fingerprint alone
    /// (the proof-of-ownership side channel of §3.3).
    pub fn fetch_share(&self, user: u64, client_fp: &Fingerprint) -> Result<Vec<u8>, CdStoreError> {
        let server_fp_bytes = self
            .user_shares
            .get(&Self::user_share_key(user, client_fp))
            .ok_or_else(|| CdStoreError::MissingShare(client_fp.to_hex()))?;
        let server_fp =
            Fingerprint::from_bytes(server_fp_bytes.try_into().map_err(|_| {
                CdStoreError::InconsistentMetadata("bad fingerprint mapping".into())
            })?);
        let entry = self
            .share_index
            .lookup(&server_fp)
            .ok_or_else(|| CdStoreError::MissingShare(client_fp.to_hex()))?;
        let data = self.containers.fetch(&entry.location)?;
        self.stats
            .served_share_bytes
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        Ok(data)
    }

    /// Fetches a batch of shares owned by `user`.
    pub fn fetch_shares(
        &self,
        user: u64,
        client_fps: &[Fingerprint],
    ) -> Result<Vec<Vec<u8>>, CdStoreError> {
        client_fps
            .iter()
            .map(|fp| self.fetch_share(user, fp))
            .collect()
    }

    /// Seals and persists all open containers (called at the end of a backup
    /// job and before shutting down).
    pub fn flush(&self) -> Result<(), CdStoreError> {
        self.containers.flush()?;
        Ok(())
    }

    /// Bytes currently stored at this server's cloud backend.
    pub fn backend_bytes(&self) -> u64 {
        self.containers.backend_bytes().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(fp: Fingerprint, size: u32, seq: u64) -> ShareMetadata {
        ShareMetadata {
            fingerprint: fp,
            share_size: size,
            secret_seq: seq,
            secret_size: size * 3,
        }
    }

    fn share(data: &[u8]) -> (ShareMetadata, Vec<u8>) {
        (
            meta(Fingerprint::of(data), data.len() as u32, 0),
            data.to_vec(),
        )
    }

    #[test]
    fn inter_user_dedup_stores_one_copy() {
        let server = CdStoreServer::new(0);
        let s = share(b"identical share content");
        let new_a = server.store_shares(1, std::slice::from_ref(&s)).unwrap();
        let new_b = server.store_shares(2, std::slice::from_ref(&s)).unwrap();
        assert_eq!(new_a, s.1.len() as u64);
        assert_eq!(new_b, 0, "second user's identical share is deduplicated");
        assert_eq!(server.unique_shares(), 1);
        assert_eq!(server.stats().inter_user_duplicates, 1);
        assert_eq!(server.stats().received_share_bytes, 2 * s.1.len() as u64);
        assert_eq!(server.physical_share_bytes(), s.1.len() as u64);
    }

    #[test]
    fn same_user_duplicate_is_not_counted_as_inter_user() {
        let server = CdStoreServer::new(0);
        let s = share(b"same user twice");
        server.store_shares(1, std::slice::from_ref(&s)).unwrap();
        // A second upload by the same user (e.g. two of their devices racing
        // past the intra-user query) is an intra-user duplicate.
        let second = server.store_shares(1, std::slice::from_ref(&s)).unwrap();
        assert_eq!(second, 0);
        assert_eq!(server.stats().inter_user_duplicates, 0);
        assert_eq!(server.unique_shares(), 1);
        assert_eq!(server.physical_share_bytes(), s.1.len() as u64);
    }

    #[test]
    fn intra_user_query_reports_only_own_uploads() {
        let server = CdStoreServer::new(0);
        let s1 = share(b"first");
        let s2 = share(b"second");
        server.store_shares(1, std::slice::from_ref(&s1)).unwrap();
        server.store_shares(2, std::slice::from_ref(&s2)).unwrap();
        // User 1 owns s1 but not s2 (even though s2 is stored): the reply must
        // not leak other users' deduplication state.
        let reply = server.intra_user_query(1, &[s1.0.fingerprint, s2.0.fingerprint]);
        assert_eq!(reply, vec![true, false]);
        let reply2 = server.intra_user_query(2, &[s1.0.fingerprint, s2.0.fingerprint]);
        assert_eq!(reply2, vec![false, true]);
    }

    #[test]
    fn fetch_share_enforces_ownership() {
        let server = CdStoreServer::new(0);
        let s = share(b"sensitive share of user 1");
        server.store_shares(1, std::slice::from_ref(&s)).unwrap();
        server.flush().unwrap();
        assert_eq!(server.fetch_share(1, &s.0.fingerprint).unwrap(), s.1);
        // User 2 knows the fingerprint but never uploaded the share: denied.
        assert!(matches!(
            server.fetch_share(2, &s.0.fingerprint),
            Err(CdStoreError::MissingShare(_))
        ));
    }

    #[test]
    fn recipes_round_trip_through_containers() {
        let server = CdStoreServer::new(1);
        let recipe = FileRecipe {
            file_size: 999,
            entries: (0..50u32)
                .map(|i| crate::metadata::RecipeEntry {
                    share_fingerprint: Fingerprint::of(&i.to_be_bytes()),
                    secret_size: 8192,
                })
                .collect(),
        };
        server.put_file(7, b"/home/u/backup.tar", &recipe).unwrap();
        assert!(server.has_file(7, b"/home/u/backup.tar"));
        assert!(!server.has_file(8, b"/home/u/backup.tar"));
        let fetched = server.get_recipe(7, b"/home/u/backup.tar").unwrap();
        assert_eq!(fetched, recipe);
        assert!(matches!(
            server.get_recipe(7, b"/missing"),
            Err(CdStoreError::FileNotFound(_))
        ));
    }

    #[test]
    fn newer_recipe_versions_replace_older_ones() {
        let server = CdStoreServer::new(0);
        let old = FileRecipe {
            file_size: 1,
            entries: vec![],
        };
        let new = FileRecipe {
            file_size: 2,
            entries: vec![crate::metadata::RecipeEntry {
                share_fingerprint: Fingerprint::of(b"x"),
                secret_size: 1,
            }],
        };
        server.put_file(1, b"/f", &old).unwrap();
        server.put_file(1, b"/f", &new).unwrap();
        assert_eq!(server.get_recipe(1, b"/f").unwrap(), new);
    }

    #[test]
    fn delete_file_removes_the_index_entry() {
        let server = CdStoreServer::new(0);
        let recipe = FileRecipe {
            file_size: 5,
            entries: vec![],
        };
        server.put_file(1, b"/f", &recipe).unwrap();
        assert!(server.delete_file(1, b"/f"));
        assert!(!server.delete_file(1, b"/f"));
        assert!(matches!(
            server.get_recipe(1, b"/f"),
            Err(CdStoreError::FileNotFound(_))
        ));
    }

    #[test]
    fn index_size_grows_with_stored_shares() {
        let server = CdStoreServer::new(0);
        let before = server.index_bytes();
        for i in 0..500u32 {
            let data = format!("share-{i}").into_bytes();
            server.store_shares(1, &[share(&data)]).unwrap();
        }
        assert!(server.index_bytes() > before);
        assert_eq!(server.unique_shares(), 500);
    }

    #[test]
    fn server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CdStoreServer>();
    }

    #[test]
    fn racing_identical_uploads_store_the_share_exactly_once() {
        let server = CdStoreServer::new(0);
        let users = 8u64;
        let shares: Vec<_> = (0..32u32)
            .map(|i| share(format!("contended share {i}").as_bytes()))
            .collect();
        let barrier = std::sync::Barrier::new(users as usize);
        let new_bytes: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (1..=users)
                .map(|user| {
                    let server = &server;
                    let shares = &shares;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        server.store_shares(user, shares).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let unique_bytes: u64 = shares.iter().map(|(_, d)| d.len() as u64).sum();
        // Across all racing users, each share was physically stored once.
        assert_eq!(new_bytes, unique_bytes);
        assert_eq!(server.physical_share_bytes(), unique_bytes);
        assert_eq!(server.unique_shares(), shares.len());
        let stats = server.stats();
        assert_eq!(stats.shares_received, users * shares.len() as u64);
        assert_eq!(
            stats.inter_user_duplicates,
            (users - 1) * shares.len() as u64
        );
        // Every user owns every share and can fetch it back.
        for user in 1..=users {
            for (meta, data) in &shares {
                assert_eq!(&server.fetch_share(user, &meta.fingerprint).unwrap(), data);
            }
        }
    }

    #[test]
    fn concurrent_users_interleave_stores_and_fetches() {
        let server = CdStoreServer::new(0);
        std::thread::scope(|scope| {
            for user in 1..=8u64 {
                let server = &server;
                scope.spawn(move || {
                    for i in 0..20u32 {
                        let data = format!("user {user} private share {i}").into_bytes();
                        let s = share(&data);
                        server.store_shares(user, std::slice::from_ref(&s)).unwrap();
                        assert_eq!(server.fetch_share(user, &s.0.fingerprint).unwrap(), data);
                        assert_eq!(
                            server.intra_user_query(user, &[s.0.fingerprint]),
                            vec![true]
                        );
                    }
                });
            }
        });
        assert_eq!(server.unique_shares(), 8 * 20);
        assert_eq!(server.stats().inter_user_duplicates, 0);
    }

    #[test]
    fn backend_bytes_reflect_flushed_containers() {
        let server = CdStoreServer::new(0);
        server
            .store_shares(1, &[share(&vec![7u8; 100_000])])
            .unwrap();
        assert_eq!(server.backend_bytes(), 0);
        server.flush().unwrap();
        assert!(server.backend_bytes() >= 100_000);
    }
}
