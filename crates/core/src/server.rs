//! The CDStore server (§4): one per cloud, co-located with the storage
//! backend, performing inter-user deduplication and index/container
//! management on behalf of all clients.
//!
//! The server is built for concurrent multi-client traffic (§5.4, Figure 8):
//! every entry point takes `&self`, the indices are striped over per-shard
//! mutexes ([`cdstore_index::sharded`]), containers take per-user append
//! locks, and the traffic counters are atomics. `CdStoreServer` is
//! `Send + Sync`, so any number of client threads may upload, restore, and
//! delete against it simultaneously. Exactly-once physical storage under
//! races is guaranteed by
//! [`ShardedShareIndex::add_reference_or_store`], which holds the
//! fingerprint's stripe lock across the dedup test and the container append.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cdstore_crypto::Fingerprint;
use cdstore_index::{
    sharded::infallible, BlockCacheStats, FileEntry, FileKey, FilePutOutcome, KvStoreConfig,
    ShardedFileIndex, ShardedKvStore, ShardedShareIndex, ShareEntry, ShareLocation, StoreOutcome,
};
use cdstore_storage::{
    ContainerKind, ContainerStore, ContainerUsage, Journal, MemoryBackend, StorageBackend,
    StorageError, StoreUtilisation,
};
use parking_lot::{Mutex, RwLock};

use crate::error::CdStoreError;
use crate::metadata::{FileRecipe, ShareMetadata};
use crate::transport::{ShareVerdict, StoreReceipt};
use crate::wal::{MetaRecord, Snapshot};

/// Number of times share and recipe reads re-resolve their index entry when
/// the container they point at vanishes mid-read: an online compaction pass
/// may delete a container between a reader's index lookup and its container
/// fetch, in which case the index already points at the relocated copy and
/// one retry suffices (bounded higher for safety).
const RELOCATION_RETRIES: usize = 3;

/// Floor on the journal records between automatic checkpoints (checked at
/// the end of `put_file`, `delete_file`, `flush`, and `gc`). A checkpoint
/// costs a full snapshot of the indices, so the effective cadence also
/// scales with them: the trigger additionally waits for at least a quarter
/// of the last snapshot's entry count in new records. Write amplification
/// therefore stays bounded (≈ 4× in steady state) instead of growing with
/// index size, while recovery replay stays bounded by
/// `max(this floor, index entries / 4)` records.
pub const CHECKPOINT_INTERVAL_RECORDS: u64 = 8192;

/// Where a server keeps its three metadata indexes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum IndexMode {
    /// Fully memory-resident indexes, checkpointed inline into the journal's
    /// snapshot blob — the original behaviour, fine while the index fits in
    /// RAM.
    #[default]
    Memory,
    /// Disk-resident indexes: each index stripe spills its LSM runs to the
    /// server's storage backend (Bloom-filtered, block-cached reads), and
    /// checkpoints flush the runs durable then commit a small external
    /// marker instead of serialising the index bodies. Memory use stays
    /// bounded by `memtables + Bloom filters + block caches` however many
    /// fingerprints the server tracks.
    Disk(KvStoreConfig),
}

/// Backend object-name prefix shared by every disk-resident index structure
/// (`idx-{store}-...`); its presence on a backend is how
/// [`CdStoreServer::open`] detects that the previous incarnation ran with
/// [`IndexMode::Disk`].
const INDEX_KEY_PREFIX: &str = "idx-";

/// Stripe-set names of the three disk-resident indexes on the backend.
const SHARE_INDEX_NAME: &str = "share";
const FILE_INDEX_NAME: &str = "file";
const USER_MAP_NAME: &str = "usermap";

/// What [`CdStoreServer::open`] found and did while rebuilding a server from
/// backend-only state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a valid checkpoint was found (replay then covered only the
    /// journal suffix written since it).
    pub used_checkpoint: bool,
    /// Journal records replayed on top of the checkpoint.
    pub records_replayed: usize,
    /// Whether the journal ended in a torn (truncated or checksum-failing)
    /// record, discarded along with everything after it.
    pub torn_tail: bool,
    /// Sealed containers found on the backend and scanned by the
    /// verification pass.
    pub containers_scanned: usize,
    /// Share-index entries pruned because they pointed into containers that
    /// never reached the backend (open at the crash).
    pub share_entries_pruned: usize,
    /// File-index entries pruned because their recipe was unreadable or
    /// referenced a pruned share.
    pub file_entries_pruned: usize,
    /// User-share ownership mappings pruned because their share was pruned.
    pub mappings_pruned: usize,
    /// Share-index entries whose reference counts were rewritten (or whose
    /// entry was dropped outright) by the recount against surviving recipes:
    /// the journaled counts included references from operations in flight at
    /// the crash (transient upload refs, half-finished puts or deletes).
    pub share_refs_reconciled: usize,
}

impl RecoveryReport {
    /// Whether recovery had to discard or repair anything (a crash
    /// mid-traffic); a graceful restart (flush before shutdown) recovers
    /// with no pruning and no reconciliation.
    pub fn pruned_anything(&self) -> bool {
        self.share_entries_pruned > 0
            || self.file_entries_pruned > 0
            || self.mappings_pruned > 0
            || self.share_refs_reconciled > 0
    }
}

/// Tuning knobs of a garbage-collection pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcConfig {
    /// Dead-byte fraction above which a sealed share container is compacted
    /// (its live shares rewritten into fresh containers). Fully dead
    /// containers are always deleted outright, whatever the threshold.
    pub dead_ratio: f64,
}

impl Default for GcConfig {
    fn default() -> Self {
        // Rewrite a container once at least half of it is garbage: below
        // that, the bytes rewritten per byte reclaimed exceed 1 and the
        // vacuum does more I/O than it saves.
        GcConfig { dead_ratio: 0.5 }
    }
}

/// What one garbage-collection pass accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Sealed containers deleted because nothing in them was live.
    pub containers_deleted: u64,
    /// Sealed share containers compacted (live shares rewritten, container
    /// deleted).
    pub containers_compacted: u64,
    /// Live shares rewritten into fresh containers during compaction.
    pub shares_rewritten: u64,
    /// Dead payload bytes reclaimed from the backend.
    pub reclaimed_bytes: u64,
    /// Live payload bytes rewritten into fresh containers.
    pub rewritten_bytes: u64,
}

impl GcReport {
    /// Folds another report into this one (aggregation across servers).
    pub fn absorb(&mut self, other: &GcReport) {
        self.containers_deleted += other.containers_deleted;
        self.containers_compacted += other.containers_compacted;
        self.shares_rewritten += other.shares_rewritten;
        self.reclaimed_bytes += other.reclaimed_bytes;
        self.rewritten_bytes += other.rewritten_bytes;
    }
}

/// Traffic and deduplication counters of one server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Share bytes received from clients (after intra-user dedup).
    pub received_share_bytes: u64,
    /// Share bytes actually written as unique shares (after inter-user dedup).
    pub physical_share_bytes: u64,
    /// Number of shares received.
    pub shares_received: u64,
    /// Number of shares that were inter-user duplicates.
    pub inter_user_duplicates: u64,
    /// Recipe bytes stored.
    pub recipe_bytes: u64,
    /// Share bytes served to clients during restores.
    pub served_share_bytes: u64,
}

/// Lock-free counterpart of [`ServerStats`].
#[derive(Default)]
struct AtomicServerStats {
    received_share_bytes: AtomicU64,
    physical_share_bytes: AtomicU64,
    shares_received: AtomicU64,
    inter_user_duplicates: AtomicU64,
    recipe_bytes: AtomicU64,
    served_share_bytes: AtomicU64,
}

impl AtomicServerStats {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            received_share_bytes: self.received_share_bytes.load(Ordering::Relaxed),
            physical_share_bytes: self.physical_share_bytes.load(Ordering::Relaxed),
            shares_received: self.shares_received.load(Ordering::Relaxed),
            inter_user_duplicates: self.inter_user_duplicates.load(Ordering::Relaxed),
            recipe_bytes: self.recipe_bytes.load(Ordering::Relaxed),
            served_share_bytes: self.served_share_bytes.load(Ordering::Relaxed),
        }
    }
}

/// One CDStore server. `Send + Sync`; all entry points take `&self`.
pub struct CdStoreServer {
    cloud_index: usize,
    /// Server-side fingerprint tag: inter-user deduplication never trusts the
    /// client-computed fingerprint (it re-fingerprints the share content with
    /// this tag), which defeats the ownership side-channel attack (§3.3).
    tag: Vec<u8>,
    share_index: ShardedShareIndex,
    file_index: ShardedFileIndex,
    /// `(user || client fingerprint)` → server fingerprint. Answers intra-user
    /// dedup queries and resolves recipe entries at restore time; because the
    /// key embeds the user id, a user can only ever resolve shares they own.
    user_shares: ShardedKvStore,
    containers: ContainerStore,
    /// The durable metadata journal, persisted through the same backend as
    /// the containers. Every index mutation appends one state-level record
    /// (under the mutated key's stripe lock, so per-key order is exact)
    /// before the operation returns to the client.
    journal: Journal,
    /// Excludes index mutations while [`CdStoreServer::checkpoint`] exports
    /// and commits: without it, a record could land in the journal epoch the
    /// checkpoint is about to sweep without being captured by its snapshot.
    /// Mutations take the read side (cheap, fully concurrent with each
    /// other); the checkpoint takes the write side.
    ckpt_lock: RwLock<()>,
    /// Journal appends that failed (a backend hiccup): the in-memory indices
    /// are the source of truth and were already updated, so an append
    /// failure never fails the client operation — it is counted here, and
    /// the next checkpoint trigger fires eagerly to re-baseline durability
    /// from the full in-memory state.
    journal_lapses: AtomicU64,
    /// Entry count of the last committed checkpoint snapshot: the adaptive
    /// checkpoint cadence waits for new records proportional to it, so the
    /// O(index) snapshot cost amortises over O(index) mutations.
    last_snapshot_entries: AtomicU64,
    stats: AtomicServerStats,
    next_version: AtomicU64,
    /// Serialises garbage-collection passes: concurrent `gc()` calls would
    /// otherwise race to copy the same containers. Client traffic never
    /// takes this lock.
    gc_lock: Mutex<()>,
    /// Where the three indexes live; decides how checkpoints serialise them.
    index_mode: IndexMode,
}

impl CdStoreServer {
    /// Creates a server for cloud `cloud_index` with an in-memory backend.
    pub fn new(cloud_index: usize) -> Self {
        Self::with_backend(cloud_index, Arc::new(MemoryBackend::new()))
    }

    /// Creates a server over an explicit storage backend (e.g. a directory,
    /// or the backend of a simulated cloud), starting from empty state with
    /// memory-resident indexes. Any journal state a previous incarnation
    /// left on the backend is cleared; to *recover* that state instead, use
    /// [`CdStoreServer::open`].
    pub fn with_backend(cloud_index: usize, backend: Arc<dyn StorageBackend>) -> Self {
        Self::with_backend_and_index(cloud_index, backend, IndexMode::Memory)
            .expect("memory-mode construction is infallible")
    }

    /// [`CdStoreServer::with_backend`] with an explicit [`IndexMode`]: in
    /// [`IndexMode::Disk`] the three indexes spill their runs to the same
    /// backend the containers use, starting fresh (any disk-index state a
    /// previous incarnation left is discarded — use [`CdStoreServer::open`]
    /// to resume it).
    pub fn with_backend_and_index(
        cloud_index: usize,
        backend: Arc<dyn StorageBackend>,
        index_mode: IndexMode,
    ) -> Result<Self, CdStoreError> {
        let journal = Journal::fresh(backend.clone());
        Self::assemble(cloud_index, backend, journal, index_mode, false)
    }

    /// Builds the three indexes per `index_mode` (resuming on-disk runs iff
    /// `resume`) and wires the server together.
    fn assemble(
        cloud_index: usize,
        backend: Arc<dyn StorageBackend>,
        journal: Journal,
        index_mode: IndexMode,
        resume: bool,
    ) -> Result<Self, CdStoreError> {
        let (share_index, file_index, user_shares) = match index_mode {
            IndexMode::Memory => (
                ShardedShareIndex::new(),
                ShardedFileIndex::new(),
                ShardedKvStore::new(),
            ),
            IndexMode::Disk(config) if resume => (
                ShardedShareIndex::open(backend.clone(), SHARE_INDEX_NAME, config)
                    .map_err(CdStoreError::Storage)?,
                ShardedFileIndex::open(backend.clone(), FILE_INDEX_NAME, config)
                    .map_err(CdStoreError::Storage)?,
                ShardedKvStore::open(backend.clone(), USER_MAP_NAME, config)
                    .map_err(CdStoreError::Storage)?,
            ),
            IndexMode::Disk(config) => (
                ShardedShareIndex::create(backend.clone(), SHARE_INDEX_NAME, config)
                    .map_err(CdStoreError::Storage)?,
                ShardedFileIndex::create(backend.clone(), FILE_INDEX_NAME, config)
                    .map_err(CdStoreError::Storage)?,
                ShardedKvStore::create(backend.clone(), USER_MAP_NAME, config)
                    .map_err(CdStoreError::Storage)?,
            ),
        };
        Ok(CdStoreServer {
            cloud_index,
            tag: format!("cdstore-server-{cloud_index}").into_bytes(),
            share_index,
            file_index,
            user_shares,
            containers: ContainerStore::new(backend),
            journal,
            ckpt_lock: RwLock::new(()),
            journal_lapses: AtomicU64::new(0),
            last_snapshot_entries: AtomicU64::new(0),
            stats: AtomicServerStats::default(),
            next_version: AtomicU64::new(1),
            gc_lock: Mutex::new(()),
            index_mode,
        })
    }

    /// Rebuilds a server from backend-only state: loads the newest valid
    /// checkpoint, replays the journal suffix written since (tolerating a
    /// torn final record), cross-checks the rebuilt indices against the
    /// sealed container headers actually present on the backend — pruning
    /// anything that points at data lost with the crash — and commits a
    /// fresh checkpoint of the recovered state before returning.
    ///
    /// Traffic counters ([`CdStoreServer::stats`]) are per-process and start
    /// at zero; the dedup state itself (unique shares, reference counts,
    /// ownership) is recovered exactly for everything that was sealed and
    /// journaled.
    pub fn open(
        cloud_index: usize,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<(Self, RecoveryReport), CdStoreError> {
        // Auto-detect the index mode of the previous incarnation: disk-
        // resident indexes leave their run/manifest objects on the backend.
        let disk = backend
            .list()
            .map_err(CdStoreError::Storage)?
            .iter()
            .any(|key| key.starts_with(INDEX_KEY_PREFIX));
        let mode = if disk {
            IndexMode::Disk(KvStoreConfig::default())
        } else {
            IndexMode::Memory
        };
        Self::open_with_index(cloud_index, backend, mode)
    }

    /// [`CdStoreServer::open`] with an explicit [`IndexMode`] (and, for
    /// [`IndexMode::Disk`], explicit tuning) instead of auto-detection.
    ///
    /// In disk mode the indexes are *opened* from their on-disk runs first;
    /// an external-marker checkpoint then installs nothing (the runs are the
    /// checkpoint), and journal replay reconciles the runs with every record
    /// written after their last flush — records are absolute post-states, so
    /// re-applying ones a run already absorbed is a no-op. Opening a backend
    /// whose checkpoint is an external marker in [`IndexMode::Memory`] is an
    /// error: the index bodies are not in the blob to install.
    pub fn open_with_index(
        cloud_index: usize,
        backend: Arc<dyn StorageBackend>,
        index_mode: IndexMode,
    ) -> Result<(Self, RecoveryReport), CdStoreError> {
        let loaded = Journal::load(&*backend).map_err(CdStoreError::Storage)?;
        let journal = Journal::resume(backend.clone(), &loaded);
        let server = Self::assemble(cloud_index, backend, journal, index_mode, true)?;
        let mut report = RecoveryReport {
            used_checkpoint: loaded.checkpoint.is_some(),
            records_replayed: loaded.records.len(),
            torn_tail: loaded.torn,
            ..RecoveryReport::default()
        };
        if let Some(blob) = &loaded.checkpoint {
            let snapshot = Snapshot::decode(blob).ok_or_else(|| {
                CdStoreError::InconsistentMetadata("unreadable checkpoint snapshot".into())
            })?;
            if snapshot.external_indexes {
                if matches!(index_mode, IndexMode::Memory) {
                    return Err(CdStoreError::InconsistentMetadata(
                        "checkpoint marks the indexes as disk-resident, but the server \
                         was opened in memory index mode"
                            .into(),
                    ));
                }
                // Nothing to install: the opened runs *are* the snapshot.
            } else {
                for (fp, entry) in &snapshot.shares {
                    server.share_index.insert_entry(fp, entry);
                }
                for (key, entry) in snapshot.files {
                    server.file_index.put(key, entry);
                }
                for (key, value) in snapshot.mappings {
                    server.user_shares.put(key, value);
                }
            }
        }
        for payload in &loaded.records {
            // Unknown tags (a rolled-back binary opening a newer journal)
            // are skipped rather than fatal; the verification pass below
            // prunes whatever inconsistency that leaves.
            if let Some(record) = MetaRecord::decode(payload) {
                server.apply_record(record);
            }
        }
        server.verify_recovered_state(&mut report)?;
        // Re-baseline: the recovered state becomes the new checkpoint, which
        // also retires the replayed epoch (and any torn tail) for good.
        server.checkpoint()?;
        Ok((server, report))
    }

    /// Applies one replayed journal record verbatim (no re-journaling, no
    /// reference bookkeeping: records carry absolute post-states).
    fn apply_record(&self, record: MetaRecord) {
        match record {
            MetaRecord::ShareUpsert { fp, entry } => self.share_index.insert_entry(&fp, &entry),
            MetaRecord::ShareDelete { fp } => self.share_index.remove_entry(&fp),
            MetaRecord::FileUpsert { key, entry } => self.file_index.put(key, entry),
            MetaRecord::FileDelete { key } => {
                self.file_index.remove(&key);
            }
            MetaRecord::MapPut { key, value } => self.user_shares.put(key, value),
            MetaRecord::MapDelete { key } => self.user_shares.delete(&key),
        }
    }

    /// The container-scan verification pass of recovery: cross-checks the
    /// replayed indices against what is actually on the backend, prunes
    /// entries pointing at data lost with the crash (open containers never
    /// sealed), recomputes every share's reference counts from the recipes
    /// that actually survived, rebuilds the liveness ledger from the sealed
    /// container headers, and raises the id/version allocators past
    /// everything seen.
    ///
    /// The pass is deterministic in its inputs and mutates the indices only
    /// through the verbatim (non-journaling) primitives: nothing is appended
    /// to the journal until the final recovery checkpoint commits, so a
    /// crash *during* recovery finds the previous epoch untouched and simply
    /// re-runs the identical pass — recovery is idempotent.
    fn verify_recovered_state(&self, report: &mut RecoveryReport) -> Result<(), CdStoreError> {
        let ids = self
            .containers
            .backend_container_ids()
            .map_err(CdStoreError::Storage)?;
        let id_set: HashSet<u64> = ids.iter().copied().collect();
        report.containers_scanned = ids.len();
        let mut max_id = ids.iter().copied().max().unwrap_or(0);

        // Working copy of the share index: exported once and kept in
        // lockstep with the verbatim index mutations below, so the pass
        // pays a single O(index) decode per structure rather than one per
        // step (recovery is single-threaded; nothing else mutates).
        let mut shares: std::collections::HashMap<[u8; 32], ShareEntry> = self
            .share_index
            .export()
            .into_iter()
            .map(|(fp, entry)| (*fp.as_bytes(), entry))
            .collect();

        // 1. Share entries pointing into containers that never reached the
        // backend are unrecoverable: prune them wholesale.
        shares.retain(|fp_bytes, entry| {
            max_id = max_id.max(entry.location.container_id);
            if id_set.contains(&entry.location.container_id) {
                true
            } else {
                self.share_index
                    .remove_entry(&Fingerprint::from_bytes(*fp_bytes));
                report.share_entries_pruned += 1;
                false
            }
        });

        // 2. File entries: the recipe must be present and every recipe
        // entry must resolve through the owner's mappings to a surviving
        // share; files that fail are pruned. Only *durable* absence prunes
        // — a recipe object that is gone or fails its container checksum is
        // lost for good, but a transient backend error fails recovery
        // instead (the caller retries `open`), so a one-off read hiccup
        // can never be laundered into a permanent prune by the checkpoint
        // that recovery commits on success.
        let mut max_version = 0u64;
        let mut surviving: Vec<(FileEntry, FileRecipe)> = Vec::new();
        for (key, entry) in self.file_index.export() {
            max_version = max_version.max(entry.version);
            max_id = max_id.max(entry.recipe_container_id);
            let recipe = if id_set.contains(&entry.recipe_container_id) {
                match self.containers.fetch(&entry.recipe_location()) {
                    Ok(bytes) => FileRecipe::from_bytes(&bytes),
                    Err(StorageError::NotFound(_)) | Err(StorageError::Corrupt(_)) => None,
                    Err(e) => return Err(CdStoreError::Storage(e)),
                }
            } else {
                None
            };
            let complete = recipe
                .as_ref()
                .map(|recipe| {
                    recipe.entries.iter().all(|re| {
                        self.resolve_server_fp(entry.user, &re.share_fingerprint)
                            .map(|server_fp| shares.contains_key(server_fp.as_bytes()))
                            .unwrap_or(false)
                    })
                })
                .unwrap_or(false);
            if complete {
                surviving.push((entry, recipe.expect("complete implies readable")));
            } else {
                self.file_index.remove(&key);
                report.file_entries_pruned += 1;
            }
        }

        // 3. Recount: a share's reference count must equal the number of
        // surviving recipe entries pointing at it (the reclamation
        // invariant). The journaled counts can disagree — they include
        // references taken by operations still in flight at the crash
        // (transient upload refs, half-finished puts, deletes whose releases
        // were cut off) and miss releases owed by files pruned above — so
        // they are recomputed wholesale rather than patched incrementally.
        // Shares the recount leaves with no owners are dropped; their
        // container bytes go dead in the ledger rebuild below and gc
        // reclaims them, so nothing in-flight leaks space.
        let mut recount: std::collections::HashMap<[u8; 32], std::collections::BTreeMap<u64, u32>> =
            std::collections::HashMap::new();
        for (entry, recipe) in &surviving {
            for re in &recipe.entries {
                let Some(server_fp) = self.resolve_server_fp(entry.user, &re.share_fingerprint)
                else {
                    continue; // unreachable: step 2 checked resolvability
                };
                *recount
                    .entry(*server_fp.as_bytes())
                    .or_default()
                    .entry(entry.user)
                    .or_insert(0) += 1;
            }
        }
        shares.retain(|fp_bytes, entry| match recount.get(fp_bytes) {
            Some(owners) => {
                let owners: Vec<(u64, u32)> = owners.iter().map(|(&u, &c)| (u, c)).collect();
                let mut current = entry.owners.clone();
                current.sort_unstable();
                if current != owners {
                    entry.owners = owners;
                    self.share_index
                        .insert_entry(&Fingerprint::from_bytes(*fp_bytes), entry);
                    report.share_refs_reconciled += 1;
                }
                true
            }
            None => {
                self.share_index
                    .remove_entry(&Fingerprint::from_bytes(*fp_bytes));
                report.share_refs_reconciled += 1;
                false
            }
        });

        // 4. Ownership mappings must resolve to a surviving share the
        // mapping's user still owns (with the recounted ownership).
        for (key, value) in self.user_shares.export() {
            let valid = key.len() == 40 && value.len() == 32 && {
                let user = u64::from_be_bytes(key[0..8].try_into().expect("8 bytes"));
                let fp_bytes: [u8; 32] = value.as_slice().try_into().expect("32 bytes");
                shares
                    .get(&fp_bytes)
                    .map(|entry| entry.owned_by(user))
                    .unwrap_or(false)
            };
            if !valid {
                self.user_shares.delete(&key);
                report.mappings_pruned += 1;
            }
        }

        // 5. Rebuild the liveness ledger — from the recovered indices and
        // the backend object *sizes*, never the payloads: a blob is live iff
        // an index entry points at it, and steps 1–4 made index ↔ backend
        // consistent, so live bytes (and each live container's kind) are
        // exactly derivable without downloading a single container. Dead
        // bytes are the remainder of the object size, which over-counts by
        // the container's header framing — harmless: outright deletion
        // triggers on live == 0 (exact), and compaction re-reads the real
        // container anyway. This keeps `open` O(index + container count)
        // instead of O(stored bytes).
        let mut live_share: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for entry in shares.values() {
            *live_share.entry(entry.location.container_id).or_insert(0) +=
                entry.location.size as u64;
        }
        let mut live_recipe: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for (entry, _) in &surviving {
            *live_recipe.entry(entry.recipe_container_id).or_insert(0) += entry.recipe_size as u64;
        }
        let mut ledger = Vec::with_capacity(ids.len());
        for &id in &ids {
            // Containers are single-kind, so whichever index references one
            // names its kind; unreferenced containers are fully dead and
            // their kind is irrelevant (deletion does not consult it).
            let (kind, live) = if let Some(&live) = live_share.get(&id) {
                (ContainerKind::Share, live)
            } else if let Some(&live) = live_recipe.get(&id) {
                (ContainerKind::Recipe, live)
            } else {
                (ContainerKind::Share, 0)
            };
            let object_bytes = self
                .containers
                .backend_container_size(id)
                .map_err(CdStoreError::Storage)?;
            ledger.push((
                id,
                ContainerUsage {
                    kind,
                    live_bytes: live,
                    dead_bytes: object_bytes.saturating_sub(live),
                    sealed: true,
                },
            ));
        }
        self.containers.restore_ledger(ledger);
        self.containers.bump_next_container_id(max_id + 1);
        self.next_version.store(max_version + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Appends one record to the write-ahead journal. Best-effort by design:
    /// the in-memory indices were already updated under the same stripe
    /// lock, so an append failure counts a lapse instead of failing the
    /// client operation, and the next checkpoint trigger fires eagerly to
    /// re-baseline durability from the full in-memory state. The residual
    /// window is explicit: if the host crashes after a lapse but before
    /// that checkpoint lands, the lapsed (acknowledged) mutations are lost
    /// with the process — the trade accepted for keeping the intricate
    /// multi-step mutation paths free of partial-journal rollback logic.
    fn journal_record(&self, record: &MetaRecord) {
        if self.journal.append(&record.encode()).is_err() {
            self.journal_lapses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Commits a checkpoint: a full snapshot of the three metadata
    /// structures, superseding the journal so recovery replays only records
    /// written after this call. Runs with index mutations excluded (they
    /// block for the duration); triggered automatically past the adaptive
    /// cadence bound (see [`CHECKPOINT_INTERVAL_RECORDS`]), or explicitly.
    pub fn checkpoint(&self) -> Result<(), CdStoreError> {
        let _excl = self.ckpt_lock.write();
        self.checkpoint_locked()
    }

    /// The body of [`CdStoreServer::checkpoint`]; the caller must hold the
    /// write side of `ckpt_lock`.
    ///
    /// Memory mode serialises the three index bodies inline. Disk mode
    /// instead flushes every index stripe's write buffer into durable runs
    /// *before* committing a small external marker: once the marker commits
    /// (and the superseded journal epoch is swept), the runs are the only
    /// copy of the pre-checkpoint mutations, so the flush-then-commit order
    /// is what makes the sweep safe.
    fn checkpoint_locked(&self) -> Result<(), CdStoreError> {
        let (blob, entries) = match self.index_mode {
            IndexMode::Memory => {
                let snapshot = Snapshot {
                    shares: self.share_index.export(),
                    files: self.file_index.export(),
                    mappings: self.user_shares.export(),
                    ..Snapshot::default()
                };
                let entries =
                    snapshot.shares.len() + snapshot.files.len() + snapshot.mappings.len();
                (snapshot.encode(), entries)
            }
            IndexMode::Disk(_) => {
                self.share_index
                    .flush_runs()
                    .map_err(CdStoreError::Storage)?;
                self.file_index
                    .flush_runs()
                    .map_err(CdStoreError::Storage)?;
                self.user_shares
                    .flush_runs()
                    .map_err(CdStoreError::Storage)?;
                let entries = self.share_index.unique_shares()
                    + self.file_index.len()
                    + self.user_shares.len();
                (Snapshot::external().encode(), entries)
            }
        };
        self.journal
            .commit_checkpoint(&blob)
            .map_err(CdStoreError::Storage)?;
        self.last_snapshot_entries
            .store(entries as u64, Ordering::Relaxed);
        self.journal_lapses.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Whether the journal has outgrown the adaptive cadence bound (or a
    /// journal append ever failed — only a checkpoint restores full
    /// durability after a lapse).
    fn checkpoint_due(&self) -> bool {
        let bound =
            CHECKPOINT_INTERVAL_RECORDS.max(self.last_snapshot_entries.load(Ordering::Relaxed) / 4);
        self.journal.records_since_checkpoint() >= bound
            || self.journal_lapses.load(Ordering::Relaxed) > 0
    }

    /// Commits a checkpoint if one is due. The trigger is re-checked under
    /// the write lock, so a herd of threads crossing the cadence bound
    /// together commits one snapshot, not one each. Best-effort: a failed
    /// checkpoint leaves the journal as the (longer) recovery source and is
    /// retried at the next trigger.
    fn maybe_checkpoint(&self) {
        if !self.checkpoint_due() {
            return;
        }
        let _excl = self.ckpt_lock.write();
        if !self.checkpoint_due() {
            return; // another thread committed while we queued
        }
        let _ = self.checkpoint_locked();
    }

    /// The index of the cloud this server runs in.
    pub fn cloud_index(&self) -> usize {
        self.cloud_index
    }

    /// Traffic and deduplication counters.
    pub fn stats(&self) -> ServerStats {
        self.stats.snapshot()
    }

    /// Approximate size of the server's indices in bytes (drives the EC2
    /// instance choice in the cost model, §5.6). In [`IndexMode::Disk`] this
    /// is the *resident* footprint — write buffers, Bloom filters, fence
    /// pointers, and block caches — not the spilled run bytes.
    pub fn index_bytes(&self) -> usize {
        self.share_index.approximate_size()
            + self.file_index.approximate_size()
            + self.user_shares.approximate_size()
    }

    /// Where this server keeps its indexes.
    pub fn index_mode(&self) -> IndexMode {
        self.index_mode
    }

    /// Summed block-cache counters across all three indexes' stripes
    /// (`None` in [`IndexMode::Memory`]).
    pub fn index_cache_stats(&self) -> Option<BlockCacheStats> {
        let all = [
            self.share_index.cache_stats(),
            self.file_index.cache_stats(),
            self.user_shares.cache_stats(),
        ];
        let mut total: Option<BlockCacheStats> = None;
        for s in all.into_iter().flatten() {
            let t = total.get_or_insert_with(BlockCacheStats::default);
            t.hits += s.hits;
            t.misses += s.misses;
            t.evictions += s.evictions;
            t.current_bytes += s.current_bytes;
            t.peak_bytes += s.peak_bytes;
            t.capacity_bytes += s.capacity_bytes;
        }
        total
    }

    /// Number of globally unique shares stored.
    pub fn unique_shares(&self) -> usize {
        self.share_index.unique_shares()
    }

    /// Cumulative physical bytes ever written for unique shares (a traffic
    /// counter: deletes do not decrease it — see
    /// [`CdStoreServer::live_share_bytes`] for the current footprint).
    pub fn physical_share_bytes(&self) -> u64 {
        self.stats.physical_share_bytes.load(Ordering::Relaxed)
    }

    /// Bytes of unique shares currently referenced by at least one file —
    /// the live footprint deletion shrinks and garbage collection reclaims.
    pub fn live_share_bytes(&self) -> u64 {
        self.share_index.physical_bytes()
    }

    fn user_share_key(user: u64, fp: &Fingerprint) -> Vec<u8> {
        let mut key = Vec::with_capacity(40);
        key.extend_from_slice(&user.to_be_bytes());
        key.extend_from_slice(fp.as_bytes());
        key
    }

    /// Answers an intra-user deduplication query: for each client-computed
    /// share fingerprint, has this user already uploaded the share to this
    /// server? (§3.3, intra-user deduplication.)
    pub fn intra_user_query(&self, user: u64, fingerprints: &[Fingerprint]) -> Vec<bool> {
        fingerprints
            .iter()
            .map(|fp| self.user_shares.contains(&Self::user_share_key(user, fp)))
            .collect()
    }

    /// Receives a batch of shares from a client and performs inter-user
    /// deduplication: the server recomputes its own fingerprint from the
    /// share content, stores only globally unique shares into containers, and
    /// records ownership (§3.3, inter-user deduplication).
    ///
    /// When two clients race on the same share content, the fingerprint's
    /// stripe lock serialises them: exactly one performs the container
    /// append, the other only gains a reference.
    ///
    /// Returns the number of bytes that were new (physically stored).
    pub fn store_shares(
        &self,
        user: u64,
        shares: &[(ShareMetadata, Vec<u8>)],
    ) -> Result<u64, CdStoreError> {
        self.store_shares_detailed(user, shares)
            .map(|receipt| receipt.new_bytes)
    }

    /// [`Self::store_shares`], additionally reporting a per-share dedup
    /// verdict. This is the shape the upload RPC responds with: a networked
    /// client learns which shares deduplicated without a stats round-trip.
    pub fn store_shares_detailed(
        &self,
        user: u64,
        shares: &[(ShareMetadata, Vec<u8>)],
    ) -> Result<StoreReceipt, CdStoreError> {
        let mut new_bytes = 0u64;
        let mut verdicts = Vec::with_capacity(shares.len());
        for (meta, data) in shares {
            self.stats.shares_received.fetch_add(1, Ordering::Relaxed);
            self.stats
                .received_share_bytes
                .fetch_add(data.len() as u64, Ordering::Relaxed);
            // Server-side fingerprint: never reuse the client's.
            let server_fp = Fingerprint::tagged(&self.tag, data);
            let _ckpt = self.ckpt_lock.read();
            let (_, outcome) = self
                .share_index
                .add_reference_or_store_with(
                    &server_fp,
                    user,
                    || self.containers.store_share(user, server_fp, data),
                    |post| {
                        self.journal_record(&MetaRecord::ShareUpsert {
                            fp: server_fp,
                            entry: post.clone(),
                        });
                        Ok(())
                    },
                )
                .map_err(CdStoreError::Storage)?;
            match outcome {
                StoreOutcome::DedupInterUser => {
                    self.stats
                        .inter_user_duplicates
                        .fetch_add(1, Ordering::Relaxed);
                    verdicts.push(ShareVerdict::DuplicateInterUser);
                }
                // The user's own uploads raced past the intra-user query
                // stage; not an inter-user duplicate.
                StoreOutcome::DedupIntraUser => {
                    verdicts.push(ShareVerdict::DuplicateIntraUser);
                }
                StoreOutcome::Stored => {
                    self.stats
                        .physical_share_bytes
                        .fetch_add(data.len() as u64, Ordering::Relaxed);
                    new_bytes += data.len() as u64;
                    verdicts.push(ShareVerdict::Stored);
                }
            }
            // Record the user's client-fingerprint → server-fingerprint link.
            let map_key = Self::user_share_key(user, &meta.fingerprint);
            let map_value = server_fp.as_bytes().to_vec();
            infallible(
                self.user_shares
                    .put_with(map_key.clone(), map_value.clone(), || {
                        self.journal_record(&MetaRecord::MapPut {
                            key: map_key,
                            value: map_value,
                        });
                        Ok(())
                    }),
            );
        }
        // Re-baseline promptly if any journal append lapsed above: until a
        // checkpoint lands, the lapsed records exist only in memory.
        if self.journal_lapses.load(Ordering::Relaxed) > 0 {
            self.maybe_checkpoint();
        }
        Ok(StoreReceipt {
            new_bytes,
            verdicts,
        })
    }

    /// Resolves a client-computed fingerprint to the server fingerprint of
    /// the share, through the user's ownership mapping.
    fn resolve_server_fp(&self, user: u64, client_fp: &Fingerprint) -> Option<Fingerprint> {
        let bytes = self
            .user_shares
            .get(&Self::user_share_key(user, client_fp))?;
        bytes.try_into().ok().map(Fingerprint::from_bytes)
    }

    /// Takes one reference on behalf of `user` for the share the client knows
    /// by `client_fp`. Fails if the user never uploaded the share (a recipe
    /// must only reference shares its owner holds).
    fn add_share_reference(&self, user: u64, client_fp: &Fingerprint) -> Result<(), CdStoreError> {
        let server_fp = self
            .resolve_server_fp(user, client_fp)
            .ok_or_else(|| CdStoreError::MissingShare(client_fp.to_hex()))?;
        let _ckpt = self.ckpt_lock.read();
        let added = infallible(self.share_index.add_reference_existing_with(
            &server_fp,
            user,
            |post| {
                self.journal_record(&MetaRecord::ShareUpsert {
                    fp: server_fp,
                    entry: post.clone(),
                });
                Ok(())
            },
        ));
        if !added {
            return Err(CdStoreError::MissingShare(client_fp.to_hex()));
        }
        Ok(())
    }

    /// Drops one of `user`'s references on the share the client knows by
    /// `client_fp`. When the user's last reference goes, their ownership
    /// mapping is torn down (the share can no longer be fetched or claimed
    /// as an intra-user duplicate by this user); when the *global* last
    /// reference goes, the share's container bytes are released to the
    /// liveness ledger for the garbage collector. Tolerant of already
    /// released shares, so delete paths can be replayed.
    fn release_share_reference(&self, user: u64, client_fp: &Fingerprint) {
        let Some(server_fp) = self.resolve_server_fp(user, client_fp) else {
            return;
        };
        let report = {
            let _ckpt = self.ckpt_lock.read();
            infallible(
                self.share_index
                    .remove_reference_with(&server_fp, user, |post| {
                        self.journal_record(&match post {
                            Some(entry) => MetaRecord::ShareUpsert {
                                fp: server_fp,
                                entry: entry.clone(),
                            },
                            None => MetaRecord::ShareDelete { fp: server_fp },
                        });
                        Ok(())
                    }),
            )
        };
        let Some(report) = report else {
            return;
        };
        if report.user_refs == 0 {
            let key = Self::user_share_key(user, client_fp);
            {
                let _ckpt = self.ckpt_lock.read();
                infallible(self.user_shares.delete_with(&key, || {
                    self.journal_record(&MetaRecord::MapDelete { key: key.clone() });
                    Ok(())
                }));
            }
            // Repair a racing same-user re-upload: if the user re-acquired
            // references between the stripe-locked decrement above and the
            // mapping delete (a store_shares on another of their files), the
            // delete just removed a mapping that is needed again — restore
            // it. The mapping value is deterministic in the content, so
            // re-putting can never install a wrong translation.
            if self
                .share_index
                .lookup(&server_fp)
                .map(|entry| entry.owned_by(user))
                .unwrap_or(false)
            {
                let value = server_fp.as_bytes().to_vec();
                let _ckpt = self.ckpt_lock.read();
                infallible(self.user_shares.put_with(key.clone(), value.clone(), || {
                    self.journal_record(&MetaRecord::MapPut { key, value });
                    Ok(())
                }));
            }
        }
        if report.total_refs == 0 {
            self.containers.release(&report.location);
        }
    }

    /// Reads and decodes the recipe blob at a container location.
    fn read_recipe(&self, location: &ShareLocation) -> Result<FileRecipe, CdStoreError> {
        let bytes = self.containers.fetch(location)?;
        FileRecipe::from_bytes(&bytes)
            .ok_or_else(|| CdStoreError::InconsistentMetadata("corrupt file recipe".into()))
    }

    /// Releases every share reference a recipe holds, plus the recipe blob
    /// itself (called when a superseded recipe version is retired).
    fn release_recipe(&self, user: u64, location: &ShareLocation) -> Result<(), CdStoreError> {
        let recipe = self.read_recipe(location)?;
        for entry in &recipe.entries {
            self.release_share_reference(user, &entry.share_fingerprint);
        }
        self.containers.release(location);
        Ok(())
    }

    /// Stores the file recipe, registers the file in the file index, and
    /// settles the share reference counts: every recipe entry takes one
    /// reference (resolved through the user's ownership mappings), and the
    /// per-upload references [`CdStoreServer::store_shares`] took for the
    /// shares in `uploaded` are dropped again. The reference count of a share
    /// therefore equals the number of live recipe entries pointing at it —
    /// the invariant deletion and garbage collection rely on — while never
    /// transiently touching zero for a share an upload is still committing.
    ///
    /// If this upload supersedes an older version of the file, the old
    /// version's references and recipe bytes are released; if it loses a
    /// version race (a strictly newer recipe is already in place), its own
    /// references and recipe bytes are released instead.
    pub fn put_file(
        &self,
        user: u64,
        encoded_pathname: &[u8],
        recipe: &FileRecipe,
        uploaded: &[Fingerprint],
    ) -> Result<(), CdStoreError> {
        let key = FileKey::new(user, encoded_pathname);
        // 1. One reference per recipe entry. On failure (e.g. the recipe
        // references a share a concurrent delete just released) roll back
        // completely — the references taken so far *and* the upload's
        // transient references — so a failed commit leaks nothing: the
        // upload's shares go dead and the garbage collector reclaims them.
        for (taken, entry) in recipe.entries.iter().enumerate() {
            if let Err(e) = self.add_share_reference(user, &entry.share_fingerprint) {
                for earlier in &recipe.entries[..taken] {
                    self.release_share_reference(user, &earlier.share_fingerprint);
                }
                self.release_uploads(user, uploaded);
                return Err(e);
            }
        }
        // 2. ...then drop the references the upload itself held. (This order
        // keeps freshly uploaded shares referenced at all times.)
        self.release_uploads(user, uploaded);
        // 3. Persist the recipe blob; a backend failure here also rolls the
        // per-entry references back so nothing stays live unreclaimed.
        let recipe_bytes = recipe.to_bytes();
        let recipe_fp = Fingerprint::tagged(b"recipe", key.as_bytes());
        let location = match self.containers.store_recipe(user, recipe_fp, &recipe_bytes) {
            Ok(location) => location,
            Err(e) => {
                for entry in &recipe.entries {
                    self.release_share_reference(user, &entry.share_fingerprint);
                }
                return Err(CdStoreError::Storage(e));
            }
        };
        self.stats
            .recipe_bytes
            .fetch_add(recipe_bytes.len() as u64, Ordering::Relaxed);
        // 4. Swap the index entry. The version is allocated before the index
        // stripe lock, so racing re-uploads of the same file may arrive out
        // of order; put_if_newer keeps the highest *on this server*.
        // Cross-server consistency of a file's n recipes is the caller's
        // job: `CdStore` serialises whole-file writes per (user, pathname),
        // since each server orders versions independently.
        let outcome = {
            let _ckpt = self.ckpt_lock.read();
            infallible(self.file_index.put_if_newer_with(
                key,
                FileEntry {
                    user,
                    recipe_container_id: location.container_id,
                    recipe_offset: location.offset,
                    recipe_size: location.size,
                    file_size: recipe.file_size,
                    num_secrets: recipe.num_secrets() as u64,
                    version: self.next_version.fetch_add(1, Ordering::Relaxed),
                },
                |entry| {
                    self.journal_record(&MetaRecord::FileUpsert {
                        key,
                        entry: entry.clone(),
                    });
                    Ok(())
                },
            ))
        };
        let result = match outcome {
            FilePutOutcome::Written { displaced: None } => Ok(()),
            FilePutOutcome::Written {
                displaced: Some(old),
            } => self.release_recipe(user, &old.recipe_location()),
            FilePutOutcome::Stale => {
                // A strictly newer version won the race: this upload's
                // references and recipe blob are garbage on arrival.
                for entry in &recipe.entries {
                    self.release_share_reference(user, &entry.share_fingerprint);
                }
                self.containers.release(&location);
                Ok(())
            }
        };
        self.maybe_checkpoint();
        result
    }

    /// Drops the transient per-upload references [`CdStoreServer::store_shares`]
    /// took for the given shares. Called by [`CdStoreServer::put_file`] when a
    /// commit settles (or rolls back), and by clients abandoning an upload
    /// whose multi-cloud commit failed part-way — without it the abandoned
    /// shares would stay referenced, and therefore unreclaimable, forever.
    pub fn release_uploads(&self, user: u64, client_fps: &[Fingerprint]) {
        for client_fp in client_fps {
            self.release_share_reference(user, client_fp);
        }
    }

    /// Whether the server knows the given file of the given user.
    pub fn has_file(&self, user: u64, encoded_pathname: &[u8]) -> bool {
        let key = FileKey::new(user, encoded_pathname);
        self.file_index.get(&key).is_some()
    }

    /// Fetches the file recipe for a user's file.
    pub fn get_recipe(
        &self,
        user: u64,
        encoded_pathname: &[u8],
    ) -> Result<FileRecipe, CdStoreError> {
        let key = FileKey::new(user, encoded_pathname);
        // An online compaction pass may delete a recipe container between
        // reading the index entry and fetching the blob (only once every
        // recipe in it is dead, i.e. this file was deleted or re-uploaded
        // concurrently); re-resolve the entry and retry.
        for _ in 0..RELOCATION_RETRIES {
            let entry = self.file_index.get(&key).ok_or_else(|| {
                CdStoreError::FileNotFound(format!("user {user} on cloud {}", self.cloud_index))
            })?;
            match self.containers.fetch(&entry.recipe_location()) {
                Ok(bytes) => {
                    return FileRecipe::from_bytes(&bytes).ok_or_else(|| {
                        CdStoreError::InconsistentMetadata("corrupt file recipe".into())
                    })
                }
                Err(StorageError::NotFound(_)) => continue,
                Err(e) => return Err(CdStoreError::Storage(e)),
            }
        }
        Err(CdStoreError::FileNotFound(format!(
            "user {user} on cloud {} (recipe vanished mid-read)",
            self.cloud_index
        )))
    }

    /// Deletes a file: removes its index entry and releases every share
    /// reference its recipe holds, tearing down the user's ownership
    /// mappings for shares they no longer reference anywhere. Shares whose
    /// global reference count hits zero become dead bytes for the garbage
    /// collector ([`CdStoreServer::gc`]) to reclaim. Returns whether the
    /// file existed.
    pub fn delete_file(&self, user: u64, encoded_pathname: &[u8]) -> Result<bool, CdStoreError> {
        let key = FileKey::new(user, encoded_pathname);
        for _ in 0..RELOCATION_RETRIES {
            // Read the recipe *before* removing the index entry: if the blob
            // is unreadable (backend error) the delete fails with the file
            // intact and retryable, instead of dropping the entry while
            // leaking every reference the unread recipe held.
            let Some(peek) = self.file_index.get(&key) else {
                return Ok(false);
            };
            let mut recipe = match self.read_recipe(&peek.recipe_location()) {
                Ok(recipe) => recipe,
                // A concurrent re-upload displaced this version and a gc
                // pass already reclaimed its dead recipe container: the
                // index now points at the live version, so re-resolve.
                Err(CdStoreError::Storage(StorageError::NotFound(_))) => continue,
                Err(e) => return Err(e),
            };
            // Commit point: whoever wins the remove owns the release (two
            // racing deletes must not release the same references twice).
            let removed = {
                let _ckpt = self.ckpt_lock.read();
                infallible(self.file_index.remove_with(&key, |_| {
                    self.journal_record(&MetaRecord::FileDelete { key });
                    Ok(())
                }))
            };
            let Some(entry) = removed else {
                return Ok(false);
            };
            if entry.recipe_location() != peek.recipe_location() {
                // A concurrent re-upload swapped the entry between the read
                // and the remove: release the version actually removed. (Its
                // blob is still live — we now hold the only claim to it — so
                // this read cannot race a reclamation.)
                recipe = self.read_recipe(&entry.recipe_location())?;
            }
            for re in &recipe.entries {
                self.release_share_reference(user, &re.share_fingerprint);
            }
            self.containers.release(&entry.recipe_location());
            self.maybe_checkpoint();
            return Ok(true);
        }
        Err(CdStoreError::FileNotFound(format!(
            "user {user} on cloud {} (recipe vanished mid-delete)",
            self.cloud_index
        )))
    }

    /// Fetches one share owned by `user`, identified by the *client*
    /// fingerprint recorded in the file recipe. Ownership is enforced: a user
    /// who never uploaded the share cannot retrieve it by fingerprint alone
    /// (the proof-of-ownership side channel of §3.3).
    pub fn fetch_share(&self, user: u64, client_fp: &Fingerprint) -> Result<Vec<u8>, CdStoreError> {
        // An online compaction pass may relocate the share and delete its old
        // container between the index lookup and the container fetch; the
        // index then already points at the fresh copy, so re-resolve.
        for _ in 0..RELOCATION_RETRIES {
            let server_fp_bytes = self
                .user_shares
                .get(&Self::user_share_key(user, client_fp))
                .ok_or_else(|| CdStoreError::MissingShare(client_fp.to_hex()))?;
            let server_fp = Fingerprint::from_bytes(server_fp_bytes.try_into().map_err(|_| {
                CdStoreError::InconsistentMetadata("bad fingerprint mapping".into())
            })?);
            let entry = self
                .share_index
                .lookup(&server_fp)
                .ok_or_else(|| CdStoreError::MissingShare(client_fp.to_hex()))?;
            match self.containers.fetch(&entry.location) {
                Ok(data) => {
                    self.stats
                        .served_share_bytes
                        .fetch_add(data.len() as u64, Ordering::Relaxed);
                    return Ok(data);
                }
                Err(StorageError::NotFound(_)) => continue,
                Err(e) => return Err(CdStoreError::Storage(e)),
            }
        }
        Err(CdStoreError::MissingShare(format!(
            "{} (share vanished mid-read)",
            client_fp.to_hex()
        )))
    }

    /// Fetches a batch of shares owned by `user`.
    pub fn fetch_shares(
        &self,
        user: u64,
        client_fps: &[Fingerprint],
    ) -> Result<Vec<Vec<u8>>, CdStoreError> {
        client_fps
            .iter()
            .map(|fp| self.fetch_share(user, fp))
            .collect()
    }

    /// Seals and persists all open containers (called at the end of a backup
    /// job and before shutting down). A flushed server recovers completely:
    /// every journaled index entry then points at a sealed container, so
    /// [`CdStoreServer::open`] prunes nothing.
    pub fn flush(&self) -> Result<(), CdStoreError> {
        self.containers.flush()?;
        self.maybe_checkpoint();
        Ok(())
    }

    /// Container bytes currently stored at this server's cloud backend
    /// (journal bookkeeping excluded).
    pub fn backend_bytes(&self) -> u64 {
        self.containers.backend_bytes().unwrap_or(0)
    }

    /// The storage backend this server persists to — the handle a restart
    /// recovers the server from ([`CdStoreServer::open`]).
    pub fn backend(&self) -> Arc<dyn StorageBackend> {
        self.containers.backend()
    }

    /// Aggregate live/dead payload bytes across this server's containers.
    pub fn container_utilisation(&self) -> StoreUtilisation {
        self.containers.utilisation()
    }

    /// Runs a garbage-collection pass with the default [`GcConfig`].
    pub fn gc(&self) -> Result<GcReport, CdStoreError> {
        self.gc_with(GcConfig::default())
    }

    /// Runs a garbage-collection pass: seals the open containers that carry
    /// dead bytes (other users' in-progress containers are left open so
    /// periodic vacuums don't fragment active backup streams), deletes
    /// sealed containers with no live bytes, and compacts sealed *share*
    /// containers whose dead ratio crosses `config.dead_ratio` by rewriting
    /// their live shares into fresh containers and atomically repointing the
    /// share index under its stripe locks. The pass runs online — concurrent
    /// backups, restores, and deletes stay correct (readers re-resolve
    /// relocated shares; writers hold references that keep their shares
    /// live) — but passes themselves are serialised on an internal lock.
    ///
    /// Recipe containers are only ever reclaimed whole: recipes relocate
    /// poorly (the file index is keyed by hashed pathnames, which cannot be
    /// recovered from a container scan), so a recipe container is deleted
    /// once every recipe in it is dead and merely waits otherwise.
    pub fn gc_with(&self, config: GcConfig) -> Result<GcReport, CdStoreError> {
        let _vacuum = self.gc_lock.lock();
        self.containers.flush_dead()?;
        let mut report = GcReport::default();
        for (id, usage) in self.containers.sealed_usages() {
            if usage.live_bytes == 0 {
                self.containers.delete_container(id)?;
                report.containers_deleted += 1;
                report.reclaimed_bytes += usage.dead_bytes;
            } else if usage.kind == ContainerKind::Share && usage.dead_ratio() >= config.dead_ratio
            {
                self.compact_container(id, &mut report)?;
            }
        }
        self.maybe_checkpoint();
        Ok(report)
    }

    /// Rewrites the live shares of one sealed container into fresh
    /// containers, repoints the index, and deletes the container.
    ///
    /// Crash-ordering: the fresh containers are sealed to the backend
    /// *before* any relocation is journaled, and the old container is
    /// deleted only *after* every relocation — so at every instant each
    /// share's index location points at a container that is durably on the
    /// backend, and a crash anywhere in the pass loses nothing (leftover
    /// copies are dead bytes a later pass reclaims).
    fn compact_container(&self, id: u64, report: &mut GcReport) -> Result<(), CdStoreError> {
        let container = self.containers.fetch_container(id)?;
        // 1. Copy every live blob into fresh (open) containers.
        let mut copies: Vec<(Fingerprint, ShareLocation, ShareLocation)> = Vec::new();
        let mut fresh_ids = std::collections::BTreeSet::new();
        for entry in &container.entries {
            let old = ShareLocation {
                container_id: id,
                offset: entry.offset,
                size: entry.length,
            };
            // Container entries carry the server fingerprint; only copy
            // blobs the index still points at *in this container* (stale
            // copies of shares stored again elsewhere are dead).
            match self.share_index.lookup(&entry.fingerprint) {
                Some(share) if share.location == old => {}
                _ => continue,
            }
            let data = container
                .get_at(entry.offset, entry.length)
                .ok_or_else(|| {
                    CdStoreError::InconsistentMetadata(format!(
                        "container {id} misses a live entry"
                    ))
                })?;
            let fresh = self
                .containers
                .store_share(container.user, entry.fingerprint, data)?;
            fresh_ids.insert(fresh.container_id);
            copies.push((entry.fingerprint, old, fresh));
        }
        // 2. Make the fresh copies durable before repointing anything at
        // them: recovery prunes index entries whose container is missing
        // from the backend, so journaling a relocation to an unsealed
        // container would turn a crash into data loss even though the old
        // container still held the bytes.
        for &fresh_id in &fresh_ids {
            self.containers.seal_open_container(fresh_id)?;
        }
        // 3. Repoint the index, journaling each relocation. Concurrent
        // readers resolve the old location until the swap and the fresh one
        // after it — both sealed, so neither read can miss.
        for (fp, old, fresh) in copies {
            let relocated = {
                let _ckpt = self.ckpt_lock.read();
                infallible(self.share_index.relocate_with(&fp, old, fresh, |post| {
                    self.journal_record(&MetaRecord::ShareUpsert {
                        fp,
                        entry: post.clone(),
                    });
                    Ok(())
                }))
            };
            if relocated {
                report.shares_rewritten += 1;
                report.rewritten_bytes += old.size as u64;
            } else {
                // The share was released while we copied it: the fresh copy
                // is dead on arrival and the old container loses nothing.
                self.containers.release(&fresh);
            }
        }
        // Re-read the ledger: releases may have landed while copying.
        let dead = self
            .containers
            .container_usage(id)
            .map(|usage| usage.dead_bytes)
            .unwrap_or(0);
        self.containers.delete_container(id)?;
        report.containers_compacted += 1;
        report.reclaimed_bytes += dead;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(fp: Fingerprint, size: u32, seq: u64) -> ShareMetadata {
        ShareMetadata {
            fingerprint: fp,
            share_size: size,
            secret_seq: seq,
            secret_size: size * 3,
        }
    }

    fn share(data: &[u8]) -> (ShareMetadata, Vec<u8>) {
        (
            meta(Fingerprint::of(data), data.len() as u32, 0),
            data.to_vec(),
        )
    }

    /// Uploads `datas` as `user`'s shares and commits a recipe referencing
    /// each once, mirroring the client's upload protocol (intra-user query,
    /// store, put_file with the uploaded fingerprints).
    fn backup_file(
        server: &CdStoreServer,
        user: u64,
        path: &[u8],
        datas: &[Vec<u8>],
    ) -> FileRecipe {
        let shares: Vec<_> = datas.iter().map(|d| share(d)).collect();
        let fps: Vec<_> = shares.iter().map(|(m, _)| m.fingerprint).collect();
        let already = server.intra_user_query(user, &fps);
        let to_upload: Vec<_> = shares
            .iter()
            .cloned()
            .zip(already)
            .filter_map(|(s, dup)| (!dup).then_some(s))
            .collect();
        let uploaded: Vec<_> = to_upload.iter().map(|(m, _)| m.fingerprint).collect();
        server.store_shares(user, &to_upload).unwrap();
        let recipe = FileRecipe {
            file_size: datas.iter().map(|d| d.len() as u64).sum(),
            entries: shares
                .iter()
                .map(|(m, _)| crate::metadata::RecipeEntry {
                    share_fingerprint: m.fingerprint,
                    secret_size: m.secret_size,
                })
                .collect(),
        };
        server.put_file(user, path, &recipe, &uploaded).unwrap();
        recipe
    }

    #[test]
    fn inter_user_dedup_stores_one_copy() {
        let server = CdStoreServer::new(0);
        let s = share(b"identical share content");
        let new_a = server.store_shares(1, std::slice::from_ref(&s)).unwrap();
        let new_b = server.store_shares(2, std::slice::from_ref(&s)).unwrap();
        assert_eq!(new_a, s.1.len() as u64);
        assert_eq!(new_b, 0, "second user's identical share is deduplicated");
        assert_eq!(server.unique_shares(), 1);
        assert_eq!(server.stats().inter_user_duplicates, 1);
        assert_eq!(server.stats().received_share_bytes, 2 * s.1.len() as u64);
        assert_eq!(server.physical_share_bytes(), s.1.len() as u64);
    }

    #[test]
    fn same_user_duplicate_is_not_counted_as_inter_user() {
        let server = CdStoreServer::new(0);
        let s = share(b"same user twice");
        server.store_shares(1, std::slice::from_ref(&s)).unwrap();
        // A second upload by the same user (e.g. two of their devices racing
        // past the intra-user query) is an intra-user duplicate.
        let second = server.store_shares(1, std::slice::from_ref(&s)).unwrap();
        assert_eq!(second, 0);
        assert_eq!(server.stats().inter_user_duplicates, 0);
        assert_eq!(server.unique_shares(), 1);
        assert_eq!(server.physical_share_bytes(), s.1.len() as u64);
    }

    #[test]
    fn intra_user_query_reports_only_own_uploads() {
        let server = CdStoreServer::new(0);
        let s1 = share(b"first");
        let s2 = share(b"second");
        server.store_shares(1, std::slice::from_ref(&s1)).unwrap();
        server.store_shares(2, std::slice::from_ref(&s2)).unwrap();
        // User 1 owns s1 but not s2 (even though s2 is stored): the reply must
        // not leak other users' deduplication state.
        let reply = server.intra_user_query(1, &[s1.0.fingerprint, s2.0.fingerprint]);
        assert_eq!(reply, vec![true, false]);
        let reply2 = server.intra_user_query(2, &[s1.0.fingerprint, s2.0.fingerprint]);
        assert_eq!(reply2, vec![false, true]);
    }

    #[test]
    fn fetch_share_enforces_ownership() {
        let server = CdStoreServer::new(0);
        let s = share(b"sensitive share of user 1");
        server.store_shares(1, std::slice::from_ref(&s)).unwrap();
        server.flush().unwrap();
        assert_eq!(server.fetch_share(1, &s.0.fingerprint).unwrap(), s.1);
        // User 2 knows the fingerprint but never uploaded the share: denied.
        assert!(matches!(
            server.fetch_share(2, &s.0.fingerprint),
            Err(CdStoreError::MissingShare(_))
        ));
    }

    #[test]
    fn recipes_round_trip_through_containers() {
        let server = CdStoreServer::new(1);
        let datas: Vec<Vec<u8>> = (0..50u32)
            .map(|i| format!("secret share {i}").into_bytes())
            .collect();
        let recipe = backup_file(&server, 7, b"/home/u/backup.tar", &datas);
        assert!(server.has_file(7, b"/home/u/backup.tar"));
        assert!(!server.has_file(8, b"/home/u/backup.tar"));
        let fetched = server.get_recipe(7, b"/home/u/backup.tar").unwrap();
        assert_eq!(fetched, recipe);
        assert!(matches!(
            server.get_recipe(7, b"/missing"),
            Err(CdStoreError::FileNotFound(_))
        ));
    }

    #[test]
    fn recipes_may_only_reference_owned_shares() {
        let server = CdStoreServer::new(0);
        let recipe = FileRecipe {
            file_size: 999,
            entries: vec![crate::metadata::RecipeEntry {
                share_fingerprint: Fingerprint::of(b"never uploaded"),
                secret_size: 14,
            }],
        };
        assert!(matches!(
            server.put_file(7, b"/f", &recipe, &[]),
            Err(CdStoreError::MissingShare(_))
        ));
    }

    #[test]
    fn failed_put_file_rolls_back_every_reference() {
        let server = CdStoreServer::new(0);
        let good = share(b"uploaded fine");
        server.store_shares(1, std::slice::from_ref(&good)).unwrap();
        // The recipe references the uploaded share and one the user never
        // uploaded: the commit must fail without leaking the upload's
        // transient reference (the share goes dead and reclaimable).
        let recipe = FileRecipe {
            file_size: 2,
            entries: vec![
                crate::metadata::RecipeEntry {
                    share_fingerprint: good.0.fingerprint,
                    secret_size: 13,
                },
                crate::metadata::RecipeEntry {
                    share_fingerprint: Fingerprint::of(b"never uploaded"),
                    secret_size: 14,
                },
            ],
        };
        assert!(matches!(
            server.put_file(1, b"/f", &recipe, &[good.0.fingerprint]),
            Err(CdStoreError::MissingShare(_))
        ));
        assert!(!server.has_file(1, b"/f"));
        assert_eq!(server.unique_shares(), 0, "rolled back to zero references");
        assert!(server.fetch_share(1, &good.0.fingerprint).is_err());
        server.gc().unwrap();
        assert_eq!(server.backend_bytes(), 0);
    }

    #[test]
    fn newer_recipe_versions_replace_older_ones() {
        let server = CdStoreServer::new(0);
        backup_file(&server, 1, b"/f", &[b"old content".to_vec()]);
        let new = backup_file(&server, 1, b"/f", &[b"new content".to_vec()]);
        assert_eq!(server.get_recipe(1, b"/f").unwrap(), new);
        // The superseded version's share lost its only reference.
        assert!(matches!(
            server.fetch_share(1, &Fingerprint::of(b"old content")),
            Err(CdStoreError::MissingShare(_))
        ));
        assert_eq!(server.unique_shares(), 1);
    }

    #[test]
    fn delete_file_removes_the_index_entry() {
        let server = CdStoreServer::new(0);
        let recipe = FileRecipe {
            file_size: 5,
            entries: vec![],
        };
        server.put_file(1, b"/f", &recipe, &[]).unwrap();
        assert!(server.delete_file(1, b"/f").unwrap());
        assert!(!server.delete_file(1, b"/f").unwrap());
        assert!(matches!(
            server.get_recipe(1, b"/f"),
            Err(CdStoreError::FileNotFound(_))
        ));
    }

    #[test]
    fn delete_releases_references_and_ownership() {
        let server = CdStoreServer::new(0);
        let datas = vec![b"shared A".to_vec(), b"shared B".to_vec()];
        backup_file(&server, 1, b"/u1", &datas);
        backup_file(&server, 2, b"/u2", &datas);
        assert_eq!(server.unique_shares(), 2);
        let live = server.live_share_bytes();
        assert!(live > 0);

        // User 1 deletes: the shares survive on user 2's references, and
        // user 1 can no longer fetch them.
        assert!(server.delete_file(1, b"/u1").unwrap());
        assert_eq!(server.unique_shares(), 2);
        assert_eq!(server.live_share_bytes(), live);
        assert!(matches!(
            server.fetch_share(1, &Fingerprint::of(b"shared A")),
            Err(CdStoreError::MissingShare(_))
        ));
        assert_eq!(
            server
                .fetch_share(2, &Fingerprint::of(b"shared A"))
                .unwrap(),
            b"shared A"
        );

        // User 2 deletes too: the last references go and the shares die.
        assert!(server.delete_file(2, b"/u2").unwrap());
        assert_eq!(server.unique_shares(), 0);
        assert_eq!(server.live_share_bytes(), 0);
        // The cumulative traffic counter is untouched by deletion.
        assert_eq!(server.physical_share_bytes(), live);
        assert!(matches!(
            server.fetch_share(2, &Fingerprint::of(b"shared A")),
            Err(CdStoreError::MissingShare(_))
        ));
    }

    #[test]
    fn same_user_files_sharing_a_chunk_survive_one_delete() {
        let server = CdStoreServer::new(0);
        let common = b"chunk both files contain".to_vec();
        backup_file(&server, 1, b"/a", &[common.clone(), b"only in a".to_vec()]);
        backup_file(&server, 1, b"/b", &[common.clone(), b"only in b".to_vec()]);
        assert!(server.delete_file(1, b"/a").unwrap());
        // /b still owns the common chunk.
        assert_eq!(
            server.fetch_share(1, &Fingerprint::of(&common)).unwrap(),
            common
        );
        // "only in a" lost its last reference.
        assert!(matches!(
            server.fetch_share(1, &Fingerprint::of(b"only in a")),
            Err(CdStoreError::MissingShare(_))
        ));
        assert!(server.delete_file(1, b"/b").unwrap());
        assert_eq!(server.unique_shares(), 0);
    }

    #[test]
    fn gc_reclaims_fully_dead_containers() {
        let server = CdStoreServer::new(0);
        let datas: Vec<Vec<u8>> = (0..20u32).map(|i| vec![i as u8; 10_000]).collect();
        backup_file(&server, 1, b"/doomed", &datas);
        server.flush().unwrap();
        assert!(server.backend_bytes() > 0);

        assert!(server.delete_file(1, b"/doomed").unwrap());
        let report = server.gc().unwrap();
        assert!(report.containers_deleted >= 2, "share + recipe containers");
        assert_eq!(report.containers_compacted, 0);
        assert!(report.reclaimed_bytes >= 200_000);
        assert_eq!(server.backend_bytes(), 0);
        assert_eq!(server.container_utilisation(), StoreUtilisation::default());
    }

    #[test]
    fn gc_compacts_mostly_dead_share_containers() {
        let server = CdStoreServer::new(0);
        // Two files whose shares land in the same container; deleting the
        // big one leaves the container mostly dead but still live.
        let big: Vec<Vec<u8>> = (0..30u32).map(|i| vec![i as u8; 10_000]).collect();
        let small = vec![b"survivor share".to_vec()];
        backup_file(&server, 1, b"/big", &big);
        backup_file(&server, 1, b"/small", &small);
        server.flush().unwrap();
        let before = server.backend_bytes();

        assert!(server.delete_file(1, b"/big").unwrap());
        let report = server.gc().unwrap();
        assert!(report.containers_compacted >= 1);
        assert_eq!(report.shares_rewritten, 1);
        assert_eq!(report.rewritten_bytes, small[0].len() as u64);
        assert!(server.backend_bytes() < before / 4);

        // The survivor relocated but stays byte-exact.
        assert_eq!(
            server
                .fetch_share(1, &Fingerprint::of(b"survivor share"))
                .unwrap(),
            b"survivor share"
        );
        assert_eq!(server.get_recipe(1, b"/small").unwrap().num_secrets(), 1);

        // A second pass finds nothing to do.
        let idle = server.gc().unwrap();
        assert_eq!(idle.containers_compacted, 0);
        assert_eq!(idle.shares_rewritten, 0);
    }

    #[test]
    fn gc_runs_online_with_concurrent_backups_and_restores() {
        let server = CdStoreServer::new(0);
        let keep: Vec<Vec<u8>> = (0..8u32)
            .map(|i| format!("kept share {i}").into_bytes())
            .collect();
        backup_file(&server, 9, b"/kept", &keep);
        server.flush().unwrap();
        std::thread::scope(|scope| {
            for user in 1..=4u64 {
                let server = &server;
                scope.spawn(move || {
                    for round in 0..10u32 {
                        let datas: Vec<Vec<u8>> = (0..6u32)
                            .map(|i| vec![user as u8 + i as u8; 5_000])
                            .collect();
                        let path = format!("/u{user}/r{round}").into_bytes();
                        backup_file(server, user, &path, &datas);
                        assert!(server.delete_file(user, &path).unwrap());
                    }
                });
            }
            for _ in 0..2 {
                let server = &server;
                let keep = &keep;
                scope.spawn(move || {
                    for _ in 0..10 {
                        server.gc().unwrap();
                        for (i, data) in keep.iter().enumerate() {
                            let fetched = server
                                .fetch_share(9, &Fingerprint::of(data))
                                .unwrap_or_else(|e| panic!("kept share {i} lost: {e}"));
                            assert_eq!(&fetched, data);
                        }
                    }
                });
            }
        });
        // Everything but the kept file is reclaimable.
        server.gc().unwrap();
        assert_eq!(server.unique_shares(), keep.len());
        for data in &keep {
            assert_eq!(
                &server.fetch_share(9, &Fingerprint::of(data)).unwrap(),
                data
            );
        }
    }

    #[test]
    fn index_size_grows_with_stored_shares() {
        let server = CdStoreServer::new(0);
        let before = server.index_bytes();
        for i in 0..500u32 {
            let data = format!("share-{i}").into_bytes();
            server.store_shares(1, &[share(&data)]).unwrap();
        }
        assert!(server.index_bytes() > before);
        assert_eq!(server.unique_shares(), 500);
    }

    #[test]
    fn server_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CdStoreServer>();
    }

    #[test]
    fn racing_identical_uploads_store_the_share_exactly_once() {
        let server = CdStoreServer::new(0);
        let users = 8u64;
        let shares: Vec<_> = (0..32u32)
            .map(|i| share(format!("contended share {i}").as_bytes()))
            .collect();
        let barrier = std::sync::Barrier::new(users as usize);
        let new_bytes: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (1..=users)
                .map(|user| {
                    let server = &server;
                    let shares = &shares;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        server.store_shares(user, shares).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let unique_bytes: u64 = shares.iter().map(|(_, d)| d.len() as u64).sum();
        // Across all racing users, each share was physically stored once.
        assert_eq!(new_bytes, unique_bytes);
        assert_eq!(server.physical_share_bytes(), unique_bytes);
        assert_eq!(server.unique_shares(), shares.len());
        let stats = server.stats();
        assert_eq!(stats.shares_received, users * shares.len() as u64);
        assert_eq!(
            stats.inter_user_duplicates,
            (users - 1) * shares.len() as u64
        );
        // Every user owns every share and can fetch it back.
        for user in 1..=users {
            for (meta, data) in &shares {
                assert_eq!(&server.fetch_share(user, &meta.fingerprint).unwrap(), data);
            }
        }
    }

    #[test]
    fn concurrent_users_interleave_stores_and_fetches() {
        let server = CdStoreServer::new(0);
        std::thread::scope(|scope| {
            for user in 1..=8u64 {
                let server = &server;
                scope.spawn(move || {
                    for i in 0..20u32 {
                        let data = format!("user {user} private share {i}").into_bytes();
                        let s = share(&data);
                        server.store_shares(user, std::slice::from_ref(&s)).unwrap();
                        assert_eq!(server.fetch_share(user, &s.0.fingerprint).unwrap(), data);
                        assert_eq!(
                            server.intra_user_query(user, &[s.0.fingerprint]),
                            vec![true]
                        );
                    }
                });
            }
        });
        assert_eq!(server.unique_shares(), 8 * 20);
        assert_eq!(server.stats().inter_user_duplicates, 0);
    }

    #[test]
    fn open_recovers_flushed_state_exactly() {
        let backend: Arc<MemoryBackend> = Arc::new(MemoryBackend::new());
        let server = CdStoreServer::with_backend(0, backend.clone());
        let shared = vec![b"common block".to_vec(), b"other block".to_vec()];
        backup_file(&server, 1, b"/u1/f", &shared);
        backup_file(&server, 2, b"/u2/f", &shared);
        backup_file(&server, 1, b"/u1/g", &[b"private".to_vec()]);
        assert!(server.delete_file(1, b"/u1/g").unwrap());
        server.flush().unwrap();
        let unique = server.unique_shares();
        let live = server.live_share_bytes();
        drop(server);

        let (revived, report) = CdStoreServer::open(0, backend).unwrap();
        assert!(!report.used_checkpoint, "no checkpoint was ever committed");
        assert!(report.records_replayed > 0);
        assert!(!report.torn_tail);
        assert!(!report.pruned_anything(), "a flushed server loses nothing");
        assert!(report.containers_scanned > 0);

        // Dedup state is byte-for-byte intact: refcounts, ownership, data.
        assert_eq!(revived.unique_shares(), unique);
        assert_eq!(revived.live_share_bytes(), live);
        for data in &shared {
            assert_eq!(
                &revived.fetch_share(1, &Fingerprint::of(data)).unwrap(),
                data
            );
            assert_eq!(
                &revived.fetch_share(2, &Fingerprint::of(data)).unwrap(),
                data
            );
        }
        assert!(revived.get_recipe(1, b"/u1/f").is_ok());
        assert!(matches!(
            revived.get_recipe(1, b"/u1/g"),
            Err(CdStoreError::FileNotFound(_))
        ));
        // Deletion + gc keep working on the recovered instance: one owner
        // deleting leaves the other's references intact, then the last
        // delete makes everything reclaimable.
        assert!(revived.delete_file(1, b"/u1/f").unwrap());
        assert_eq!(
            &revived
                .fetch_share(2, &Fingerprint::of(&shared[0]))
                .unwrap(),
            &shared[0]
        );
        assert!(revived.delete_file(2, b"/u2/f").unwrap());
        revived.gc().unwrap();
        assert_eq!(revived.backend_bytes(), 0);
    }

    #[test]
    fn recovery_after_checkpoint_replays_only_the_suffix() {
        let backend: Arc<MemoryBackend> = Arc::new(MemoryBackend::new());
        let server = CdStoreServer::with_backend(0, backend.clone());
        for i in 0..10u32 {
            backup_file(
                &server,
                1,
                format!("/pre/{i}").as_bytes(),
                &[format!("pre share {i}").into_bytes()],
            );
        }
        server.flush().unwrap();
        server.checkpoint().unwrap();
        backup_file(&server, 1, b"/post", &[b"post share".to_vec()]);
        server.flush().unwrap();
        drop(server);

        let (revived, report) = CdStoreServer::open(0, backend).unwrap();
        assert!(report.used_checkpoint);
        assert!(!report.pruned_anything());
        // Only the single post-checkpoint backup's records were replayed —
        // far fewer than the 10 pre-checkpoint backups would have produced.
        assert!(
            report.records_replayed < 10,
            "replayed {} records, expected only the post-checkpoint suffix",
            report.records_replayed
        );
        assert!(revived.get_recipe(1, b"/pre/7").is_ok());
        assert_eq!(
            revived
                .fetch_share(1, &Fingerprint::of(b"post share"))
                .unwrap(),
            b"post share"
        );
        assert_eq!(revived.unique_shares(), 11);
    }

    #[test]
    fn recovery_prunes_state_that_never_reached_the_backend() {
        let backend: Arc<MemoryBackend> = Arc::new(MemoryBackend::new());
        let server = CdStoreServer::with_backend(0, backend.clone());
        backup_file(&server, 1, b"/durable", &[b"durable share".to_vec()]);
        server.flush().unwrap();
        // This file's shares and recipe stay in open containers: the journal
        // knows about them, but the container bytes die with the process.
        backup_file(&server, 1, b"/buffered", &[b"buffered share".to_vec()]);
        drop(server);

        let (revived, report) = CdStoreServer::open(0, backend).unwrap();
        assert!(report.pruned_anything());
        assert!(report.file_entries_pruned >= 1);
        // The unflushed file is cleanly gone — no dangling references...
        assert!(matches!(
            revived.get_recipe(1, b"/buffered"),
            Err(CdStoreError::FileNotFound(_))
        ));
        assert!(revived
            .fetch_share(1, &Fingerprint::of(b"buffered share"))
            .is_err());
        // ...while the flushed file is fully intact, and new traffic works.
        assert_eq!(
            revived
                .fetch_share(1, &Fingerprint::of(b"durable share"))
                .unwrap(),
            b"durable share"
        );
        assert_eq!(revived.unique_shares(), 1);
        backup_file(&revived, 1, b"/buffered", &[b"buffered share".to_vec()]);
        assert_eq!(
            revived
                .fetch_share(1, &Fingerprint::of(b"buffered share"))
                .unwrap(),
            b"buffered share"
        );
    }

    #[test]
    fn recovery_drops_references_of_uploads_in_flight_at_the_crash() {
        let backend: Arc<MemoryBackend> = Arc::new(MemoryBackend::new());
        let server = CdStoreServer::with_backend(0, backend.clone());
        backup_file(&server, 1, b"/committed", &[b"committed share".to_vec()]);
        // An upload crashes between store_shares and put_file: its share is
        // sealed and journaled, holding only the transient per-upload
        // reference, with no recipe anywhere to settle or release it.
        let orphan = share(b"orphaned upload");
        server
            .store_shares(2, std::slice::from_ref(&orphan))
            .unwrap();
        server.flush().unwrap();
        drop(server);

        let (revived, report) = CdStoreServer::open(0, backend).unwrap();
        // The recount against surviving recipes drops the orphan wholesale:
        // no refcount leak keeps its bytes unreclaimable forever.
        assert!(report.share_refs_reconciled >= 1, "{report:?}");
        assert_eq!(revived.unique_shares(), 1);
        assert!(revived.fetch_share(2, &orphan.0.fingerprint).is_err());
        revived.gc().unwrap();
        // Only the committed file's containers remain.
        assert_eq!(
            revived
                .fetch_share(1, &Fingerprint::of(b"committed share"))
                .unwrap(),
            b"committed share"
        );
        assert!(revived.delete_file(1, b"/committed").unwrap());
        revived.gc().unwrap();
        assert_eq!(revived.backend_bytes(), 0, "orphan bytes were reclaimed");
    }

    #[test]
    fn recovered_servers_allocate_fresh_container_ids_and_versions() {
        let backend: Arc<MemoryBackend> = Arc::new(MemoryBackend::new());
        let server = CdStoreServer::with_backend(0, backend.clone());
        let v1 = backup_file(&server, 1, b"/f", &[b"version one".to_vec()]);
        server.flush().unwrap();
        drop(server);
        let (revived, _) = CdStoreServer::open(0, backend).unwrap();
        // A re-upload after recovery must supersede the recovered version
        // (the version allocator restarted past the recovered maximum) and
        // land in a container id that cannot collide with recovered ones.
        let v2 = backup_file(&revived, 1, b"/f", &[b"version two".to_vec()]);
        assert_ne!(v1, v2);
        assert_eq!(revived.get_recipe(1, b"/f").unwrap(), v2);
        assert!(matches!(
            revived.fetch_share(1, &Fingerprint::of(b"version one")),
            Err(CdStoreError::MissingShare(_))
        ));
        revived.flush().unwrap();
        assert_eq!(
            revived
                .fetch_share(1, &Fingerprint::of(b"version two"))
                .unwrap(),
            b"version two"
        );
    }

    #[test]
    fn gc_compaction_survives_a_restart() {
        let backend: Arc<MemoryBackend> = Arc::new(MemoryBackend::new());
        let server = CdStoreServer::with_backend(0, backend.clone());
        let big: Vec<Vec<u8>> = (0..30u32).map(|i| vec![i as u8; 10_000]).collect();
        let small = vec![b"survivor share".to_vec()];
        backup_file(&server, 1, b"/big", &big);
        backup_file(&server, 1, b"/small", &small);
        server.flush().unwrap();
        assert!(server.delete_file(1, b"/big").unwrap());
        let report = server.gc().unwrap();
        assert!(report.containers_compacted >= 1);
        drop(server);

        // The relocated survivor is durable: recovery finds it sealed.
        let (revived, report) = CdStoreServer::open(0, backend).unwrap();
        assert!(!report.pruned_anything());
        assert_eq!(
            revived
                .fetch_share(1, &Fingerprint::of(b"survivor share"))
                .unwrap(),
            b"survivor share"
        );
        assert_eq!(revived.get_recipe(1, b"/small").unwrap().num_secrets(), 1);
    }

    #[test]
    fn backend_bytes_reflect_flushed_containers() {
        let server = CdStoreServer::new(0);
        server
            .store_shares(1, &[share(&vec![7u8; 100_000])])
            .unwrap();
        assert_eq!(server.backend_bytes(), 0);
        server.flush().unwrap();
        assert!(server.backend_bytes() >= 100_000);
    }
}
